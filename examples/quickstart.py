#!/usr/bin/env python3
"""Quickstart: simulate the paper's machine and print its headline result.

Builds the Figure-2 multithreaded decoupled processor with 3 hardware
contexts, feeds it the rotated SPEC FP95-like workload, runs 45k committed
instructions and prints the full report — the configuration behind the
paper's "2.68 -> 6.19 IPC with three threads" observation.

Run:  python examples/quickstart.py
"""

from repro import Processor, format_run, multiprogram, paper_config


def main() -> None:
    for n_threads in (1, 3):
        cfg = paper_config(n_threads=n_threads, l2_latency=16)
        workload = multiprogram(n_threads, seg_instrs=20_000)
        proc = Processor(cfg, workload)
        stats = proc.run(
            max_commits=15_000 * n_threads,
            warmup_commits=8_000 * n_threads,
        )
        print(format_run(stats, f"{n_threads} thread(s), decoupled, L2=16"))
        print()


if __name__ == "__main__":
    main()
