#!/usr/bin/env python3
"""Scenario workloads: the declarative workload API beyond the paper.

Builds three non-paper scenarios through the open ``WorkloadSpec`` API —
a heterogeneous per-thread mix, a pointer-chasing pair and an
L1-thrashing shared hot region — and compares how well each decouples,
using the analytic backend so the whole comparison runs in milliseconds.

Run:  python examples/scenario_workloads.py
"""

from repro import RunSpec, format_table, workload_preset
from repro.workloads import WorkloadSpec

# Presets ship with the repo (see `repro-sim workloads`) ...
presets = ["hetero4", "ptrchase2", "thrash4", "stream4"]

# ... and ad-hoc specs compose from profile references with inline
# overrides — no profile registration needed.
custom = WorkloadSpec.mix(
    [
        ["swim?hot_frac=0.05&ws_bytes=16M"],   # pure streamer
        ["fpppp?lod_rate=0.02"],               # decoupling-hostile
    ],
    name="custom-pair",
)


def measure(workload):
    rows = []
    for decoupled in (True, False):
        spec = RunSpec.from_workload(
            workload, l2_latency=64, decoupled=decoupled, backend="analytic"
        )
        rows.append(spec.execute())
    dec, non = rows
    return [
        workload.label(),
        workload.n_threads,
        dec.ipc,
        non.ipc,
        dec.ipc / non.ipc if non.ipc else 0.0,
        dec.perceived_load_latency,
    ]


def main() -> None:
    workloads = [workload_preset(name) for name in presets] + [custom]
    print(
        format_table(
            ["workload", "T", "IPC dec", "IPC non", "speedup", "pLat dec"],
            [measure(w) for w in workloads],
            "Decoupling across scenario workloads (analytic, L2=64)",
        )
    )
    print(
        "\nStreaming scenarios keep their perceived latency near zero; "
        "the pointer chase and the thrashing hot region expose it — the "
        "paper's section-2 law, now testable on any workload you can "
        "describe."
    )


if __name__ == "__main__":
    main()
