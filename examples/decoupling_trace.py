#!/usr/bin/env python3
"""Watch decoupling happen, instruction by instruction.

Attaches the pipeline tracer to a short miss-heavy loop and prints each
instruction's fetch/issue/complete/commit cycles for the decoupled and the
non-decoupled machine side by side. In the decoupled timeline, AP
instructions (pointer updates and loads) issue dozens of cycles before the
EP instructions fetched alongside them — that distance *is* the slip that
hides memory latency. In the non-decoupled timeline the two columns move in
lock-step.

Run:  python examples/decoupling_trace.py
"""

from repro import Processor, paper_config
from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.isa.trace import Trace
from repro.stats.tracing import Tracer


def miss_heavy_loop(n_iters: int = 40) -> Trace:
    """ptr += k; f = load A[i] (always a fresh line); acc = acc op f."""
    insts = []
    pc = 0x1000
    for i in range(n_iters):
        insts.append(StaticInst(pc, OpClass.IALU, dest=2, srcs=(2,)))
        insts.append(
            StaticInst(
                pc + 4, OpClass.LOAD_F, dest=40 + (i % 8), srcs=(2,),
                addr=0x100000 + i * 32,
            )
        )
        insts.append(
            StaticInst(pc + 8, OpClass.FALU, dest=36, srcs=(36, 40 + (i % 8)))
        )
    return Trace(insts, name="miss-loop")


def run_traced(decoupled: bool) -> None:
    cfg = paper_config(
        n_threads=1, l2_latency=32, decoupled=decoupled, mshrs=64
    )
    proc = Processor(cfg, [[miss_heavy_loop()]], wrap=False)
    tracer = Tracer(proc)
    while not proc.finished():
        proc.step()
        tracer.observe()
    mode = "DECOUPLED" if decoupled else "NON-DECOUPLED"
    print(f"=== {mode} ===  (F=fetch  I=issue  C=complete  R=retire)")
    print(tracer.trace.format_timeline(tid=0, limit=24))
    print()


def main() -> None:
    run_traced(decoupled=True)
    run_traced(decoupled=False)
    print(
        "In the decoupled run, look at the I column: loads issue every "
        "couple of cycles while FALU issue times lag far behind — the AP "
        "has slipped ahead and every miss is already in flight when its "
        "consumer reaches the EP's queue head."
    )


if __name__ == "__main__":
    main()
