#!/usr/bin/env python3
"""Latency-tolerance sweep: the paper's central claim in one plot (table).

Compares a 4-thread decoupled machine against its non-decoupled twin while
the L2 latency grows from 1 to 256 cycles — Figure 4-b/4-c in miniature.
Decoupling should keep the IPC curve nearly flat; the non-decoupled curve
collapses.

Built on the experiment engine: the whole grid is described as a
:class:`repro.Sweep`, submitted once, fanned out over every core, and
cached on disk — rerunning this script simulates nothing.

Run:  python examples/latency_sweep.py
"""

from repro import Engine, ResultCache, RunSpec, Sweep, format_table

LATENCIES = (1, 16, 32, 64, 128, 256)
THREADS = 4


def main() -> None:
    sweep = Sweep.grid(
        RunSpec.multiprogrammed,
        decoupled=(True, False),
        l2_latency=LATENCIES,
        n_threads=THREADS,
        commits_per_thread=10_000,
        warmup_per_thread=6_000,
    )
    results = Engine(cache=ResultCache()).map(sweep)

    rows = []
    for decoupled in (True, False):
        label = "decoupled" if decoupled else "non-decoupled"
        ipcs = [
            results[spec].ipc
            for spec in sweep
            if spec.decoupled == decoupled
        ]
        base = ipcs[0]
        rows.append([label] + ipcs)
        rows.append(
            [f"  ({label} loss)"]
            + [f"{(ipc / base - 1) * 100:+.1f}%" for ipc in ipcs]
        )
    print(
        format_table(
            ["config"] + [f"L2={lat}" for lat in LATENCIES],
            rows,
            f"IPC vs L2 latency, {THREADS} threads (paper Figure 4-c)",
        )
    )
    print(
        f"[{results.n_runs} runs: {results.n_cached} cached, "
        f"{results.n_executed} simulated]"
    )


if __name__ == "__main__":
    main()
