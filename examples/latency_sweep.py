#!/usr/bin/env python3
"""Latency-tolerance sweep: the paper's central claim in one plot (table).

Compares a 4-thread decoupled machine against its non-decoupled twin while
the L2 latency grows from 1 to 256 cycles — Figure 4-b/4-c in miniature.
Decoupling should keep the IPC curve nearly flat; the non-decoupled curve
collapses.

Run:  python examples/latency_sweep.py
"""

from repro import Processor, format_table, multiprogram, paper_config

LATENCIES = (1, 16, 32, 64, 128, 256)
THREADS = 4


def measure(decoupled: bool, latency: int) -> float:
    cfg = paper_config(
        n_threads=THREADS, l2_latency=latency, decoupled=decoupled
    )
    proc = Processor(cfg, multiprogram(THREADS, seg_instrs=20_000))
    stats = proc.run(
        max_commits=10_000 * THREADS, warmup_commits=6_000 * THREADS
    )
    return stats.ipc


def main() -> None:
    rows = []
    for decoupled in (True, False):
        label = "decoupled" if decoupled else "non-decoupled"
        ipcs = [measure(decoupled, lat) for lat in LATENCIES]
        base = ipcs[0]
        rows.append([label] + ipcs)
        rows.append(
            [f"  ({label} loss)"]
            + [f"{(ipc / base - 1) * 100:+.1f}%" for ipc in ipcs]
        )
    print(
        format_table(
            ["config"] + [f"L2={lat}" for lat in LATENCIES],
            rows,
            f"IPC vs L2 latency, {THREADS} threads (paper Figure 4-c)",
        )
    )


if __name__ == "__main__":
    main()
