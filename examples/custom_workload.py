#!/usr/bin/env python3
"""Custom workload: define your own benchmark profile and study how well it
decouples.

The public API lets you describe a program by its memory behaviour and
dependence structure (a :class:`~repro.workloads.BenchProfile`) instead of
needing binaries or traces. This example defines a fictional sparse-solver
kernel, then measures its decoupling quality three ways:

* the AP/EP *slip* (how far the access processor runs ahead),
* the perceived FP-load miss latency (what the EP actually waits),
* IPC across decoupled vs non-decoupled machines.

Run:  python examples/custom_workload.py
"""

from repro import Processor, format_table, paper_config
from repro.workloads import BenchProfile, synthesize

KB = 1024
MB = 1024 * KB

# A fictional sparse triangular solver: gathers through an index array with
# little static scheduling distance, touches a 2 MB matrix, and feeds a
# moderately deep FP dependence chain.
sparse_solver = BenchProfile(
    name="sparse-solver",
    n_streams=2,
    unroll=2,
    elem_bytes=8,
    ws_bytes=2 * MB,
    hot_frac=0.45,
    hot_bytes=4 * KB,
    gather_frac=0.25,
    index_dist=1,
    gather_ws_bytes=2 * MB,
    fp_per_load=1.8,
    chain_depth=3,
    n_chains=3,
    store_per_load=0.25,
    iters=64,
)

# The same kernel after "software pipelining": indices loaded 3 iterations
# ahead — the compiler optimisation the paper says integer loads rely on.
pipelined = sparse_solver.with_overrides(name="sparse-pipelined", index_dist=3)


def measure(profile: BenchProfile, decoupled: bool):
    trace = synthesize(profile, 40_000)
    cfg = paper_config(n_threads=1, l2_latency=64, decoupled=decoupled,
                       scale_with_latency=True)
    proc = Processor(cfg, [[trace]])
    stats = proc.run(max_commits=25_000, warmup_commits=12_000)
    return stats


def main() -> None:
    rows = []
    for profile in (sparse_solver, pipelined):
        dec = measure(profile, decoupled=True)
        non = measure(profile, decoupled=False)
        rows.append([
            profile.name,
            dec.ipc,
            non.ipc,
            dec.average_slip,
            dec.perceived_fp_latency,
            dec.perceived_int_latency,
        ])
    print(
        format_table(
            ["kernel", "IPC dec", "IPC non-dec", "slip", "pFP (cyc)", "pINT (cyc)"],
            rows,
            "Decoupling quality of custom kernels (1 thread, L2=64)",
        )
    )
    print(
        "\npINT falls when indices are loaded further ahead: decoupling "
        "cannot hide integer-load latency; only static scheduling can "
        "(paper section 2)."
    )


if __name__ == "__main__":
    main()
