#!/usr/bin/env python3
"""Bus-saturation study: why decoupling needs fewer hardware contexts.

Reproduces the paper's Figure-5 argument at L2 = 64: the non-decoupled
machine keeps adding threads to hide latency until the off-chip bus
saturates (the paper quotes 89 % utilization at 12 threads and 98 % at 16),
while the decoupled machine peaks with 4-5 threads and modest bus load.

Run:  python examples/bus_saturation.py
"""

from repro import Processor, format_table, multiprogram, paper_config

LATENCY = 64


def measure(decoupled: bool, n_threads: int):
    cfg = paper_config(
        n_threads=n_threads, l2_latency=LATENCY, decoupled=decoupled
    )
    proc = Processor(cfg, multiprogram(n_threads, seg_instrs=20_000))
    stats = proc.run(
        max_commits=8_000 * n_threads, warmup_commits=5_000 * n_threads
    )
    return stats.ipc, stats.bus_utilization


def main() -> None:
    rows = []
    for nt in (1, 2, 3, 4, 6, 8, 12, 16):
        dec_ipc, dec_bus = measure(True, nt)
        non_ipc, non_bus = measure(False, nt)
        rows.append(
            [nt, dec_ipc, dec_bus * 100, non_ipc, non_bus * 100]
        )
    print(
        format_table(
            ["threads", "dec IPC", "dec bus %", "non-dec IPC", "non-dec bus %"],
            rows,
            f"Thread scaling at L2={LATENCY} (paper Figure 5, dotted lines)",
        )
    )


if __name__ == "__main__":
    main()
