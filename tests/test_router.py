"""Multi-fidelity sweep router: spec, error model, policies, routing.

The hard guarantees gated here:

* **Determinism** — the same grid with the same error model yields the
  byte-identical promotion set and results, serial or parallel, warm or
  cold cache.
* **Byte-identity** — a promoted cell's stats are exactly what a pure
  cycle-backend run of the same spec produces.
* **Calibration** — the error bars fitted from the committed conformance
  corpus cover the true cycle IPC for at least 90% of a held-out slice.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.engine import Engine, ResultCache, RouterSpec, RunSpec, Sweep
from repro.router.errmodel import (
    COVERAGE_MIN,
    CORPUS_SCHEMA,
    ErrorModel,
    corpus_from_conformance,
    default_corpus_path,
    features_of,
    load_corpus,
    load_model,
    split_cells,
)
from repro.router.policies import ScreenedCell, select_promotions


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")


def fast_spec(**kw):
    """A quick spec (tiny budgets); backend/router via kw."""
    base = dict(
        n_threads=1, l2_latency=16, seed=0, backend="hybrid",
        commits_per_thread=1500, warmup_per_thread=500, seg_instrs=3000,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


def hybrid_grid(latencies=(16, 64, 256), modes=(True, False), **kw):
    return list(Sweep.grid(
        fast_spec, l2_latency=list(latencies), decoupled=list(modes), **kw
    ))


# -- RouterSpec -------------------------------------------------------------------


class TestRouterSpec:
    def test_defaults_round_trip(self):
        r = RouterSpec()
        assert RouterSpec.from_dict(r.to_dict()) == r
        assert r.promote_budget == 0.15
        assert r.corpus == "default"

    def test_custom_round_trip(self):
        r = RouterSpec(policies=("extrema",), promote_budget=7,
                       error_budget=0.1, quantile=0.9, corpus="c.json")
        assert RouterSpec.from_dict(json.loads(json.dumps(r.to_dict()))) == r

    def test_hashable_and_frozen(self):
        assert len({RouterSpec(), RouterSpec()}) == 1
        with pytest.raises(AttributeError):
            RouterSpec().promote_budget = 0.5

    @pytest.mark.parametrize("kw", [
        {"policies": ("extrema", "nope")},
        {"promote_budget": 0.0},
        {"promote_budget": 1.5},
        {"promote_budget": 0},
        {"promote_budget": -3},
        {"promote_budget": "lots"},
        {"error_budget": -0.1},
        {"quantile": 0.4},
        {"quantile": 1.0},
        {"corpus": ""},
    ])
    def test_rejects_bad_config(self, kw):
        with pytest.raises(ValueError):
            RouterSpec(**kw)

    def test_promote_cap_fraction_vs_count(self):
        assert RouterSpec(promote_budget=0.15).promote_cap(200) == 30
        assert RouterSpec(promote_budget=0.15).promote_cap(3) == 1  # floor
        assert RouterSpec(promote_budget=5).promote_cap(200) == 5
        assert RouterSpec(promote_budget=5).promote_cap(3) == 3
        assert RouterSpec(promote_budget=1.0).promote_cap(4) == 4


class TestRunSpecRouter:
    def test_router_none_not_serialized(self):
        doc = fast_spec(backend="cycle").to_dict()
        assert "router" not in doc  # pre-router spec hashes stay valid

    def test_router_round_trips_through_dict(self):
        spec = fast_spec(router=RouterSpec(promote_budget=3))
        restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.router == RouterSpec(promote_budget=3)

    def test_router_changes_the_key(self):
        plain = fast_spec()
        assert plain.key() != fast_spec(router=RouterSpec()).key()
        assert (fast_spec(router=RouterSpec(promote_budget=3)).key()
                != fast_spec(router=RouterSpec(promote_budget=4)).key())

    def test_rejects_non_routerspec(self):
        with pytest.raises(ValueError, match="router"):
            fast_spec(router={"promote_budget": 0.5})


# -- the error model --------------------------------------------------------------


def _corpus_cell(mode="dec", threads=1, lat="low", mem="classic",
                 cycle=1.0, analytic=1.0):
    return {
        "features": {"mode": mode, "threads": threads,
                     "lat": lat, "mem": mem},
        "cycle_ipc": cycle,
        "analytic_ipc": analytic,
    }


class TestErrorModel:
    def test_features_of(self):
        spec = fast_spec(l2_latency=64, decoupled=False)
        assert features_of(spec) == {
            "mode": "non", "threads": 1, "lat": "mid", "mem": "classic",
        }
        assert features_of(fast_spec(l2_latency=256))["lat"] == "high"
        assert features_of(fast_spec(l2_latency=16))["lat"] == "low"

    def test_interval_covers_region_errors(self):
        # ten cells, analytic consistently 10% low -> bias correction
        cells = [
            _corpus_cell(cycle=1.1 + 0.01 * i, analytic=1.0)
            for i in range(10)
        ]
        model = ErrorModel.fit(cells)
        lo, hi = model.interval(cells[0]["features"], 1.0)
        assert lo <= 1.1 <= hi and lo <= 1.19 <= hi
        assert model.coverage(cells) == 1.0

    def test_dead_analytic_is_degenerate(self):
        model = ErrorModel.fit([_corpus_cell()])
        assert model.interval({"mode": "dec", "threads": 1,
                               "lat": "low", "mem": "classic"}, 0.0) == (0, 0)

    def test_sparse_region_falls_back_to_global(self):
        cells = [_corpus_cell(cycle=1.0, analytic=1.0) for _ in range(8)]
        model = ErrorModel.fit(cells)
        unseen = {"mode": "non", "threads": 4, "lat": "high", "mem": "x"}
        assert model.half_width_rel(unseen) == model.half_width_rel(
            cells[0]["features"]
        )

    def test_round_trip_and_stable_key(self):
        model = ErrorModel.fit(
            [_corpus_cell(cycle=1.0 + 0.1 * i) for i in range(6)]
        )
        clone = ErrorModel.from_dict(json.loads(json.dumps(model.to_dict())))
        assert clone.to_dict() == model.to_dict()
        assert clone.key() == model.key()

    def test_committed_corpus_calibrates(self):
        """The headline gate: fitted bars cover >= 90% of held-out cells."""
        cells = load_corpus(default_corpus_path())
        assert len(cells) >= 50  # the full Figure-4 + finite-L2 grid
        train, holdout = split_cells(cells)
        model = ErrorModel.fit(train)
        assert model.coverage(holdout) >= COVERAGE_MIN

    def test_load_corpus_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1", "cells": [{}]}))
        with pytest.raises(ValueError, match="not a conformance corpus"):
            load_corpus(bad)

    def test_load_model_missing_corpus_names_the_fix(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="conformance --out"):
            load_model(str(tmp_path / "absent.json"), 0.95)

    def test_corpus_from_conformance_distills(self):
        doc = {
            "quick": True, "seed": 0,
            "cells": [{
                "label": "1T", "features": {"mode": "dec", "threads": 1,
                                            "lat": "low", "mem": "classic"},
                "cycle": {"ipc": 1.0, "perceived": 2.0, "bus": 0.1},
                "analytic": {"ipc": 0.9, "perceived": 2.0, "bus": 0.1},
                "ipc_err": 0.1,
            }],
        }
        corpus = corpus_from_conformance(doc)
        assert corpus["schema"] == CORPUS_SCHEMA
        assert corpus["cells"] == [{
            "label": "1T",
            "features": {"mode": "dec", "threads": 1,
                         "lat": "low", "mem": "classic"},
            "cycle_ipc": 1.0, "analytic_ipc": 0.9,
        }]


# -- promotion policies -----------------------------------------------------------


def _screened(spec, ipc, hw_rel=0.1):
    return ScreenedCell(
        spec=spec, ipc=ipc,
        lo=ipc * (1 - hw_rel), hi=ipc * (1 + hw_rel), hw_rel=hw_rel,
    )


class TestPolicies:
    def _curve(self, latencies=(16, 64, 256), decoupled=True):
        """One figure curve with well-separated intervals."""
        return [
            _screened(fast_spec(l2_latency=lat, decoupled=decoupled),
                      ipc=4.0 / (i + 1), hw_rel=0.05)
            for i, lat in enumerate(latencies)
        ]

    def test_extrema_promotes_curve_ends(self):
        cells = self._curve()
        chosen = dict(select_promotions(cells, RouterSpec(promote_budget=1.0)))
        extrema = {s for s, r in chosen.items() if r == "extrema"}
        assert extrema == {cells[0].spec, cells[-1].spec}

    def test_mode_boundary_promotes_overlapping_twins(self):
        dec = _screened(fast_spec(decoupled=True), ipc=1.0, hw_rel=0.2)
        non = _screened(fast_spec(decoupled=False), ipc=1.1, hw_rel=0.2)
        chosen = dict(select_promotions(
            [dec, non],
            RouterSpec(policies=("boundary",), promote_budget=1.0),
        ))
        assert chosen == {dec.spec: "mode-boundary",
                          non.spec: "mode-boundary"}

    def test_disjoint_intervals_are_not_boundaries(self):
        dec = _screened(fast_spec(decoupled=True), ipc=1.0, hw_rel=0.01)
        non = _screened(fast_spec(decoupled=False), ipc=2.0, hw_rel=0.01)
        assert select_promotions(
            [dec, non],
            RouterSpec(policies=("boundary",), promote_budget=1.0),
        ) == []

    def test_dead_analytic_outranks_everything(self):
        cells = self._curve()
        cells.append(_screened(fast_spec(l2_latency=512), ipc=0.0))
        ranked = select_promotions(cells, RouterSpec(promote_budget=1))
        assert ranked == [(cells[-1].spec, "dead-analytic")]

    def test_error_budget_nominates_wide_bars(self):
        wide = _screened(fast_spec(l2_latency=999), ipc=1.0, hw_rel=0.3)
        chosen = dict(select_promotions(
            self._curve() + [wide],
            RouterSpec(policies=(), error_budget=0.2, promote_budget=1.0),
        ))
        assert chosen == {wide.spec: "error-budget"}

    def test_budget_caps_the_set(self):
        cells = self._curve() + self._curve(decoupled=False)
        assert len(select_promotions(
            cells, RouterSpec(promote_budget=2))) == 2
        assert len(select_promotions(
            cells, RouterSpec(promote_budget=1.0))) <= len(cells)

    def test_deterministic_under_input_order(self):
        cells = self._curve() + self._curve(decoupled=False)
        a = select_promotions(cells, RouterSpec(promote_budget=3))
        b = select_promotions(list(reversed(cells)),
                              RouterSpec(promote_budget=3))
        assert a == b


# -- grid routing through the engine ----------------------------------------------


class TestHybridRouting:
    def test_screened_cells_carry_analytic_stats_and_bars(self):
        specs = hybrid_grid()
        res = Engine.serial().map(specs)
        assert res.n_screened + res.n_promoted == len(specs)
        assert res.n_promoted <= RouterSpec().promote_cap(len(specs))
        assert res.cycle_cells_saved == res.n_screened
        screened = [s for s in specs
                    if res.router[s]["fidelity"] == "analytic"]
        assert screened
        for spec in screened:
            stats = res[spec]
            assert stats.fidelity == "analytic"
            assert stats.ipc_lo <= stats.ipc <= stats.ipc_hi
            # the annotation is exactly the analytic result otherwise
            pure = replace(spec, backend="analytic", router=None).execute()
            assert stats.ipc == pure.ipc
            snap = stats.snapshot()
            assert snap["fidelity"] == "analytic"
            assert snap["ipc_interval"] == [stats.ipc_lo, stats.ipc_hi]

    def test_promoted_cells_byte_identical_to_pure_cycle(self):
        specs = hybrid_grid()
        res = Engine.serial().map(specs)
        promoted = [s for s in specs if res.router[s]["fidelity"] == "cycle"]
        assert promoted
        for spec in promoted:
            pure = replace(spec, backend="cycle", router=None).execute()
            assert res[spec].to_dict() == pure.to_dict()
            assert "fidelity" not in res[spec].snapshot()

    def test_single_hybrid_run_promotes_itself(self):
        spec = fast_spec()
        stats = Engine.serial().run(spec)
        pure = replace(spec, backend="cycle", router=None).execute()
        assert stats.to_dict() == pure.to_dict()

    def test_engine_lifetime_counters_accumulate(self):
        engine = Engine.serial()
        engine.map(hybrid_grid())
        first = (engine.n_screened, engine.n_promoted)
        assert first[0] > 0 and first[1] > 0
        engine.map(hybrid_grid())
        assert engine.n_screened == 2 * first[0]
        assert engine.n_promoted == 2 * first[1]
        assert engine.cycle_cells_saved == engine.n_screened

    def test_progress_streams_screened_and_promoted(self):
        events = []
        engine = Engine(workers=1, cache=None,
                        progress=lambda ev, spec: events.append(ev))
        res = engine.map(hybrid_grid())
        assert events.count("screened") == res.n_screened
        assert events.count("promoted") == res.n_promoted

    def test_mixed_batch_routes_only_hybrid_specs(self):
        plain = fast_spec(backend="analytic", l2_latency=32)
        specs = [plain] + hybrid_grid(latencies=(16, 64), modes=(True,))
        res = Engine.serial().map(specs)
        assert plain not in res.router
        assert res[plain].fidelity == ""
        assert all(s in res.router for s in specs[1:])

    def test_error_budget_config_rides_in_the_spec(self):
        # an absurdly tight error budget turns every cell into a
        # candidate; the absolute budget still caps promotions
        router = RouterSpec(policies=(), error_budget=1e-6,
                            promote_budget=2)
        specs = hybrid_grid(router=router)
        res = Engine.serial().map(specs)
        assert res.n_promoted == 2
        reasons = {res.router[s]["reason"] for s in specs
                   if res.router[s]["fidelity"] == "cycle"}
        assert reasons == {"error-budget"}


class TestRoutingDeterminism:
    """Same grid + same error model -> byte-identical promotion set."""

    def _doc(self, res, specs):
        return {
            "runs": [res[s].to_dict() for s in specs],
            "router": [
                {k: res.router[s][k] for k in
                 ("fidelity", "reason", "ipc_lo", "ipc_hi", "model")}
                for s in specs
            ],
        }

    def test_serial_vs_parallel(self):
        specs = hybrid_grid()
        serial = Engine(workers=1, cache=None).map(specs)
        parallel = Engine(workers=2, cache=None).map(specs)
        assert self._doc(serial, specs) == self._doc(parallel, specs)

    def test_warm_vs_cold_cache(self, tmp_path):
        specs = hybrid_grid()
        cold = Engine(workers=1, cache=ResultCache(tmp_path)).map(specs)
        # a fresh engine over the same cache: every sub-fidelity run is
        # served from disk, the routing is recomputed from them
        warm_engine = Engine(workers=1, cache=ResultCache(tmp_path))
        warm = warm_engine.map(specs)
        assert self._doc(cold, specs) == self._doc(warm, specs)
        assert warm.n_promoted == cold.n_promoted
        assert warm_engine.n_executed == 0  # everything came from cache

    def test_repeat_map_on_one_engine_is_stable(self):
        engine = Engine.serial()
        specs = hybrid_grid()
        first = engine.map(specs)
        second = engine.map(specs)
        assert self._doc(first, specs) == self._doc(second, specs)


# -- CLI --------------------------------------------------------------------------


class TestRouterCLI:
    def test_sweep_hybrid_emits_provenance_and_counters(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--backend", "hybrid", "--threads", "1",
            "--latencies", "16,64,256", "--modes", "dec,non",
            "--promote-budget", "2", "--no-cache",
        ]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["n_screened"] == 4 and doc["n_promoted"] == 2
        assert doc["cycle_cells_saved"] == 4
        fidelities = [run["router"]["fidelity"] for run in doc["runs"]]
        assert fidelities.count("cycle") == 2
        for run in doc["runs"]:
            assert run["spec"]["router"]["promote_budget"] == 2
            assert "model" in run["router"]
        assert "screened" in captured.err and "promoted" in captured.err

    def test_router_flags_require_hybrid_backend(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--threads", "1", "--promote-budget", "0.5",
        ]) == 2
        assert "--backend hybrid" in capsys.readouterr().err

    def test_bad_promote_budget_is_rejected(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--backend", "hybrid", "--threads", "1",
            "--promote-budget", "1.5",
        ]) == 2
        assert "promote_budget" in capsys.readouterr().err

    def test_conformance_fit_from_committed_corpus(self, capsys):
        """The CI drift gate: no simulation, just fit + coverage."""
        from repro.cli import main

        assert main([
            "conformance", "--fit",
            "--corpus", str(default_corpus_path()),
        ]) == 0
        out = capsys.readouterr().out
        assert "held-out interval coverage" in out
        assert "PASS" in out

    def test_conformance_corpus_without_fit_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["conformance", "--corpus", "x.json"]) == 2
        assert "--fit" in capsys.readouterr().err

    def test_conformance_out_writes_a_loadable_corpus(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sub" / "corpus.json"
        assert main([
            "conformance", "--quick", "--timing-specs", "0",
            "--no-cache", "--out", str(out), "--fit",
        ]) == 0
        cells = load_corpus(out)
        assert len(cells) == 14  # the quick grid
        assert all("features" in c for c in cells)
        assert ErrorModel.fit(cells).coverage(cells) >= COVERAGE_MIN
