"""Bimodal 2-bit branch history table."""

import pytest

from repro.core.predictor import BimodalBHT


class TestCounterDynamics:
    def test_initially_weakly_taken(self):
        bht = BimodalBHT(64)
        assert bht.predict(0x1000) is True

    def test_trains_not_taken(self):
        bht = BimodalBHT(64)
        bht.update(0x1000, taken=False)
        bht.update(0x1000, taken=False)
        assert bht.predict(0x1000) is False

    def test_saturates_high(self):
        bht = BimodalBHT(64)
        for _ in range(10):
            bht.update(0x1000, taken=True)
        bht.update(0x1000, taken=False)   # one NT does not flip a saturated T
        assert bht.predict(0x1000) is True

    def test_saturates_low(self):
        bht = BimodalBHT(64)
        for _ in range(10):
            bht.update(0x1000, taken=False)
        bht.update(0x1000, taken=True)
        assert bht.predict(0x1000) is False

    def test_hysteresis(self):
        bht = BimodalBHT(64)
        bht.update(0x1000, taken=False)  # 2 -> 1: now predicts NT
        bht.update(0x1000, taken=True)   # 1 -> 2: back to T
        assert bht.predict(0x1000) is True


class TestIndexing:
    def test_distinct_branches_distinct_counters(self):
        bht = BimodalBHT(64)
        for _ in range(3):
            bht.update(0x1000, taken=False)
        assert bht.predict(0x1000) is False
        # 0x1040 >> 2 differs modulo 64: an untouched entry
        assert bht.predict(0x1040) is True

    def test_aliasing_wraps_table(self):
        bht = BimodalBHT(64)
        for _ in range(3):
            bht.update(0x0, taken=False)
        # pc 64*4 indexes the same entry in a 64-entry table
        assert bht.predict(64 * 4) is False

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalBHT(100)


class TestLoopBehaviour:
    def test_loop_branch_mispredicts_once_per_exit(self):
        """T^(n-1) NT pattern: one mispredict per loop exit."""
        bht = BimodalBHT(2048)
        mispredicts = 0
        for _trip in range(10):
            for i in range(20):
                taken = i != 19
                if bht.predict_and_update(0x4000, taken) != taken:
                    mispredicts += 1
        assert mispredicts <= 11  # ~1 per exit (+ possible cold start)

    def test_hit_counter(self):
        bht = BimodalBHT(64)
        bht.predict_and_update(0x10, True)
        bht.predict_and_update(0x10, True)
        assert bht.hits == 2
        assert bht.lookups == 2
