"""L1-L2 bus model: FIFO scheduling, bandwidth, utilization."""

import pytest

from repro.memory.interconnect import Bus, IdealInterconnect


class TestScheduling:
    def test_line_occupies_two_cycles_at_paper_width(self):
        bus = Bus(bytes_per_cycle=16, line_bytes=32)
        assert bus.cycles_per_line == 2
        assert bus.schedule_line(earliest=10) == 12

    def test_back_to_back_transfers_queue(self):
        bus = Bus(16, 32)
        assert bus.schedule_line(0) == 2
        assert bus.schedule_line(0) == 4
        assert bus.schedule_line(0) == 6

    def test_idle_gap_is_not_reused(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)            # busy 0-2
        assert bus.schedule_line(100) == 102  # starts when ready, not at 2

    def test_earliest_respected_under_contention(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)           # busy until 2
        assert bus.schedule_line(1) == 4  # waits for the bus, not earliest

    def test_wider_bus_single_cycle(self):
        bus = Bus(32, 32)
        assert bus.cycles_per_line == 1

    def test_narrow_bus(self):
        bus = Bus(4, 32)
        assert bus.cycles_per_line == 8

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Bus(0, 32)


class TestUtilization:
    def test_utilization_counts_busy_cycles(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)
        bus.schedule_line(0)
        assert bus.utilization(8) == pytest.approx(0.5)

    def test_utilization_caps_at_one(self):
        bus = Bus(16, 32)
        for _ in range(100):
            bus.schedule_line(0)
        assert bus.utilization(10) == 1.0

    def test_reset_stats_keeps_schedule(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)
        bus.reset_stats()
        assert bus.busy_since_reset() == 0
        # the bus is still busy until cycle 2 though:
        assert bus.schedule_line(0) == 4

    def test_zero_elapsed(self):
        assert Bus(16, 32).utilization(0) == 0.0


class TestQueueDelayHint:
    """Satellite fix: the hint is a backlog depth, not an absolute cycle."""

    def test_idle_bus_has_no_backlog(self):
        bus = Bus(16, 32)
        assert bus.queue_delay_hint(now=0) == 0
        assert bus.queue_delay_hint(now=100) == 0

    def test_backlog_is_relative_to_now(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)   # busy until 2
        bus.schedule_line(0)   # busy until 4
        assert bus.queue_delay_hint(now=0) == 4
        assert bus.queue_delay_hint(now=3) == 1

    def test_past_schedule_never_goes_negative(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)   # busy until 2
        assert bus.queue_delay_hint(now=50) == 0


class _EventSteppedBus:
    """Cycle-stepped reference: transfers start strictly in request order,
    each waiting until its ready cycle and the bus being free."""

    def __init__(self, bytes_per_cycle, line_bytes):
        self.cycles_per_line = max(1, -(-line_bytes // bytes_per_cycle))
        self.queue = []

    def run(self, ready_cycles):
        done = []
        clock = 0
        for ready in ready_cycles:
            clock = max(clock, ready)       # cannot start before ready
            clock += self.cycles_per_line   # occupy the bus
            done.append(clock)
        return done


class TestEagerEqualsEventStepped:
    """Property (satellite): on any request stream with monotonically
    nondecreasing ready cycles — which is what a constant outer-level
    latency produces — the eager model's completion times equal an
    event-stepped FIFO reference."""

    def test_random_streams(self):
        import random

        rng = random.Random(0x5EED)
        for width in (4, 16, 32):
            for _ in range(20):
                n = rng.randrange(1, 40)
                readies = []
                t = 0
                for _ in range(n):
                    t += rng.randrange(0, 6)
                    readies.append(t)
                bus = Bus(width, 32)
                eager = [bus.schedule_line(r) for r in readies]
                ref = _EventSteppedBus(width, 32).run(readies)
                assert eager == ref, (width, readies)


class TestIdealInterconnect:
    def test_transfers_never_queue(self):
        bus = IdealInterconnect(16, 32)
        assert bus.schedule_line(0) == 2
        assert bus.schedule_line(0) == 2   # no FIFO backlog
        assert bus.schedule_line(5) == 7

    def test_utilization_still_accounted(self):
        bus = IdealInterconnect(16, 32)
        bus.schedule_line(0)
        bus.schedule_line(0)
        assert bus.busy_since_reset() == 4

    def test_no_backlog_hint(self):
        bus = IdealInterconnect(16, 32)
        bus.schedule_line(0)
        assert bus.queue_delay_hint(now=0) == 0
