"""L1-L2 bus model: FIFO scheduling, bandwidth, utilization."""

import pytest

from repro.memory.bus import Bus


class TestScheduling:
    def test_line_occupies_two_cycles_at_paper_width(self):
        bus = Bus(bytes_per_cycle=16, line_bytes=32)
        assert bus.cycles_per_line == 2
        assert bus.schedule_line(earliest=10) == 12

    def test_back_to_back_transfers_queue(self):
        bus = Bus(16, 32)
        assert bus.schedule_line(0) == 2
        assert bus.schedule_line(0) == 4
        assert bus.schedule_line(0) == 6

    def test_idle_gap_is_not_reused(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)            # busy 0-2
        assert bus.schedule_line(100) == 102  # starts when ready, not at 2

    def test_earliest_respected_under_contention(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)           # busy until 2
        assert bus.schedule_line(1) == 4  # waits for the bus, not earliest

    def test_wider_bus_single_cycle(self):
        bus = Bus(32, 32)
        assert bus.cycles_per_line == 1

    def test_narrow_bus(self):
        bus = Bus(4, 32)
        assert bus.cycles_per_line == 8

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Bus(0, 32)


class TestUtilization:
    def test_utilization_counts_busy_cycles(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)
        bus.schedule_line(0)
        assert bus.utilization(8) == pytest.approx(0.5)

    def test_utilization_caps_at_one(self):
        bus = Bus(16, 32)
        for _ in range(100):
            bus.schedule_line(0)
        assert bus.utilization(10) == 1.0

    def test_reset_stats_keeps_schedule(self):
        bus = Bus(16, 32)
        bus.schedule_line(0)
        bus.reset_stats()
        assert bus.busy_since_reset() == 0
        # the bus is still busy until cycle 2 though:
        assert bus.schedule_line(0) == 4

    def test_zero_elapsed(self):
        assert Bus(16, 32).utilization(0) == 0.0
