"""StaticInst / DynInst behaviour."""

from repro.isa.instruction import DynInst, ST_DISPATCHED, StaticInst
from repro.isa.opclass import OpClass, Unit


class TestStaticInst:
    def test_presteered_unit(self):
        assert StaticInst(0, OpClass.IALU).unit is Unit.AP
        assert StaticInst(0, OpClass.FALU).unit is Unit.EP
        assert StaticInst(0, OpClass.LOAD_F).unit is Unit.AP

    def test_load_predicates(self):
        ld = StaticInst(0, OpClass.LOAD_F, dest=40, srcs=(2,), addr=0x100)
        assert ld.is_load and not ld.is_store and not ld.is_branch

    def test_store_predicates(self):
        st = StaticInst(0, OpClass.STORE_I, srcs=(2, 4), addr=0x100)
        assert st.is_store and not st.is_load

    def test_branch_predicates(self):
        br = StaticInst(0, OpClass.BRANCH, srcs=(4,), taken=True, target=0x40)
        assert br.is_branch and br.taken and br.target == 0x40

    def test_defaults(self):
        inst = StaticInst(0x1000, OpClass.IALU, dest=4)
        assert inst.srcs == ()
        assert inst.addr == 0
        assert not inst.taken


class TestDynInst:
    def _mk(self, wrong_path=False):
        return DynInst(
            StaticInst(0, OpClass.LOAD_F, dest=40, srcs=(2,), addr=8),
            thread=1, seq=7, wrong_path=wrong_path,
        )

    def test_initial_state(self):
        d = self._mk()
        assert d.state == ST_DISPATCHED
        assert d.pdest == -1
        assert d.pdata == -1
        assert d.old_pdest == -1
        assert not d.load_miss
        assert not d.store_ready
        assert not d.mem_done

    def test_identity_fields(self):
        d = self._mk()
        assert d.thread == 1
        assert d.seq == 7
        assert d.unit is Unit.AP
        assert d.op is OpClass.LOAD_F

    def test_wrong_path_flag(self):
        assert self._mk(wrong_path=True).wrong_path
        assert not self._mk().wrong_path

    def test_slots_prevent_arbitrary_attributes(self):
        d = self._mk()
        try:
            d.not_a_field = 1
            assert False, "DynInst must use __slots__"
        except AttributeError:
            pass
