"""Architectural register namespace."""

import pytest

from repro.isa import registers as R


class TestFlatIds:
    def test_int_regs_are_low_ids(self):
        assert R.int_reg(0) == 0
        assert R.int_reg(31) == 31

    def test_fp_regs_are_offset(self):
        assert R.fp_reg(0) == R.FP_BASE == 32
        assert R.fp_reg(31) == 63

    def test_int_reg_range_checked(self):
        with pytest.raises(ValueError):
            R.int_reg(32)
        with pytest.raises(ValueError):
            R.int_reg(-1)

    def test_fp_reg_range_checked(self):
        with pytest.raises(ValueError):
            R.fp_reg(32)

    def test_is_fp(self):
        assert not R.is_fp(0)
        assert not R.is_fp(31)
        assert R.is_fp(32)
        assert R.is_fp(63)


class TestZeroRegisters:
    def test_zero_ids(self):
        assert R.is_zero(R.INT_ZERO)
        assert R.is_zero(R.FP_ZERO)
        assert R.INT_ZERO == 31
        assert R.FP_ZERO == 63

    def test_non_zero_ids(self):
        assert not R.is_zero(0)
        assert not R.is_zero(30)
        assert not R.is_zero(32)


class TestNames:
    def test_int_names(self):
        assert R.reg_name(0) == "r0"
        assert R.reg_name(31) == "r31"

    def test_fp_names(self):
        assert R.reg_name(32) == "f0"
        assert R.reg_name(63) == "f31"

    def test_name_range_checked(self):
        with pytest.raises(ValueError):
            R.reg_name(64)
