"""MSHR file: allocation, time-based release, exhaustion."""

import pytest

from repro.memory.levels import MSHRFile


class TestAllocation:
    def test_initially_available(self):
        m = MSHRFile(4)
        assert m.available(0)
        assert m.outstanding == 0

    def test_exhaustion(self):
        m = MSHRFile(2)
        m.allocate(release_cycle=10)
        m.allocate(release_cycle=10)
        assert not m.available(5)

    def test_release_frees_entry(self):
        m = MSHRFile(1)
        m.allocate(release_cycle=10)
        assert not m.available(9)
        assert m.available(10)
        assert m.outstanding == 0

    def test_releases_in_time_order(self):
        m = MSHRFile(2)
        m.allocate(release_cycle=20)
        m.allocate(release_cycle=5)
        assert m.available(5)       # the earlier one frees first
        m.allocate(release_cycle=30)
        assert not m.available(10)

    def test_failure_counter(self):
        m = MSHRFile(1)
        m.note_failure()
        m.note_failure()
        assert m.alloc_failures == 2

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_many_outstanding(self):
        m = MSHRFile(16)
        for i in range(16):
            m.allocate(release_cycle=100 + i)
        assert m.outstanding == 16
        assert not m.available(99)
        assert m.available(100)
        assert m.outstanding == 15
