"""Integration tests asserting the paper's qualitative result shapes.

Small instruction budgets keep these fast; the assertions are deliberately
loose bands around the paper's claims (S1-S8 in DESIGN.md), not exact
numbers. The full-budget numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.runner import run_multiprogrammed, run_single_benchmark


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.4")


class TestSection2Shapes:
    def test_s1_decoupling_hides_fp_miss_latency(self):
        """Good decouplers perceive almost none of a 64-cycle L2 latency."""
        for bench in ("tomcatv", "swim", "applu"):
            stats = run_single_benchmark(bench, l2_latency=64)
            assert stats.perceived_fp_latency < 5, bench

    def test_s1_fpppp_is_the_exception(self):
        good = run_single_benchmark("tomcatv", l2_latency=64)
        bad = run_single_benchmark("fpppp", l2_latency=64)
        assert bad.perceived_fp_latency > 10 * max(0.3, good.perceived_fp_latency)

    def test_s2_int_load_stall_programs(self):
        """fpppp/turb3d perceive large integer-load latency; tomcatv none."""
        stats_t = run_single_benchmark("turb3d", l2_latency=64)
        stats_c = run_single_benchmark("tomcatv", l2_latency=64)
        assert stats_t.perceived_int_latency > 20
        assert stats_c.perceived_int_latency < 2

    def test_s3_degradation_needs_miss_ratio_and_perceived_latency(self):
        """fpppp perceives latency but hardly misses -> small IPC loss.

        Its resident working set needs a long warm-up before the steady
        state (~1 % miss ratio) is visible.
        """
        lo = run_single_benchmark("fpppp", l2_latency=1,
                                  commits=25_000, warmup=40_000)
        hi = run_single_benchmark("fpppp", l2_latency=128,
                                  commits=25_000, warmup=40_000)
        assert hi.ipc > 0.7 * lo.ipc

    def test_s3_good_decoupler_insensitive(self):
        lo = run_single_benchmark("applu", l2_latency=1)
        hi = run_single_benchmark("applu", l2_latency=128)
        assert hi.ipc > 0.8 * lo.ipc


class TestSection3Shapes:
    def test_s4_multithreading_fills_the_machine(self):
        """1 -> 3 threads roughly doubles-and-a-half throughput (paper 2.31x)."""
        s1 = run_multiprogrammed(1, l2_latency=16)
        s3 = run_multiprogrammed(3, l2_latency=16)
        assert 1.8 < s3.ipc / s1.ipc < 3.0

    def test_s4_one_thread_is_fu_latency_bound(self):
        stats = run_multiprogrammed(1, l2_latency=16)
        ep = stats.slot_fractions(1)
        assert ep["wait_fu"] > 0.4  # EP mostly waits on FU results

    def test_s6_latency_tolerance_gap(self):
        """At L2=32 decoupled loses a few percent, non-decoupled tens."""
        dec_1 = run_multiprogrammed(4, l2_latency=1)
        dec_32 = run_multiprogrammed(4, l2_latency=32)
        non_1 = run_multiprogrammed(4, l2_latency=1, decoupled=False)
        non_32 = run_multiprogrammed(4, l2_latency=32, decoupled=False)
        dec_loss = 1 - dec_32.ipc / dec_1.ipc
        non_loss = 1 - non_32.ipc / non_1.ipc
        assert dec_loss < 0.15
        assert non_loss > 0.2
        assert non_loss > dec_loss + 0.1

    def test_s7_multithreading_raises_decoupling_flattens(self):
        """MT raises the curves; decoupling is what makes them flat."""
        dec_1t = run_multiprogrammed(1, l2_latency=64)
        dec_4t = run_multiprogrammed(4, l2_latency=64)
        non_4t = run_multiprogrammed(4, l2_latency=64, decoupled=False)
        assert dec_4t.ipc > 1.5 * dec_1t.ipc   # MT raises
        assert dec_4t.ipc > 1.3 * non_4t.ipc   # decoupling tolerates latency

    def test_s8_decoupled_saturates_with_fewer_threads(self):
        dec_3 = run_multiprogrammed(3, l2_latency=16)
        non_3 = run_multiprogrammed(3, l2_latency=16, decoupled=False)
        non_6 = run_multiprogrammed(6, l2_latency=16, decoupled=False)
        # 3 decoupled threads beat 3 non-decoupled ones decisively, and the
        # non-decoupled machine keeps scaling to 6 threads
        assert dec_3.ipc > 1.3 * non_3.ipc
        assert non_6.ipc > 1.25 * non_3.ipc

    def test_s8_bus_saturation_at_high_latency(self):
        """At L2=64 the non-decoupled machine drives the bus towards
        saturation as threads are added (paper: 89 % at 12 threads)."""
        non_12 = run_multiprogrammed(
            12, l2_latency=64, decoupled=False,
            commits_per_thread=6000, warmup_per_thread=3000,
        )
        assert non_12.bus_utilization > 0.75

    def test_s8_decoupled_few_threads_match_non_decoupled_many(self):
        dec_3 = run_multiprogrammed(3, l2_latency=64)
        non_10 = run_multiprogrammed(
            10, l2_latency=64, decoupled=False,
            commits_per_thread=6000, warmup_per_thread=3000,
        )
        assert dec_3.ipc > 0.85 * non_10.ipc
