"""Machine configuration: paper defaults, scaling, validation."""

import pytest

from repro.core.config import MachineConfig, PAPER_BASELINE, paper_config


class TestPaperDefaults:
    def test_figure2_parameters(self):
        cfg = PAPER_BASELINE
        assert cfg.ap_width == 4 and cfg.ep_width == 4
        assert cfg.ap_latency == 1 and cfg.ep_latency == 4
        assert cfg.fetch_threads == 2 and cfg.fetch_width == 8
        assert cfg.max_unresolved_branches == 4
        assert cfg.iq_size == 48
        assert cfg.saq_size == 32
        assert cfg.ap_regs == 64 and cfg.ep_regs == 96
        assert cfg.bht_entries == 2048
        assert cfg.l1_bytes == 64 * 1024
        assert cfg.line_bytes == 32
        assert cfg.l1_ports == 4
        assert cfg.mshrs == 16
        assert cfg.l2_latency == 16
        assert cfg.bus_bytes_per_cycle == 16

    def test_decoupled_by_default(self):
        assert PAPER_BASELINE.decoupled


class TestValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            MachineConfig(n_threads=0)

    def test_rejects_tiny_register_files(self):
        with pytest.raises(ValueError):
            MachineConfig(ap_regs=32)

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            MachineConfig(l2_latency=0)

    def test_rejects_unknown_fetch_policy(self):
        with pytest.raises(ValueError):
            MachineConfig(fetch_policy="priority")


class TestScaling:
    def test_identity_at_16_cycles(self):
        cfg = PAPER_BASELINE.scaled_for_latency(16)
        assert cfg.iq_size == 48
        assert cfg.saq_size == 32
        assert cfg.mshrs == 16

    def test_no_downscaling_below_baseline(self):
        cfg = PAPER_BASELINE.scaled_for_latency(1)
        assert cfg.iq_size == 48
        assert cfg.ap_regs == 64

    def test_proportional_at_256(self):
        cfg = PAPER_BASELINE.scaled_for_latency(256)
        assert cfg.iq_size == 48 * 16
        assert cfg.saq_size == 32 * 16
        assert cfg.mshrs == 16 * 16
        # register files scale their *rename* capacity beyond the 32
        # architectural registers
        assert cfg.ap_regs == 32 + (64 - 32) * 16
        assert cfg.ep_regs == 32 + (96 - 32) * 16

    def test_non_decoupled_helper(self):
        assert not PAPER_BASELINE.non_decoupled().decoupled


class TestPaperConfigHelper:
    def test_mshrs_scale_even_unscaled_queues(self):
        # see DESIGN.md: the MSHR file is treated as a scaled resource
        cfg = paper_config(n_threads=2, l2_latency=64)
        assert cfg.iq_size == 48           # queues stay at Figure-2 sizes
        assert cfg.mshrs == 64             # 16 * (64/16)

    def test_scale_with_latency_scales_queues(self):
        cfg = paper_config(l2_latency=64, scale_with_latency=True)
        assert cfg.iq_size == 192

    def test_overrides_pass_through(self):
        cfg = paper_config(n_threads=3, fetch_policy="rr", rob_size=99)
        assert cfg.n_threads == 3
        assert cfg.fetch_policy == "rr"
        assert cfg.rob_size == 99

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_BASELINE.n_threads = 5
