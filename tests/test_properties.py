"""Property-based tests (hypothesis) for core data structures and invariants."""

from collections import deque

from hypothesis import given, settings, strategies as st

from conftest import ProgramBuilder
from repro.core.config import MachineConfig
from repro.core.predictor import BimodalBHT
from repro.core.processor import Processor
from repro.core.queues import InstQueue, StoreAddressQueue
from repro.core.rename import RenameFile
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opclass import OpClass
from repro.memory.cache import HIT, MISS, SECONDARY, CONFLICT, L1Cache
from repro.workloads.synth import fold, FOLD_WINDOW


# ------------------------------------------------------------------ cache model

@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=1 << 20).map(lambda a: a & ~7),
        min_size=1, max_size=200,
    )
)
def test_cache_agrees_with_reference_model(addrs):
    """The tag array must behave exactly like a dict-based direct-mapped
    reference model when every fill completes instantly."""
    cache = L1Cache(4096, 32)  # 128 sets: small, conflict-prone
    reference: dict[int, int] = {}
    now = 0
    for addr in addrs:
        now += 1
        line = addr >> 5
        idx = line % 128
        outcome, _i, _w = cache.probe(addr, now)
        expected_hit = reference.get(idx) == line
        assert (outcome == HIT) == expected_hit
        if outcome == MISS:
            cache.install(addr, now, fill_cycle=now, make_dirty=False)
            reference[idx] = line


@settings(max_examples=40, deadline=None)
@given(offs=st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=60))
def test_fold_preserves_window_and_region(offs):
    base = 0x10000000 + 16 * 1024
    for off in offs:
        addr = fold(base, off)
        assert addr >> 26 == base >> 26
        set_off = addr % (64 * 1024)
        base_off = base % (64 * 1024)
        assert base_off <= set_off < base_off + FOLD_WINDOW


# ------------------------------------------------------------------ queues

@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 1000)),
            st.tuples(st.just("pop"), st.just(0)),
            st.tuples(st.just("squash"), st.integers(0, 1000)),
        ),
        max_size=80,
    )
)
def test_inst_queue_stays_ordered_and_bounded(ops):
    q = InstQueue(16)
    model: deque = deque()
    seq = 0
    for kind, _arg in ops:
        if kind == "push" and not q.full:
            seq += 1
            d = DynInst(StaticInst(0, OpClass.IALU, dest=4), 0, seq, False)
            q.push(d)
            model.append(seq)
        elif kind == "pop" and q:
            assert q.pop_head().seq == model.popleft()
        elif kind == "squash":
            cut = seq - 3
            q.squash_tail(cut)
            while model and model[-1] > cut:
                model.pop()
        assert len(q) == len(model)
        assert len(q) <= 16
        seqs = [d.seq for d in q.q]
        assert seqs == sorted(seqs)


@settings(max_examples=60, deadline=None)
@given(
    stores=st.lists(
        st.tuples(st.integers(0, 30).map(lambda x: 0x1000 + x * 8),),
        min_size=1, max_size=20,
    ),
    probe=st.integers(0, 30).map(lambda x: 0x1000 + x * 8),
)
def test_saq_match_agrees_with_linear_scan(stores, probe):
    q = StoreAddressQueue(64)
    entries = []
    for seq, (addr,) in enumerate(stores, start=1):
        d = DynInst(
            StaticInst(0, OpClass.STORE_F, srcs=(2, 36), addr=addr), 0, seq, False
        )
        q.push(d)
        entries.append(d)
    load_seq = len(stores) + 1
    expected = None
    for d in entries:
        if d.seq < load_seq and d.static.addr == probe:
            expected = d
    assert q.find_older_match(probe, load_seq) is expected


# ------------------------------------------------------------------ rename

@settings(max_examples=40, deadline=None)
@given(
    archs=st.lists(st.integers(0, 30), min_size=1, max_size=30),
)
def test_rename_walkback_is_exact_inverse(archs):
    """Renaming a sequence then undoing it youngest-first must restore the
    map table and free lists exactly."""
    r = RenameFile(64, 96)
    before_map = list(r.map)
    before_free = (list(r.free_ap), list(r.free_ep))
    done = []
    for arch in archs:
        if not r.can_rename_dest(arch):
            break
        p, old = r.rename_dest(arch)
        done.append((arch, p, old))
    for arch, p, old in reversed(done):
        r.undo_rename(arch, p, old)
        r.free(p)
    assert r.map == before_map
    assert sorted(r.free_ap) == sorted(before_free[0])
    assert sorted(r.free_ep) == sorted(before_free[1])
    r.check_invariants()


# ------------------------------------------------------------------ predictor

@settings(max_examples=40, deadline=None)
@given(outcomes=st.lists(st.booleans(), max_size=100))
def test_bht_counters_stay_saturated(outcomes):
    bht = BimodalBHT(64)
    for taken in outcomes:
        bht.predict_and_update(0x1000, taken)
        assert 0 <= bht.table[(0x1000 >> 2) & 63] <= 3


# ------------------------------------------------------------------ pipeline

_OP_POOL = st.sampled_from(["ialu", "falu", "load", "store", "branch"])


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OP_POOL, min_size=1, max_size=120), data=st.data())
def test_random_programs_commit_exactly_and_hold_invariants(ops, data):
    """Any random well-formed program commits every instruction exactly once
    and never corrupts rename/queue ordering invariants."""
    b = ProgramBuilder()
    for i, kind in enumerate(ops):
        if kind == "ialu":
            b.ialu(dest=4 + (i % 6), srcs=(4 + ((i + 1) % 6),))
        elif kind == "falu":
            b.falu(dest=36 + (i % 6), srcs=(36 + ((i + 1) % 6),))
        elif kind == "load":
            b.load_f(dest=40 + (i % 8), base=2,
                     addr=0x2000 + (i % 50) * 32)
        elif kind == "store":
            b.store_f(base=2, data=36 + (i % 6), addr=0x4000 + (i % 20) * 8)
        else:
            b.branch(taken=data.draw(st.booleans()), src=4)
    tr = b.trace()
    cfg = MachineConfig()
    proc = Processor(cfg, [[tr]], wrap=False)
    stats = proc.run(max_cycles=60_000)
    assert stats.committed == len(tr)
    proc.check_invariants()
    # all stores eventually drained
    assert stats.stores == sum(1 for k in ops if k == "store")
