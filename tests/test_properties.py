"""Property-based tests for core data structures and invariants.

Two flavours: hypothesis-driven structure tests on the micro components,
and a seeded-random *machine grid* — randomized ``MachineConfig`` points
driving the full cycle backend on real synthetic workloads — asserting
the cross-cutting invariants every configuration must satisfy:
issue-slot conservation (``cycles * width == sum(breakdown)`` per unit),
exact commit counts on finite programs, faithful stats serialisation,
and fast-forward ≡ per-cycle-walk bit-identity.
"""

import random
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from conftest import ProgramBuilder
from repro.core.config import MachineConfig
from repro.core.predictor import BimodalBHT
from repro.core.processor import Processor
from repro.core.queues import InstQueue, StoreAddressQueue
from repro.core.rename import RenameFile
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opclass import OpClass
from repro.memory.levels import HIT, MISS, L1Cache
from repro.stats.counters import SimStats
from repro.workloads.multiprogram import multiprogram
from repro.workloads.synth import fold, FOLD_WINDOW


# ------------------------------------------------------------------ cache model

@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=1 << 20).map(lambda a: a & ~7),
        min_size=1, max_size=200,
    )
)
def test_cache_agrees_with_reference_model(addrs):
    """The tag array must behave exactly like a dict-based direct-mapped
    reference model when every fill completes instantly."""
    cache = L1Cache(4096, 32)  # 128 sets: small, conflict-prone
    reference: dict[int, int] = {}
    now = 0
    for addr in addrs:
        now += 1
        line = addr >> 5
        idx = line % 128
        outcome, _i, _w = cache.probe(addr, now)
        expected_hit = reference.get(idx) == line
        assert (outcome == HIT) == expected_hit
        if outcome == MISS:
            cache.install(addr, now, fill_cycle=now, make_dirty=False)
            reference[idx] = line


@settings(max_examples=40, deadline=None)
@given(offs=st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=60))
def test_fold_preserves_window_and_region(offs):
    base = 0x10000000 + 16 * 1024
    for off in offs:
        addr = fold(base, off)
        assert addr >> 26 == base >> 26
        set_off = addr % (64 * 1024)
        base_off = base % (64 * 1024)
        assert base_off <= set_off < base_off + FOLD_WINDOW


# ------------------------------------------------------------------ queues

@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 1000)),
            st.tuples(st.just("pop"), st.just(0)),
            st.tuples(st.just("squash"), st.integers(0, 1000)),
        ),
        max_size=80,
    )
)
def test_inst_queue_stays_ordered_and_bounded(ops):
    q = InstQueue(16)
    model: deque = deque()
    seq = 0
    for kind, _arg in ops:
        if kind == "push" and not q.full:
            seq += 1
            d = DynInst(StaticInst(0, OpClass.IALU, dest=4), 0, seq, False)
            q.push(d)
            model.append(seq)
        elif kind == "pop" and q:
            assert q.pop_head().seq == model.popleft()
        elif kind == "squash":
            cut = seq - 3
            q.squash_tail(cut)
            while model and model[-1] > cut:
                model.pop()
        assert len(q) == len(model)
        assert len(q) <= 16
        seqs = [d.seq for d in q.q]
        assert seqs == sorted(seqs)


@settings(max_examples=60, deadline=None)
@given(
    stores=st.lists(
        st.tuples(st.integers(0, 30).map(lambda x: 0x1000 + x * 8),),
        min_size=1, max_size=20,
    ),
    probe=st.integers(0, 30).map(lambda x: 0x1000 + x * 8),
)
def test_saq_match_agrees_with_linear_scan(stores, probe):
    q = StoreAddressQueue(64)
    entries = []
    for seq, (addr,) in enumerate(stores, start=1):
        d = DynInst(
            StaticInst(0, OpClass.STORE_F, srcs=(2, 36), addr=addr), 0, seq, False
        )
        q.push(d)
        entries.append(d)
    load_seq = len(stores) + 1
    expected = None
    for d in entries:
        if d.seq < load_seq and d.static.addr == probe:
            expected = d
    assert q.find_older_match(probe, load_seq) is expected


# ------------------------------------------------------------------ rename

@settings(max_examples=40, deadline=None)
@given(
    archs=st.lists(st.integers(0, 30), min_size=1, max_size=30),
)
def test_rename_walkback_is_exact_inverse(archs):
    """Renaming a sequence then undoing it youngest-first must restore the
    map table and free lists exactly."""
    r = RenameFile(64, 96)
    before_map = list(r.map)
    before_free = (list(r.free_ap), list(r.free_ep))
    done = []
    for arch in archs:
        if not r.can_rename_dest(arch):
            break
        p, old = r.rename_dest(arch)
        done.append((arch, p, old))
    for arch, p, old in reversed(done):
        r.undo_rename(arch, p, old)
        r.free(p)
    assert r.map == before_map
    assert sorted(r.free_ap) == sorted(before_free[0])
    assert sorted(r.free_ep) == sorted(before_free[1])
    r.check_invariants()


# ------------------------------------------------------------------ predictor

@settings(max_examples=40, deadline=None)
@given(outcomes=st.lists(st.booleans(), max_size=100))
def test_bht_counters_stay_saturated(outcomes):
    bht = BimodalBHT(64)
    for taken in outcomes:
        bht.predict_and_update(0x1000, taken)
        assert 0 <= bht.table[(0x1000 >> 2) & 63] <= 3


# ------------------------------------------------------------------ pipeline

_OP_POOL = st.sampled_from(["ialu", "falu", "load", "store", "branch"])


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OP_POOL, min_size=1, max_size=120), data=st.data())
def test_random_programs_commit_exactly_and_hold_invariants(ops, data):
    """Any random well-formed program commits every instruction exactly once
    and never corrupts rename/queue ordering invariants."""
    b = ProgramBuilder()
    for i, kind in enumerate(ops):
        if kind == "ialu":
            b.ialu(dest=4 + (i % 6), srcs=(4 + ((i + 1) % 6),))
        elif kind == "falu":
            b.falu(dest=36 + (i % 6), srcs=(36 + ((i + 1) % 6),))
        elif kind == "load":
            b.load_f(dest=40 + (i % 8), base=2,
                     addr=0x2000 + (i % 50) * 32)
        elif kind == "store":
            b.store_f(base=2, data=36 + (i % 6), addr=0x4000 + (i % 20) * 8)
        else:
            b.branch(taken=data.draw(st.booleans()), src=4)
    tr = b.trace()
    cfg = MachineConfig()
    proc = Processor(cfg, [[tr]], wrap=False)
    stats = proc.run(max_cycles=60_000)
    assert stats.committed == len(tr)
    proc.check_invariants()
    # all stores eventually drained
    assert stats.stores == sum(1 for k in ops if k == "store")


# --------------------------------------------------- randomized machine grid


def sample_config(seed: int) -> MachineConfig:
    """One random-but-sane machine configuration, deterministic in seed."""
    rng = random.Random(0xC0FFEE ^ (seed * 0x9E3779B1))
    return MachineConfig(
        n_threads=rng.randint(1, 3),
        decoupled=rng.random() < 0.5,
        l2_latency=rng.choice((1, 8, 16, 48, 96)),
        ap_width=rng.randint(2, 4),
        ep_width=rng.randint(2, 4),
        dispatch_width=rng.choice((4, 6, 8)),
        fetch_width=rng.choice((4, 8)),
        fetch_policy=rng.choice(("icount", "rr")),
        iq_size=rng.choice((16, 32, 64)),
        aq_size=rng.choice((16, 32, 64)),
        saq_size=rng.choice((16, 32)),
        rob_size=rng.choice((64, 128, 256)),
        ap_regs=rng.choice((48, 64, 96)),
        ep_regs=rng.choice((64, 96, 128)),
        mshrs=rng.choice((4, 8, 16, 24)),
        max_unresolved_branches=rng.randint(2, 6),
    )


GRID_SEEDS = range(6)


def _grid_run(seed: int, fast_forward: bool = True):
    cfg = sample_config(seed)
    playlists = multiprogram(cfg.n_threads, seg_instrs=2500, seed=seed)
    proc = Processor(cfg, playlists, seed=seed)
    stats = proc.run(
        max_commits=1200 * cfg.n_threads,
        warmup_commits=300 * cfg.n_threads,
        max_cycles=400_000,
        fast_forward=fast_forward,
    )
    return cfg, proc, stats


@pytest.mark.parametrize("seed", GRID_SEEDS)
def test_issue_slots_are_conserved(seed):
    """Every cycle classifies every issue slot of both units exactly once,
    whatever the configuration: cycles * width == sum(breakdown)."""
    cfg, proc, stats = _grid_run(seed)
    for unit, width in ((0, cfg.ap_width), (1, cfg.ep_width)):
        row = stats.slot_counts[unit]
        assert all(v >= 0 for v in row)
        assert sum(row) == stats.cycles * width, (cfg, unit, row)
    proc.check_invariants()


@pytest.mark.parametrize("seed", GRID_SEEDS)
def test_stats_round_trip_on_random_configs(seed):
    _cfg, _proc, stats = _grid_run(seed)
    clone = SimStats.from_dict(stats.to_dict())
    assert clone == stats
    assert clone.to_dict() == stats.to_dict()


@pytest.mark.parametrize("seed", GRID_SEEDS)
def test_fast_forward_is_bit_identical_on_random_configs(seed):
    # comparable_dict: every architectural counter must match; only the
    # scheduler's own ff_jumps/ff_cycles_skipped diagnostics may differ
    walked = _grid_run(seed, fast_forward=False)[2]
    jumped = _grid_run(seed, fast_forward=True)[2]
    assert jumped.comparable_dict() == walked.comparable_dict()


@pytest.mark.parametrize("seed", GRID_SEEDS)
def test_finite_programs_commit_exactly_once_per_context(seed):
    """On every sampled config, a finite trace commits each instruction
    exactly once per hardware context — no loss, no duplication."""
    cfg = sample_config(seed)
    b = ProgramBuilder()
    rng = random.Random(seed)
    for i in range(160):
        kind = rng.choice(("ialu", "falu", "load", "store", "branch"))
        if kind == "ialu":
            b.ialu(dest=4 + (i % 6), srcs=(4 + ((i + 1) % 6),))
        elif kind == "falu":
            b.falu(dest=36 + (i % 6), srcs=(36 + ((i + 1) % 6),))
        elif kind == "load":
            b.load_f(dest=40 + (i % 8), base=2, addr=0x2000 + (i % 50) * 32)
        elif kind == "store":
            b.store_f(base=2, data=36 + (i % 6), addr=0x4000 + (i % 20) * 8)
        else:
            b.branch(taken=rng.random() < 0.5, src=4)
    tr = b.trace()
    proc = Processor(cfg, [[tr]] * cfg.n_threads, wrap=False)
    stats = proc.run(max_cycles=120_000)
    assert stats.committed == len(tr) * cfg.n_threads
    assert sorted(stats.committed_per_thread.values()) == (
        [len(tr)] * cfg.n_threads
    )
    proc.check_invariants()
