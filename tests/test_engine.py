"""Experiment engine: spec hashing, sweeps, cache, scheduler (tiny budgets)."""

import copy
import json
import os
import re
import warnings
from pathlib import Path

import pytest

from repro.engine import Engine, ResultCache, RunSpec, Sweep, submit
from repro.engine.cache import default_cache_dir
from repro.engine.scheduler import resolve_workers
from repro.stats.counters import SimStats


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


def tiny_spec(**kw):
    """A spec cheap enough to execute inside a unit test."""
    base = dict(
        n_threads=1, l2_latency=16, seed=0,
        commits_per_thread=1500, warmup_per_thread=500, seg_instrs=3000,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


class TestRunSpecIdentity:
    def test_same_description_same_key(self):
        assert tiny_spec() == tiny_spec()
        assert tiny_spec().key() == tiny_spec().key()

    @pytest.mark.parametrize("change", [
        {"n_threads": 2},
        {"l2_latency": 64},
        {"decoupled": False},
        {"seed": 1},
        {"commits_per_thread": 1501},
        {"seg_instrs": 3001},
        {"fetch_policy": "rr"},     # config override
    ])
    def test_any_field_change_changes_key(self, change):
        assert tiny_spec(**change).key() != tiny_spec().key()

    def test_scale_change_changes_key(self, monkeypatch):
        a = tiny_spec()
        monkeypatch.setenv("REPRO_SCALE", "0.16")
        b = tiny_spec()
        assert a.scale != b.scale
        assert a.key() != b.key()
        # and explicitly pinned scales behave the same way
        assert tiny_spec(scale=0.1).key() != tiny_spec(scale=0.2).key()

    def test_backend_is_part_of_the_key(self):
        # cache entries can never be served across backends
        assert tiny_spec(backend="analytic").key() != tiny_spec().key()
        assert "[analytic]" in tiny_spec(backend="analytic").label()
        assert "[" not in tiny_spec().label()

    def test_with_backend_retargets(self):
        spec = tiny_spec()
        ana = spec.with_backend("analytic")
        assert ana.backend == "analytic" and ana.n_threads == spec.n_threads
        assert spec.with_backend("cycle") is spec

    def test_backend_validated(self):
        from repro.workloads.spec import WorkloadSpec

        with pytest.raises(ValueError):
            RunSpec(workload=WorkloadSpec.rotation(1), backend="")

    def test_override_order_is_canonical(self):
        a = RunSpec.multiprogrammed(1, mshrs=8, fetch_policy="rr")
        b = RunSpec.multiprogrammed(1, fetch_policy="rr", mshrs=8)
        assert a == b and a.key() == b.key()

    def test_dict_round_trip(self):
        spec = tiny_spec(fetch_policy="rr", mshrs=8)
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_single_requires_known_profile(self):
        with pytest.raises(KeyError, match="did you mean"):
            RunSpec.single("swmi")

    def test_workload_validated(self):
        with pytest.raises(ValueError, match="WorkloadSpec"):
            RunSpec(workload="swim")

    def test_workload_is_part_of_the_key(self):
        from repro.workloads.spec import WorkloadSpec

        a = RunSpec.from_workload(WorkloadSpec.single("swim"), scale=1.0)
        b = RunSpec.from_workload(
            WorkloadSpec.single("swim?hot_frac=0.1"), scale=1.0
        )
        assert a.key() != b.key()


class TestSweep:
    def test_grid_expansion_order(self):
        sweep = Sweep.grid(
            RunSpec.multiprogrammed,
            n_threads=(1, 2),
            l2_latency=(16, 64),
            decoupled=True,          # scalar axis: held constant
        )
        assert len(sweep) == 4
        assert [(s.n_threads, s.l2_latency) for s in sweep] == [
            (1, 16), (1, 64), (2, 16), (2, 64)
        ]

    def test_concat_and_dedupe(self):
        sweep = Sweep.of(tiny_spec()) + Sweep.of(tiny_spec(), tiny_spec(seed=1))
        assert len(sweep) == 3
        assert len(sweep.deduped()) == 2

    def test_filter(self):
        sweep = Sweep.grid(RunSpec.multiprogrammed, n_threads=(1, 2, 3))
        assert len(sweep.filter(lambda s: s.n_threads > 1)) == 2


class TestSimStatsRoundTrip:
    def test_handmade_stats(self):
        stats = SimStats(
            cycles=100, committed=42, committed_per_thread={0: 30, 1: 12},
            loads_fp=7, perceived_stall_fp=19, bus_utilization=0.25,
        )
        stats.slot_counts[0][2] = 5
        clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats
        assert clone.committed_per_thread == {0: 30, 1: 12}  # int keys back

    def test_simulated_stats(self):
        stats = tiny_spec().execute()
        clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats
        assert clone.ipc == stats.ipc

    def test_unknown_keys_ignored(self):
        d = SimStats(cycles=1).to_dict()
        d["from_the_future"] = 1
        assert SimStats.from_dict(d).cycles == 1


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        assert cache.get(spec) is None
        stats = spec.execute()
        cache.put(spec, stats)
        assert spec in cache
        assert cache.get(spec) == stats

    def test_no_cross_spec_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(tiny_spec(), tiny_spec().execute())
        assert cache.get(tiny_spec(seed=1)) is None
        assert cache.get(tiny_spec(scale=0.5)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.execute())
        cache.path_for(spec).write_text("not json")
        assert cache.get(spec) is None

    @pytest.mark.parametrize("payload", [
        "",                                    # empty file
        '{"format": 1, "stats": {"cyc',        # truncated mid-write
        "5",                                   # valid JSON, non-dict root
        "[1, 2, 3]",                           # valid JSON, list root
        '"just a string"',
        '{"format": 999, "stats": {}}',        # future format
        '{"format": 1}',                       # stats key missing
        '{"format": 1, "stats": 5}',           # stats not a mapping
        '{"format": 1, "stats": {"slot_counts": 7}}',  # malformed field
    ])
    def test_unreadable_entries_read_as_misses(self, tmp_path, payload):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(spec).write_text(payload)
        assert cache.get(spec) is None

    def test_corrupt_entry_is_overwritten_by_next_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        stats = spec.execute()
        cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(spec).write_text("[truncated")
        assert cache.get(spec) is None
        cache.put(spec, stats)
        assert cache.get(spec) == stats

    def test_engine_reexecutes_over_corrupt_entry(self, tmp_path):
        # end to end: a corrupt on-disk entry must cost one re-simulation,
        # never an exception, and the rerun repairs the entry
        spec = tiny_spec()
        Engine(workers=1, cache=ResultCache(tmp_path)).run(spec)
        ResultCache(tmp_path).path_for(spec).write_text("{]")
        engine = Engine(workers=1, cache=ResultCache(tmp_path))
        engine.run(spec)
        assert engine.n_executed == 1 and engine.n_cached == 0
        assert ResultCache(tmp_path).get(spec) is not None

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"

    def test_default_dir_honours_xdg_cache_home(self, monkeypatch, tmp_path):
        # precedence: $REPRO_CACHE_DIR > $XDG_CACHE_HOME/repro-sim >
        # ~/.cache/repro-sim ($XDG_CACHE_HOME used to be ignored)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-sim"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        assert default_cache_dir() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_cache_dir() == Path.home() / ".cache" / "repro-sim"


class TestEngine:
    def test_serial_map_ordering_and_dedupe(self):
        specs = [tiny_spec(seed=1), tiny_spec(), tiny_spec(seed=1)]
        results = submit(specs)
        assert list(results) == [tiny_spec(seed=1), tiny_spec()]
        assert results.n_executed == 2 and results.n_cached == 0
        assert all(s.committed > 0 for s in results.values())

    def test_memo_dedupes_across_maps(self):
        engine = Engine.serial()
        first = engine.run(tiny_spec())
        again = engine.map([tiny_spec()])
        assert again.n_cached == 1 and again.n_executed == 0
        assert again[tiny_spec()] == first

    def test_warm_disk_cache_runs_nothing(self, tmp_path):
        sweep = Sweep.of(tiny_spec(), tiny_spec(seed=1))
        cold = Engine(workers=1, cache=ResultCache(tmp_path)).map(sweep)
        assert cold.n_executed == 2
        warm = Engine(workers=1, cache=ResultCache(tmp_path)).map(sweep)
        assert warm.n_executed == 0 and warm.n_cached == 2
        assert warm == cold

    def test_parallel_equals_serial(self, tmp_path):
        sweep = Sweep.of(
            tiny_spec(), tiny_spec(seed=1), tiny_spec(l2_latency=32)
        )
        serial = Engine(workers=1).map(sweep)
        parallel = Engine(workers=2, cache=ResultCache(tmp_path)).map(sweep)
        assert list(parallel) == list(serial)
        for spec in sweep:
            assert parallel[spec].to_dict() == serial[spec].to_dict()
        # the parallel run populated the cache as results landed
        assert Engine(cache=ResultCache(tmp_path)).map(sweep).n_executed == 0

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    @pytest.mark.parametrize("bad", ["junk", "0", "-3"])
    def test_resolve_workers_warns_once_on_bad_env(self, monkeypatch, bad):
        # a malformed or non-positive $REPRO_WORKERS used to be silently
        # swallowed; now it warns once, naming the value, and falls back
        # to cpu_count()
        from repro.engine import scheduler

        monkeypatch.setenv("REPRO_WORKERS", bad)
        monkeypatch.setattr(scheduler, "_warned_bad_workers", False)
        with pytest.warns(RuntimeWarning, match=re.escape(bad)):
            assert resolve_workers() == (os.cpu_count() or 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the second call stays silent
            assert resolve_workers() == (os.cpu_count() or 1)

    def test_drivers_accept_engine(self, tmp_path):
        # the figure drivers submit through whatever engine they are given
        from repro.experiments import figures

        engine = Engine(workers=1, cache=ResultCache(tmp_path))
        data = figures.fig3(thread_counts=(1,), engine=engine)
        assert data["runs"][1]["ipc"] > 0
        assert engine.n_executed == 1
        figures.fig3(thread_counts=(1,), engine=engine)
        assert engine.n_executed == 1  # second pass fully cached


class TestSpecVersionGuard:
    """Entries embed the SPEC_VERSION that produced them; a mismatch (or
    its absence, for entries written before it was recorded) is a miss."""

    def test_recorded_on_put(self, tmp_path):
        from repro.engine.spec import SPEC_VERSION

        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.execute())
        entry = json.loads(cache.path_for(spec).read_text())
        assert entry["spec_version"] == SPEC_VERSION

    @pytest.mark.parametrize("stale", ["older", "missing"])
    def test_mismatch_is_a_miss(self, tmp_path, stale):
        from repro.engine.spec import SPEC_VERSION

        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        stats = spec.execute()
        cache.put(spec, stats)
        path = cache.path_for(spec)
        entry = json.loads(path.read_text())
        if stale == "older":
            entry["spec_version"] = SPEC_VERSION - 1
        else:
            del entry["spec_version"]
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None
        cache.put(spec, stats)  # the next put repairs the entry
        assert cache.get(spec) == stats


def forkable(commits, **kw):
    """Specs that differ only in measured budget share a warm-up prefix."""
    base = dict(
        n_threads=2, l2_latency=32, commits_per_thread=commits,
        warmup_per_thread=500, seg_instrs=3000,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


class TestWarmupKey:
    def test_measured_budget_is_masked(self):
        assert forkable(600).warmup_key() == forkable(1200).warmup_key()
        assert forkable(600).key() != forkable(1200).key()

    @pytest.mark.parametrize("change", [
        {"n_threads": 1},
        {"l2_latency": 64},
        {"decoupled": False},
        {"seed": 1},
        {"warmup_per_thread": 501},
        {"seg_instrs": 3001},
    ])
    def test_warmup_shaping_fields_differ(self, change):
        # everything that affects the machine before the boundary forks
        # the key — only the measured budget may differ within a group
        assert forkable(600, **change).warmup_key() != forkable(600).warmup_key()


class TestForkedSweeps:
    def _grid(self):
        return [forkable(c) for c in (600, 900, 1200)]

    def test_serial_forked_equals_cold(self):
        cold = Engine(workers=1).map(self._grid())
        forked = Engine(workers=1, fork_warmup=2).map(self._grid())
        assert forked.n_forked == 2
        assert forked.warmup_cycles_saved > 0
        assert forked.n_executed == 3 and forked.n_cached == 0
        for spec in self._grid():
            assert forked[spec].to_dict() == cold[spec].to_dict()

    def test_parallel_forked_equals_cold(self, tmp_path):
        cold = Engine(workers=1).map(self._grid())
        engine = Engine(
            workers=2, cache=ResultCache(tmp_path), fork_warmup=2
        )
        forked = engine.map(self._grid())
        assert forked.n_forked == 2
        for spec in self._grid():
            assert forked[spec].to_dict() == cold[spec].to_dict()

    def test_snapshot_persisted_and_reused(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(workers=1, cache=cache, fork_warmup=2).map(self._grid())
        key = forkable(600).warmup_key()
        assert cache.snapshot_path(key).is_file()
        assert len(cache) == 3  # .snap files don't count as result entries
        # a later invocation sweeping a NEW budget over the same warm
        # prefix forks even as a singleton: the snapshot is already paid
        newcomer = forkable(1500)
        result = Engine(workers=1, cache=cache, fork_warmup=2).map([newcomer])
        assert result.n_forked == 1
        assert result[newcomer].to_dict() == newcomer.execute().to_dict()

    def test_corrupt_snapshot_is_rewarmed(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = self._grid()[:2]
        cache.put_snapshot(specs[0].warmup_key(), b"garbage")
        result = Engine(workers=1, cache=cache, fork_warmup=2).map(specs)
        assert result.n_forked == 1  # leader re-warmed, follower forked
        cold = Engine(workers=1).map(specs)
        for spec in specs:
            assert result[spec].to_dict() == cold[spec].to_dict()

    def test_group_below_threshold_stays_cold(self):
        result = Engine(workers=1, fork_warmup=2).map([forkable(600)])
        assert result.n_forked == 0 and result.n_executed == 1

    def test_analytic_backend_never_forks(self):
        specs = [forkable(c, backend="analytic") for c in (600, 900)]
        result = Engine(workers=1, fork_warmup=2).map(specs)
        assert result.n_forked == 0
        assert all(s.committed > 0 for s in result.values())

    def test_counters_default_zero_without_forking(self):
        result = submit([tiny_spec()])
        assert result.n_forked == 0 and result.warmup_cycles_saved == 0


class TestSkipEffectivenessSurfacing:
    def test_sweep_and_engine_totals(self):
        # a latency-dominated single-thread cell fast-forwards heavily
        spec = tiny_spec(l2_latency=256)
        engine = Engine.serial()
        result = engine.map([spec])
        assert result.ff_jumps > 0
        assert result.ff_cycles_skipped > 0
        assert engine.ff_jumps == result.ff_jumps
        assert engine.ff_cycles_skipped == result.ff_cycles_skipped
        # a memo hit re-reports the batch totals (they describe how the
        # result was produced) without growing the lifetime counters
        again = engine.map([spec])
        assert again.ff_cycles_skipped == result.ff_cycles_skipped
        assert engine.ff_cycles_skipped == result.ff_cycles_skipped


class TestDeepCopySafety:
    def test_caller_mutation_cannot_corrupt_memo(self):
        # the engine hands out independent objects: mutating a returned
        # result (even nested fields) must not poison later hits
        engine = Engine.serial()
        a = engine.run(tiny_spec())
        pristine = copy.deepcopy(a)
        a.slot_counts[0][0] += 1
        a.committed_per_thread[99] = 1
        a.committed += 7
        again = engine.run(tiny_spec())
        assert again == pristine
        assert again != a
