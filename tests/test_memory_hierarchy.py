"""MemorySystem facade: end-to-end miss timing, MSHRs, bus, ports."""

from repro.memory.hierarchy import (
    S_BLOCKED,
    S_HIT,
    S_MISS,
    S_SECONDARY,
    MemorySystem,
)


def make_mem(**kw):
    defaults = dict(
        l1_bytes=64 * 1024, line_bytes=32, l1_ports=4, mshrs=16,
        l2_latency=16, bus_bytes_per_cycle=16, l1_hit_latency=1,
    )
    defaults.update(kw)
    return MemorySystem.classic(**defaults)


class TestLoadTiming:
    def test_cold_miss_latency(self):
        mem = make_mem()
        status, ready = mem.load(0x1000, now=0)
        assert status == S_MISS
        # L2 latency (16) + line transfer (2 bus cycles)
        assert ready == 18

    def test_hit_after_fill(self):
        mem = make_mem()
        mem.load(0x1000, now=0)
        status, ready = mem.load(0x1008, now=20)
        assert status == S_HIT
        assert ready == 21  # 1-cycle hit

    def test_secondary_merges_into_fill(self):
        mem = make_mem()
        _status, fill = mem.load(0x1000, now=0)
        status, ready = mem.load(0x1010, now=3)
        assert status == S_SECONDARY
        assert ready == fill

    def test_secondary_consumes_no_bus(self):
        mem = make_mem()
        mem.load(0x1000, now=0)
        before = mem.bus.busy_cycles
        mem.load(0x1008, now=1)
        assert mem.bus.busy_cycles == before

    def test_bus_contention_serialises_fills(self):
        mem = make_mem()
        _s, r1 = mem.load(0x1000, now=0)
        _s, r2 = mem.load(0x2000, now=0)
        _s, r3 = mem.load(0x3000, now=0)
        assert r1 == 18
        assert r2 == 20  # waits for the first transfer
        assert r3 == 22


class TestStructuralLimits:
    def test_mshr_exhaustion_blocks(self):
        mem = make_mem(mshrs=2)
        assert mem.load(0x1000, now=0)[0] == S_MISS
        assert mem.load(0x2000, now=0)[0] == S_MISS
        status, _ = mem.load(0x3000, now=0)
        assert status == S_BLOCKED
        assert mem.mshrs.alloc_failures == 1

    def test_mshr_released_at_fill(self):
        mem = make_mem(mshrs=1)
        _s, fill = mem.load(0x1000, now=0)
        assert mem.load(0x2000, now=fill)[0] == S_MISS

    def test_pinned_set_conflict_blocks(self):
        mem = make_mem()
        mem.load(0x1000, now=0)
        status, retry = mem.load(0x1000 + 64 * 1024, now=1)
        assert status == S_BLOCKED
        assert retry == 18

    def test_ports_per_cycle(self):
        mem = make_mem(l1_ports=2)
        mem.begin_cycle()
        assert mem.port_available()
        mem.claim_port()
        mem.claim_port()
        assert not mem.port_available()
        mem.begin_cycle()
        assert mem.port_available()


class TestStores:
    def test_store_hit_marks_dirty_and_writes_back_on_eviction(self):
        mem = make_mem()
        mem.load(0x1000, now=0)              # bring line in (clean)
        mem.store(0x1008, now=20)            # dirty it
        before = mem.writebacks
        mem.load(0x1000 + 64 * 1024, now=30)  # evict the dirty victim
        assert mem.writebacks == before + 1

    def test_store_miss_allocates(self):
        mem = make_mem()
        status, done = mem.store(0x7000, now=0)
        assert status == S_MISS
        assert done == 18
        # write-allocate: the line is now present (and dirty)
        assert mem.load(0x7008, now=20)[0] == S_HIT

    def test_store_secondary_merges(self):
        mem = make_mem()
        mem.store(0x7000, now=0)
        status, _done = mem.store(0x7008, now=1)
        assert status == S_SECONDARY

    def test_writeback_consumes_bus(self):
        mem = make_mem()
        mem.store(0x7000, now=0)                # line dirty at fill
        busy_before = mem.bus.busy_cycles
        mem.load(0x7000 + 64 * 1024, now=30)    # evicts dirty line
        assert mem.bus.busy_cycles == busy_before + 2 + 2  # fill + wb


class TestStatsReset:
    def test_reset_clears_traffic_counters(self):
        mem = make_mem()
        mem.load(0x1000, now=0)
        mem.reset_stats()
        assert mem.fills == 0
        assert mem.writebacks == 0
        assert mem.bus_utilization(100) == 0.0

    def test_reset_clears_mshr_failures_with_the_window(self):
        # every reported counter must describe the same post-warm-up
        # window; a warmup-inclusive MSHR-full count next to a
        # warmup-excluded blocked count is a contradiction
        mem = make_mem(mshrs=1)
        mem.load(0x1000, now=0)
        assert mem.load(0x2000, now=0)[0] == 3  # S_BLOCKED
        assert mem.mshrs.alloc_failures == 1
        mem.reset_stats()
        assert mem.mshrs.alloc_failures == 0
        assert mem.blocked_requests == 0
