"""Simultaneous multithreading: shared issue slots, fetch policy, scaling."""

from conftest import ProgramBuilder

from repro.core.config import MachineConfig
from repro.core.processor import Processor


def fp_chain_trace(n=400):
    """Serial FP chain: single-thread IPC ~0.25, perfect SMT fodder."""
    b = ProgramBuilder()
    for _ in range(n):
        b.falu(dest=36, srcs=(36,))
    return b.trace()


def mixed_trace(n=300):
    b = ProgramBuilder()
    for i in range(n):
        b.ialu(dest=4 + (i % 4), srcs=(4 + (i % 4),))
        b.falu(dest=36 + (i % 2), srcs=(36 + (i % 2),))
    return b.trace()


class TestThroughputScaling:
    def test_threads_hide_fu_latency(self):
        """The paper's core SMT observation: more contexts fill the EP."""
        tr = fp_chain_trace()
        ipcs = {}
        for nt in (1, 2, 4):
            cfg = MachineConfig(n_threads=nt)
            proc = Processor(cfg, [[tr]] * nt)
            stats = proc.run(max_commits=nt * 350)
            ipcs[nt] = stats.ipc
        assert ipcs[2] > 1.8 * ipcs[1]
        assert ipcs[4] > 3.2 * ipcs[1]

    def test_ep_width_caps_fp_throughput(self):
        tr = fp_chain_trace()
        cfg = MachineConfig(n_threads=6)
        proc = Processor(cfg, [[tr]] * 6)
        stats = proc.run(max_commits=6 * 350)
        assert stats.ipc <= 4.05  # 4 EP slots

    def test_per_thread_commits_balanced(self):
        tr = mixed_trace()
        cfg = MachineConfig(n_threads=4)
        proc = Processor(cfg, [[tr]] * 4)
        stats = proc.run(max_commits=4 * 400)
        counts = list(stats.committed_per_thread.values())
        assert min(counts) > 0.6 * max(counts)


class TestFetchPolicy:
    def test_two_threads_fetch_per_cycle(self):
        tr = mixed_trace()
        cfg = MachineConfig(n_threads=4, fetch_threads=2)
        proc = Processor(cfg, [[tr]] * 4)
        proc.run(max_commits=800)
        # with 4 runnable threads and 2 I-cache ports, someone always fetches
        assert proc.stats.fetched > 0

    def test_icount_no_worse_than_rr(self):
        tr = mixed_trace()
        results = {}
        for policy in ("icount", "rr"):
            cfg = MachineConfig(n_threads=4, fetch_policy=policy)
            proc = Processor(cfg, [[tr]] * 4)
            stats = proc.run(max_commits=4 * 400)
            results[policy] = stats.ipc
        assert results["icount"] >= 0.9 * results["rr"]


class TestIsolation:
    def test_thread_registers_are_private(self):
        """Two threads writing the same architectural registers never
        interfere: each commits its full program."""
        tr = mixed_trace(200)
        cfg = MachineConfig(n_threads=2)
        proc = Processor(cfg, [[tr], [tr]], wrap=False)
        stats = proc.run(max_cycles=50_000)
        assert stats.committed == 800
        assert stats.committed_per_thread == {0: 400, 1: 400}

    def test_thread_data_addresses_salted(self):
        tr = mixed_trace(10)
        cfg = MachineConfig(n_threads=2)
        proc = Processor(cfg, [[tr], [tr]])
        a0 = proc.threads[0].salted(0x2000)
        a1 = proc.threads[1].salted(0x2000)
        assert a0 != a1
        # different 64 MB spaces: never the same cache line
        assert a0 >> 26 != a1 >> 26

    def test_hot_region_salt_tiles_sets(self):
        from repro.workloads.synth import HOT_BASE
        tr = mixed_trace(10)
        cfg = MachineConfig(n_threads=4)
        proc = Processor(cfg, [[tr]] * 4)
        sets = {
            proc.threads[t].salted(HOT_BASE) % (64 * 1024)
            for t in range(4)
        }
        assert len(sets) == 4  # four distinct skew-zone starts

    def test_validation_rejects_mismatched_playlists(self):
        tr = mixed_trace(10)
        cfg = MachineConfig(n_threads=2)
        try:
            Processor(cfg, [[tr]])
            assert False
        except ValueError:
            pass
