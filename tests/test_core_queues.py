"""Instruction queues and the store address queue."""

import pytest

from repro.core.queues import InstQueue, StoreAddressQueue
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opclass import OpClass


def dyn(seq, op=OpClass.IALU, addr=0):
    return DynInst(StaticInst(0, op, dest=4, srcs=(4,), addr=addr), 0, seq, False)


def store(seq, addr):
    return DynInst(
        StaticInst(0, OpClass.STORE_F, srcs=(2, 36), addr=addr), 0, seq, False
    )


class TestInstQueue:
    def test_fifo_order(self):
        q = InstQueue(4)
        a, b = dyn(1), dyn(2)
        q.push(a)
        q.push(b)
        assert q.head() is a
        assert q.pop_head() is a
        assert q.pop_head() is b

    def test_capacity(self):
        q = InstQueue(2)
        q.push(dyn(1))
        q.push(dyn(2))
        assert q.full
        with pytest.raises(OverflowError):
            q.push(dyn(3))

    def test_squash_tail(self):
        q = InstQueue(8)
        for s in (1, 2, 5, 9):
            q.push(dyn(s))
        assert q.squash_tail(2) == 2
        assert len(q) == 2
        assert [d.seq for d in q.q] == [1, 2]

    def test_squash_tail_noop_when_all_older(self):
        q = InstQueue(8)
        q.push(dyn(1))
        assert q.squash_tail(5) == 0
        assert len(q) == 1

    def test_bool(self):
        q = InstQueue(2)
        assert not q
        q.push(dyn(1))
        assert q

    def test_min_capacity(self):
        with pytest.raises(ValueError):
            InstQueue(0)


class TestStoreAddressQueue:
    def test_find_older_match(self):
        q = StoreAddressQueue(8)
        s1, s2 = store(1, 0x100), store(5, 0x100)
        q.push(s1)
        q.push(s2)
        # a load with seq 7 sees the *youngest older* store
        assert q.find_older_match(0x100, 7) is s2
        # a load between them only sees the first
        assert q.find_older_match(0x100, 3) is s1

    def test_no_match_for_other_address(self):
        q = StoreAddressQueue(8)
        q.push(store(1, 0x100))
        assert q.find_older_match(0x108, 7) is None

    def test_no_match_for_older_load(self):
        q = StoreAddressQueue(8)
        q.push(store(5, 0x100))
        assert q.find_older_match(0x100, 3) is None

    def test_release_head_clears_membership(self):
        q = StoreAddressQueue(8)
        q.push(store(1, 0x100))
        q.release_head()
        assert q.find_older_match(0x100, 9) is None
        assert len(q) == 0

    def test_duplicate_addresses_counted(self):
        q = StoreAddressQueue(8)
        q.push(store(1, 0x100))
        q.push(store(2, 0x100))
        q.release_head()
        assert q.find_older_match(0x100, 9) is not None

    def test_squash_tail_clears_membership(self):
        q = StoreAddressQueue(8)
        q.push(store(1, 0x100))
        q.push(store(9, 0x200))
        assert q.squash_tail(1) == 1
        assert q.find_older_match(0x200, 99) is None
        assert q.find_older_match(0x100, 99) is not None

    def test_capacity(self):
        q = StoreAddressQueue(1)
        q.push(store(1, 0x100))
        assert q.full
        with pytest.raises(OverflowError):
            q.push(store(2, 0x200))
