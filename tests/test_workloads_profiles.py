"""SPEC FP95 profile table sanity and paper-classification checks."""

import pytest

from repro.workloads.profiles import BENCH_ORDER, SPECFP95, BenchProfile, get_profile


class TestTable:
    def test_all_ten_benchmarks_present(self):
        assert set(BENCH_ORDER) == set(SPECFP95)
        assert len(BENCH_ORDER) == 10

    def test_paper_figure_order(self):
        assert BENCH_ORDER[0] == "tomcatv"
        assert BENCH_ORDER[-1] == "wave5"

    def test_lookup(self):
        assert get_profile("swim").name == "swim"

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            get_profile("gcc")

    def test_with_overrides(self):
        p = get_profile("swim").with_overrides(iters=7)
        assert p.iters == 7
        assert get_profile("swim").iters != 7 or True  # original untouched
        assert SPECFP95["swim"].iters == 128


class TestPaperClassification:
    """The profile parameters must encode the paper's benchmark classes."""

    def test_fpppp_is_the_loss_of_decoupling_program(self):
        p = get_profile("fpppp")
        assert p.lod_rate > 0
        assert all(
            get_profile(b).lod_rate == 0 for b in BENCH_ORDER if b != "fpppp"
        )

    def test_int_load_stall_programs_gather(self):
        # paper: fpppp, su2cor, turb3d, wave5 show the largest int-load stalls
        for b in ("fpppp", "su2cor", "turb3d", "wave5"):
            assert get_profile(b).gather_frac > 0, b

    def test_short_index_distance_for_turb3d_and_fpppp(self):
        assert get_profile("turb3d").index_dist == 0
        assert get_profile("fpppp").index_dist == 0

    def test_low_missratio_programs_are_resident(self):
        # paper: fpppp and turb3d barely miss
        assert get_profile("fpppp").ws_bytes <= 16 * 1024
        assert get_profile("fpppp").hot_frac >= 0.85
        assert get_profile("turb3d").hot_frac >= 0.75

    def test_streaming_programs_have_large_working_sets(self):
        for b in ("tomcatv", "swim", "hydro2d"):
            assert get_profile(b).ws_bytes >= 1 << 22, b

    def test_swim_has_widest_stride(self):
        # swim's wide stride gives it the suite's highest miss ratio
        assert get_profile("swim").elem_bytes == max(
            get_profile(b).elem_bytes for b in BENCH_ORDER
        )

    def test_hot_regions_fit_their_zone(self):
        for b in BENCH_ORDER:
            assert get_profile(b).hot_bytes <= 12 * 1024, b


class TestDefaults:
    def test_defaults_are_sane(self):
        p = BenchProfile(name="x")
        assert p.n_streams >= 1
        assert p.unroll >= 1
        assert 0 <= p.hot_frac <= 1
        assert 0 <= p.gather_frac <= 1
        assert p.chain_depth >= 1
