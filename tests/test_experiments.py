"""Experiment harness: runners, figure drivers, renderers (tiny budgets)."""

import pytest

from repro.experiments import ablations, figures
from repro.experiments.runner import (
    run_multiprogrammed,
    run_single_benchmark,
    scale_factor,
)


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


class TestRunners:
    def test_multiprogrammed_run(self):
        stats = run_multiprogrammed(2, l2_latency=16, seg_instrs=4000)
        assert stats.ipc > 0
        assert stats.committed > 0

    def test_single_benchmark_run(self):
        stats = run_single_benchmark("applu", l2_latency=16)
        assert stats.ipc > 0

    def test_config_overrides_forwarded(self):
        stats = run_multiprogrammed(1, seg_instrs=4000, fetch_policy="rr")
        assert stats.ipc > 0

    def test_scale_factor_reads_env(self):
        assert scale_factor() == pytest.approx(0.08)


class TestFigureDrivers:
    def test_fig1_structure(self):
        data = figures.fig1(latencies=(1, 16), benches=("applu", "fpppp"))
        assert data["latencies"] == [1, 16]
        assert set(data["runs"]) == {"applu", "fpppp"}
        run = data["runs"]["applu"][16]
        for key in ("ipc", "perceived_fp", "perceived_int", "load_miss_ratio"):
            assert key in run
        text = figures.render_fig1(data)
        assert "Figure 1-a" in text and "Figure 1-d" in text

    def test_fig3_structure(self):
        data = figures.fig3(thread_counts=(1, 2))
        assert set(data["runs"]) == {1, 2}
        text = figures.render_fig3(data)
        assert "Figure 3" in text

    def test_fig4_structure(self):
        data = figures.fig4(latencies=(1, 16), thread_counts=(1,))
        assert (True, 1) in data["runs"]
        assert (False, 1) in data["runs"]
        text = figures.render_fig4(data)
        assert "Figure 4-a" in text and "Figure 4-c" in text

    def test_fig5_structure(self):
        data = figures.fig5(threads_16=(1, 2), threads_64=(1,))
        assert "L2=16 dec" in data["series"]
        assert "L2=64 non-dec" in data["series"]
        text = figures.render_fig5(data)
        assert "bus util" in text

    def test_figures_registry(self):
        assert set(figures.FIGURES) == {"fig1", "fig3", "fig4", "fig5"}


class TestAblations:
    def test_unit_width(self):
        data = ablations.unit_width(total=6, n_threads=1)
        assert (3, 3) in data
        assert "IPC" in ablations.render_unit_width(data)

    def test_fetch_policy(self):
        data = ablations.fetch_policy(n_threads=2)
        assert set(data) == {"icount", "rr"}

    def test_iq_depth_monotone_slip(self):
        data = ablations.iq_depth(l2_latency=16)
        slips = [data[s]["slip"] for s in sorted(data)]
        assert slips[-1] > slips[0]

    def test_registry(self):
        assert set(ablations.ABLATIONS) == {
            "unit_width", "fetch_policy", "mshr", "iq_depth", "rob",
            "l2_finite", "prefetch", "bus_width",
        }
