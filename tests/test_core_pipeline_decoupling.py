"""Decoupling behaviour: slip, latency hiding, the non-decoupled baseline.

These micro-programs isolate the paper's core mechanism: the AP slipping
ahead of the EP through the instruction queue, starting misses early.
"""

from conftest import ProgramBuilder, run_program

from repro.core.config import MachineConfig
from repro.isa.opclass import OpClass


def loadchain_program(n_iters: int = 120, line_stride: int = 32):
    """A miss-heavy load->FP-use loop: the canonical decoupled pattern."""
    b = ProgramBuilder()
    for i in range(n_iters):
        b.ialu(dest=2, srcs=(2,))                      # pointer update
        b.load_f(dest=40 + (i % 8), base=2, addr=0x100000 + i * line_stride)
        b.falu(dest=36, srcs=(36, 40 + (i % 8)))        # consumer chain
        b.falu(dest=37, srcs=(37, 40 + (i % 8)))
    return b.trace()


class TestSlip:
    def test_decoupled_builds_slip(self):
        _proc, stats = run_program(loadchain_program(), MachineConfig())
        assert stats.average_slip > 10

    def test_non_decoupled_has_minimal_slip(self):
        cfg = MachineConfig(decoupled=False)
        _proc, stats = run_program(loadchain_program(), cfg)
        assert stats.average_slip < 10

    def test_slip_bounded_by_instruction_queue(self):
        big = MachineConfig(iq_size=96, aq_size=96)
        small = MachineConfig(iq_size=8, aq_size=96)
        _p1, s_big = run_program(loadchain_program(), big)
        _p2, s_small = run_program(loadchain_program(), small)
        assert s_big.average_slip > s_small.average_slip


class TestLatencyHiding:
    def test_decoupled_beats_non_decoupled_on_misses(self):
        tr = loadchain_program()
        _p, s_dec = run_program(tr, MachineConfig())
        _p, s_non = run_program(tr, MachineConfig(decoupled=False))
        assert s_dec.ipc > 1.5 * s_non.ipc

    def test_decoupled_perceived_latency_much_smaller(self):
        tr = loadchain_program()
        _p, s_dec = run_program(tr, MachineConfig())
        _p, s_non = run_program(tr, MachineConfig(decoupled=False))
        assert s_non.perceived_fp_latency > 4 * max(0.5, s_dec.perceived_fp_latency)

    def test_decoupled_ipc_insensitive_to_l2_latency(self):
        """The paper's headline: decoupling flattens the latency curve."""
        tr = loadchain_program(240)
        ipc = {}
        for lat in (1, 16, 64):
            cfg = MachineConfig(l2_latency=lat, mshrs=64,
                                iq_size=192, aq_size=192, rob_size=512,
                                ep_regs=256, ap_regs=128)
            _p, s = run_program(tr, cfg)
            ipc[lat] = s.ipc
        assert ipc[64] > 0.65 * ipc[1]

    def test_non_decoupled_ipc_collapses_with_latency(self):
        tr = loadchain_program(240)
        ipc = {}
        for lat in (1, 64):
            cfg = MachineConfig(l2_latency=lat, decoupled=False, mshrs=64)
            _p, s = run_program(tr, cfg)
            ipc[lat] = s.ipc
        assert ipc[64] < 0.5 * ipc[1]


class TestLossOfDecoupling:
    def _lod_program(self, with_lod: bool, n: int = 100):
        b = ProgramBuilder()
        for i in range(n):
            b.ialu(dest=2, srcs=(2,))
            b.load_f(dest=40, base=2, addr=0x200000 + i * 32)
            b.falu(dest=36, srcs=(36, 40))
            if with_lod:
                # FP value flows back into the next address computation
                b.emit(OpClass.FTOI, dest=5, srcs=(36,))
                b.ialu(dest=2, srcs=(5,))
        return b.trace()

    def test_ftoi_into_address_kills_slip(self):
        _p, s_lod = run_program(self._lod_program(True))
        _p, s_free = run_program(self._lod_program(False))
        assert s_lod.average_slip < s_free.average_slip / 2

    def test_ftoi_into_address_kills_throughput(self):
        _p, s_lod = run_program(self._lod_program(True))
        _p, s_free = run_program(self._lod_program(False))
        assert s_lod.ipc < s_free.ipc


class TestUnifiedQueueSemantics:
    def test_non_decoupled_head_blocks_everything(self):
        """In the unified queue a stalled FALU blocks younger AP work."""
        b = ProgramBuilder()
        b.load_f(dest=40, base=2, addr=0x300000)   # cold miss
        b.falu(dest=36, srcs=(36, 40))             # blocks on the miss
        b.nops(40)                                  # independent AP work
        tr = b.trace()
        _p, s_non = run_program(tr, MachineConfig(decoupled=False))
        _p, s_dec = run_program(tr, MachineConfig())
        # decoupled lets the 40 ALU ops flow around the stalled FALU
        assert s_dec.cycles < s_non.cycles
