"""End-to-end micro-program tests of the pipeline's basic behaviours."""

from conftest import run_program

from repro.isa.opclass import OpClass


class TestCompletion:
    def test_commits_every_instruction(self, builder):
        builder.nops(50)
        _proc, stats = run_program(builder.trace())
        assert stats.committed == 50

    def test_ipc_of_independent_integer_ops_near_ap_width(self, builder):
        # 8 rotating registers -> plenty of ILP for the 4 AP slots, but
        # dispatch width 8 / fetch share the limit; expect IPC close to 4
        builder.nops(2000)
        _proc, stats = run_program(builder.trace())
        assert stats.ipc > 3.0

    def test_serial_integer_chain_runs_at_one_per_cycle(self, builder):
        for _ in range(300):
            builder.ialu(dest=4, srcs=(4,))
        _proc, stats = run_program(builder.trace())
        assert 0.8 < stats.ipc <= 1.1

    def test_serial_fp_chain_pays_four_cycle_latency(self, builder):
        for _ in range(200):
            builder.falu(dest=36, srcs=(36,))
        _proc, stats = run_program(builder.trace())
        # one dependent FALU every ep_latency cycles
        assert 0.2 < stats.ipc < 0.30

    def test_four_independent_fp_chains_fill_the_ep(self, builder):
        for i in range(400):
            reg = 36 + (i % 4)
            builder.falu(dest=reg, srcs=(reg,))
        _proc, stats = run_program(builder.trace())
        assert stats.ipc > 0.85  # 4 chains x latency 4 = ~1/cycle


class TestLoads:
    def test_load_hit_latency_visible_to_consumer(self, builder):
        # load-use chains: each iteration loads (always same line: hit)
        # and the dependent FALU waits ~2 cycles for the data
        for i in range(200):
            builder.load_f(dest=40, base=2, addr=0x2000)
            builder.falu(dest=36, srcs=(36, 40))
        _proc, stats = run_program(builder.trace())
        assert stats.loads_fp == 200
        assert stats.load_misses_fp <= 1  # only the cold miss

    def test_load_miss_counted(self, builder):
        # distinct lines: every load a primary miss
        for i in range(64):
            builder.load_f(dest=40 + (i % 8), base=2, addr=0x2000 + i * 32)
        _proc, stats = run_program(builder.trace())
        assert stats.load_misses_fp == 64

    def test_secondary_misses_merge(self, builder):
        # four loads per line back to back: 1 primary + 3 merged
        for i in range(16):
            for j in range(4):
                builder.load_f(dest=40 + j, base=2, addr=0x40000 + i * 32 + j * 8)
        _proc, stats = run_program(builder.trace())
        assert stats.load_misses_fp == 16
        assert stats.load_merged_fp == 48


class TestStores:
    def test_store_performs_after_commit(self, builder):
        builder.falu(dest=36, srcs=(36,))
        builder.store_f(base=2, data=36, addr=0x4000)
        builder.nops(30)
        proc, stats = run_program(builder.trace())
        assert stats.stores == 1
        assert proc.threads[0].saq.q == type(proc.threads[0].saq.q)()  # drained

    def test_store_load_forwarding(self, builder):
        """A load to a pending store's address forwards without memory."""
        builder.falu(dest=36, srcs=(36,))
        builder.store_f(base=2, data=36, addr=0x4000)
        builder.load_f(dest=40, base=2, addr=0x4000)
        builder.nops(20)
        _proc, stats = run_program(builder.trace())
        # forwarded: neither a hit access nor a miss was recorded as a miss
        assert stats.load_misses_fp == 0
        assert stats.committed == 23

    def test_store_data_dependency_blocks_commit(self, builder):
        """A store cannot graduate before its data is computed."""
        # long FP chain produces the store data
        for _ in range(8):
            builder.falu(dest=36, srcs=(36,))
        builder.store_f(base=2, data=36, addr=0x4000)
        _proc, stats = run_program(builder.trace())
        assert stats.committed == 9
        assert stats.stores == 1

    def test_int_store(self, builder):
        builder.ialu(dest=4, srcs=(4,))
        builder.store_i(base=2, data=4, addr=0x5000)
        builder.nops(20)
        _proc, stats = run_program(builder.trace())
        assert stats.stores == 1


class TestCrossUnitMoves:
    def test_itof_feeds_ep(self, builder):
        builder.ialu(dest=4, srcs=(4,))
        builder.emit(OpClass.ITOF, dest=36, srcs=(4,))
        builder.falu(dest=37, srcs=(37, 36))
        builder.nops(10)
        _proc, stats = run_program(builder.trace())
        assert stats.committed == 13

    def test_ftoi_feeds_ap(self, builder):
        builder.falu(dest=36, srcs=(36,))
        builder.emit(OpClass.FTOI, dest=4, srcs=(36,))
        builder.ialu(dest=5, srcs=(4,))
        builder.nops(10)
        _proc, stats = run_program(builder.trace())
        assert stats.committed == 13


class TestZeroRegisters:
    def test_zero_sources_always_ready(self, builder):
        for _ in range(20):
            builder.ialu(dest=4, srcs=(31,))     # r31 is hardwired zero
            builder.falu(dest=36, srcs=(63,))    # f31 too
        _proc, stats = run_program(builder.trace())
        assert stats.committed == 40


class TestDeterminism:
    def test_same_seed_same_cycles(self, builder):
        builder.nops(500)
        tr = builder.trace()
        _p1, s1 = run_program(tr, seed=3)
        _p2, s2 = run_program(tr, seed=3)
        assert s1.cycles == s2.cycles
        assert s1.committed == s2.committed
