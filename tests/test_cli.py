"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    # keep tests hermetic: never touch ~/.cache, never spawn a pool
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig3"])
        assert args.name == "fig3"

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig3", "--workers", "2", "--no-cache",
             "--cache-dir", "/tmp/x"]
        )
        assert args.workers == 2
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_help_documents_repro_scale(self):
        assert "REPRO_SCALE" in build_parser().format_help()


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--threads", "1", "--latency", "16",
                     "--commits", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_non_decoupled(self, capsys):
        assert main(["run", "--threads", "1", "--non-decoupled",
                     "--commits", "1500"]) == 0
        assert "non-decoupled" in capsys.readouterr().out

    def test_bench_command(self, capsys):
        assert main(["bench", "fpppp"]) == 0
        assert "fpppp" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "gcc"]) == 2

    def test_figure_command(self, capsys):
        assert main(["figure", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "cached" in out and "simulated" in out

    def test_figure_warm_cache_simulates_nothing(self, capsys):
        assert main(["figure", "fig3"]) == 0
        first = capsys.readouterr().out
        assert "0 cached" in first
        assert main(["figure", "fig3"]) == 0
        second = capsys.readouterr().out
        assert "0 simulated" in second

        # tables must be byte-identical between cold and warm runs
        def tables(out):
            return [
                ln for ln in out.splitlines() if not ln.startswith("[fig3:")
            ]

        assert tables(first) == tables(second)

    def test_figure_no_cache(self, capsys):
        assert main(["figure", "fig3", "--no-cache"]) == 0
        assert main(["figure", "fig3", "--no-cache"]) == 0
        assert "0 cached" in capsys.readouterr().out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "fetch_policy"]) == 0
        assert "fetch policy" in capsys.readouterr().out


class TestSweepCommand:
    def test_multiprogrammed_grid_json(self, capsys):
        assert main(["sweep", "--threads", "1,2", "--latencies", "16",
                     "--modes", "dec,non", "--commits", "1500"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 4
        assert doc["n_executed"] == 4
        labels = [run["label"] for run in doc["runs"]]
        assert labels == [
            "1T L2=16 dec", "1T L2=16 non-dec",
            "2T L2=16 dec", "2T L2=16 non-dec",
        ]
        for run in doc["runs"]:
            assert run["stats"]["ipc"] > 0
            assert run["spec"]["scale"] == pytest.approx(0.08)

    def test_sweep_reads_cache(self, capsys):
        args = ["sweep", "--threads", "1", "--latencies", "16",
                "--commits", "1500"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_cached"] == 1 and doc["n_executed"] == 0

    def test_bench_grid(self, capsys):
        assert main(["sweep", "--benches", "applu", "--latencies", "16",
                     "--commits", "1500"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 1
        wl = doc["runs"][0]["spec"]["workload"]
        assert wl["name"] == "applu"
        assert len(wl["threads"]) == 1

    def test_rejects_unknown_mode(self, capsys):
        assert main(["sweep", "--modes", "sideways"]) == 2

    def test_rejects_malformed_int_lists(self, capsys):
        assert main(["sweep", "--latencies", "16x"]) == 2
        assert main(["sweep", "--threads", "1;2"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_rejects_unknown_bench(self, capsys):
        assert main(["sweep", "--benches", "gcc"]) == 2

    def test_deadlock_cycles_flag_reaches_spec(self, capsys):
        assert main(["sweep", "--threads", "1", "--latencies", "16",
                     "--commits", "1500", "--deadlock-cycles", "77777",
                     "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        overrides = doc["runs"][0]["spec"]["config_overrides"]
        assert overrides["deadlock_cycles"] == 77777

    def test_commits_axis_expands_grid(self, capsys):
        assert main(["sweep", "--threads", "1", "--latencies", "16",
                     "--commits", "1000,1500", "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 2
        assert [r["spec"]["commits"] for r in doc["runs"]] == [1000, 1500]

    def test_rejects_malformed_commits(self, capsys):
        assert main(["sweep", "--commits", "10x0"]) == 2
        assert "--commits" in capsys.readouterr().err

    def test_fork_warmup_bit_identical_and_counted(self, capsys):
        cold_args = ["sweep", "--threads", "2", "--latencies", "16",
                     "--commits", "800,1200,1600", "--no-cache"]
        assert main(cold_args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(cold_args + ["--fork-warmup", "2"]) == 0
        captured = capsys.readouterr()
        forked = json.loads(captured.out)
        assert forked["n_forked"] == 2
        assert forked["warmup_cycles_saved"] > 0
        # the summary line reports the fork counters on stderr
        assert "2 forked" in captured.err
        assert "warmup cycles saved" in captured.err
        # skip effectiveness is surfaced in the doc and the summary line
        assert forked["ff_jumps"] >= 0
        assert "fast-forwarded" in captured.err
        # per-cell results are byte-identical to the cold sweep
        for run_cold, run_forked in zip(cold["runs"], forked["runs"]):
            assert run_forked["stats"] == run_cold["stats"]


class TestSnapshotFlags:
    """run --snapshot / --restore (the checkpoint subsystem's CLI face)."""

    _ARGS = ["run", "--threads", "1", "--latency", "16",
             "--commits", "1500", "--no-cache"]

    def test_snapshot_then_restore_matches_unbroken(self, tmp_path, capsys):
        snap = tmp_path / "warm.snap"
        assert main(self._ARGS) == 0
        unbroken = capsys.readouterr().out
        assert main(self._ARGS + ["--snapshot", str(snap)]) == 0
        captured = capsys.readouterr()
        assert snap.is_file()
        assert "warmup_key" in captured.err
        assert captured.out == unbroken  # capture changes nothing
        assert main(self._ARGS + ["--restore", str(snap)]) == 0
        restored = capsys.readouterr().out
        # identical statistics block, plus the restore marker in the title
        assert "[restored @" in restored
        assert restored.split("==\n", 1)[1] == unbroken.split("==\n", 1)[1]

    def test_restore_refuses_mismatched_spec(self, tmp_path, capsys):
        snap = tmp_path / "warm.snap"
        assert main(self._ARGS + ["--snapshot", str(snap)]) == 0
        capsys.readouterr()
        mismatched = ["run", "--threads", "2", "--latency", "16",
                      "--commits", "1500", "--no-cache"]
        assert main(mismatched + ["--restore", str(snap)]) == 2
        assert "warmup_key" in capsys.readouterr().err

    def test_restore_missing_file(self, tmp_path, capsys):
        assert main(self._ARGS + ["--restore", str(tmp_path / "no.snap")]) == 2
        assert "--restore" in capsys.readouterr().err

    def test_snapshot_needs_cycle_backend(self, tmp_path, capsys):
        assert main(self._ARGS + ["--backend", "analytic",
                                  "--snapshot", str(tmp_path / "x")]) == 2
        assert "cycle backend" in capsys.readouterr().err


class TestPerfCommand:
    @pytest.fixture
    def tiny_workloads(self, monkeypatch):
        """Shrink the pinned perf set so the CLI path stays test-fast."""
        from repro.engine import RunSpec
        import repro.experiments.perf as perf_mod

        def tiny(quick=False):
            return {
                perf_mod.HEADLINE: RunSpec.single(
                    "su2cor", l2_latency=64, scale=1.0,
                    commits=800, warmup=200,
                ),
                "fig3_1T_L2=16": RunSpec.multiprogrammed(
                    1, l2_latency=16, scale=1.0, seg_instrs=4000,
                    commits_per_thread=800, warmup_per_thread=200,
                ),
            }

        def tiny_forked(quick=False):
            return [
                RunSpec.multiprogrammed(
                    1, l2_latency=16, scale=1.0, seg_instrs=3000,
                    commits_per_thread=c, warmup_per_thread=500,
                )
                for c in (600, 900)
            ]

        monkeypatch.setattr(perf_mod, "perf_specs", tiny)
        monkeypatch.setattr(perf_mod, "forked_sweep_specs", tiny_forked)

    def test_perf_writes_schema_document(self, tiny_workloads, tmp_path,
                                         capsys):
        out = tmp_path / "perf.json"
        assert main(["perf", "--quick", "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-perf/1"
        assert doc["quick"] is True
        for m in doc["workloads"].values():
            assert m["cycles_per_s"] > 0
            assert m["commits_per_s"] > 0
        head = doc["headline"]
        assert head["bit_identical"] is True
        assert head["speedup"] > 0
        fs = doc["forked_sweep"]
        assert fs["identical"] is True
        assert fs["n_forked"] == 1 and fs["n_cells"] == 2
        out = capsys.readouterr().out
        assert "cycles/s" in out
        assert "forked sweep" in out

    def test_perf_check_passes_against_itself(self, tiny_workloads,
                                              tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["perf", "--output", str(base)]) == 0
        capsys.readouterr()
        # wide tolerance: the tiny fixture budgets make sub-second
        # measurement windows, where wall-clock jitter alone can exceed
        # the CI default of 30% — this asserts the check *path*, not
        # machine timing stability
        assert main(["perf", "--check", str(base), "--ratios-only",
                     "--tolerance", "0.9"]) == 0

    def test_perf_check_rejects_budget_mode_mismatch(self, tiny_workloads,
                                                     tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["perf", "--output", str(base)]) == 0  # full-mode base
        capsys.readouterr()
        assert main(["perf", "--quick", "--check", str(base),
                     "--ratios-only"]) == 1
        assert "budget-mode mismatch" in capsys.readouterr().err

    def test_perf_check_fails_on_regression(self, tiny_workloads, tmp_path,
                                            capsys):
        base = tmp_path / "base.json"
        assert main(["perf", "--output", str(base)]) == 0
        doc = json.loads(base.read_text())
        doc["headline"]["speedup"] *= 100  # impossible baseline
        base.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["perf", "--check", str(base), "--ratios-only"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err


class TestMemFlags:
    """--mem presets/files and sweep --mem-axis (PR 5)."""

    def test_run_with_mem_preset(self, capsys):
        assert main(["run", "--threads", "1", "--latency", "32",
                     "--mem", "l2_small", "--commits", "1500",
                     "--backend", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "L2 level" in out

    def test_unknown_mem_preset_suggests(self, capsys):
        assert main(["run", "--mem", "l2_fnite"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'l2_finite'" in err

    def test_bench_with_mem_file(self, tmp_path, capsys):
        path = tmp_path / "mem.json"
        path.write_text(json.dumps({
            "name": "filemem",
            "levels": [{"name": "L1"},
                       {"name": "L2", "capacity_bytes": 262144, "assoc": 4}],
        }))
        assert main(["bench", "fpppp", "--mem", str(path),
                     "--backend", "analytic"]) == 0
        assert "fpppp" in capsys.readouterr().out

    def test_sweep_mem_axis_expands_grid(self, capsys):
        assert main(["sweep", "--threads", "1", "--latencies", "16",
                     "--mem", "l2_finite",
                     "--mem-axis", "L2.capacity_bytes=256K,1M",
                     "--backend", "analytic"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 2
        labels = [r["label"] for r in doc["runs"]]
        assert any("262144" in lab for lab in labels)

    def test_sweep_mem_axis_defaults_to_classic(self, capsys):
        assert main(["sweep", "--threads", "1", "--latencies", "16",
                     "--mem-axis", "prefetch_kind=none,nextline",
                     "--backend", "analytic"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 2

    def test_sweep_mem_axis_crosses_workload_axis(self, capsys):
        """--mem-axis x --workload-axis compose into one grid: every
        combination appears exactly once, visible in the cell labels."""
        assert main(["sweep", "--workload", "thrash4",
                     "--workload-axis", "hot_frac=0.1,0.4",
                     "--mem-axis", "prefetch_kind=none,nextline",
                     "--latencies", "16,64",
                     "--backend", "analytic"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 2 * 2 * 2
        labels = [r["label"] for r in doc["runs"]]
        assert len(set(labels)) == 8
        for hot in ("hot_frac=0.1", "hot_frac=0.4"):
            for kind in ("prefetch_kind=none", "prefetch_kind=nextline"):
                for lat in ("L2=16", "L2=64"):
                    assert sum(
                        hot in lab and kind in lab and lat in lab
                        for lab in labels
                    ) == 1
        assert len({r["key"] for r in doc["runs"]}) == 8

    def test_sweep_rejects_bad_mem_axis_field(self, capsys):
        assert main(["sweep", "--mem-axis", "prefetchkind=stream"]) == 2
        assert "did you mean 'prefetch_kind'" in capsys.readouterr().err

    def test_sweep_rejects_malformed_mem_axis(self, capsys):
        assert main(["sweep", "--mem-axis", "nonsense"]) == 2
        assert "field=value" in capsys.readouterr().err

    def test_workloads_lists_mem_presets(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Memory-hierarchy presets" in out
        assert "l2_finite" in out
