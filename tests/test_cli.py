"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig3"])
        assert args.name == "fig3"

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--threads", "1", "--latency", "16",
                     "--commits", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_run_non_decoupled(self, capsys):
        assert main(["run", "--threads", "1", "--non-decoupled",
                     "--commits", "1500"]) == 0
        assert "non-decoupled" in capsys.readouterr().out

    def test_bench_command(self, capsys):
        assert main(["bench", "fpppp"]) == 0
        assert "fpppp" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "gcc"]) == 2

    def test_figure_command(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "fetch_policy"]) == 0
        assert "fetch policy" in capsys.readouterr().out
