"""Vectorized charwalk: eligibility gating and exact equality.

``model/charwalk_np.py`` re-derives the interpreted characterization walk
with closed-form array operations; the two must produce **equal**
:class:`~repro.model.charwalk.WorkloadCharacter` objects — every count,
every reuse bucket — on every geometry the vectorized path claims.
Geometries it cannot model (finite/partitioned outer levels, prefetchers)
and ``REPRO_NO_NUMPY=1`` must select the interpreter.
"""

from dataclasses import fields

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import MachineConfig  # noqa: E402
from repro.engine.spec import RunSpec  # noqa: E402
from repro.memory.spec import mem_preset  # noqa: E402
from repro.model import charwalk_np  # noqa: E402
from repro.model.charwalk import _characterize, character_key  # noqa: E402
from repro.workloads.spec import workload_preset  # noqa: E402


@pytest.fixture(autouse=True)
def _numpy_enabled(monkeypatch):
    """These tests exercise the vectorized path on purpose — neutralize
    an ambient REPRO_NO_NUMPY (e.g. CI's fallback-paths job)."""
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)


def both_walks(spec, monkeypatch):
    """(interpreted, vectorized) characters of one run spec."""
    proc, _ = spec.instantiate()
    key = character_key(spec, proc.cfg)
    vec = _characterize.__wrapped__(key)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    pure = _characterize.__wrapped__(key)
    monkeypatch.delenv("REPRO_NO_NUMPY")
    return pure, vec


class TestEligibility:
    def test_classic_geometry_is_eligible(self):
        geo = mem_preset("classic").resolve(MachineConfig()).geometry()
        assert charwalk_np.eligible(geo) is True

    @pytest.mark.parametrize(
        "preset", ["l2_finite", "l2_small", "l2_partitioned",
                   "nextline", "stream"],
    )
    def test_exotic_geometries_fall_back(self, preset):
        geo = mem_preset(preset).resolve(MachineConfig()).geometry()
        assert charwalk_np.eligible(geo) is False

    def test_no_numpy_env_falls_back(self, monkeypatch):
        geo = mem_preset("classic").resolve(MachineConfig()).geometry()
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert charwalk_np.eligible(geo) is False


class TestEquality:
    SPECS = [
        ("su2cor_1T", lambda: RunSpec.single(
            "su2cor", l2_latency=256, commits=4_000, warmup=2_000)),
        ("tomcatv_1T", lambda: RunSpec.single(
            "tomcatv", l2_latency=16, commits=4_000, warmup=2_000)),
        ("mp_4T", lambda: RunSpec.multiprogrammed(
            4, l2_latency=16, commits_per_thread=2_000,
            warmup_per_thread=1_000)),
        ("thrash4", lambda: RunSpec.from_workload(
            workload_preset("thrash4"), l2_latency=64,
            commits=3_000, warmup=1_000)),
        ("no_warmup", lambda: RunSpec.single(
            "su2cor", l2_latency=16, commits=3_000, warmup=0)),
    ]

    @pytest.mark.parametrize(
        "build", [b for _, b in SPECS], ids=[n for n, _ in SPECS],
    )
    def test_characters_equal(self, build, monkeypatch):
        pure, vec = both_walks(build(), monkeypatch)
        if pure != vec:
            diffs = [
                f"{f.name}: pure={getattr(pure, f.name)!r} "
                f"vec={getattr(vec, f.name)!r}"
                for f in fields(pure)
                if getattr(pure, f.name) != getattr(vec, f.name)
            ]
            pytest.fail("character mismatch:\n" + "\n".join(diffs))

    def test_vectorized_path_actually_dispatches(self, monkeypatch):
        """Guard against the gate silently sending everything to the
        interpreter: the dispatcher must call characterize_np."""
        spec = RunSpec.single("su2cor", l2_latency=16,
                              commits=2_000, warmup=500)
        proc, _ = spec.instantiate()
        key = character_key(spec, proc.cfg)
        called = {}
        real = charwalk_np.characterize_np

        def spy(*a, **kw):
            called["yes"] = True
            return real(*a, **kw)

        monkeypatch.setattr(charwalk_np, "characterize_np", spy)
        _characterize.__wrapped__(key)
        assert called.get("yes") is True
