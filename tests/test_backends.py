"""Backend registry + analytic fast model (tiny budgets)."""

import pytest

from repro.engine import (
    Engine,
    ResultCache,
    RunSpec,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.backends import Backend, CycleBackend
from repro.model.analytic import AnalyticBackend, solve
from repro.model.charwalk import character_key, characterize
from repro.stats.counters import N_SLOT_CATEGORIES, SimStats


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


def tiny(backend="analytic", **kw):
    base = dict(
        n_threads=2, l2_latency=64, seed=0,
        commits_per_thread=2000, warmup_per_thread=500, seg_instrs=3000,
        backend=backend,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


class TestRegistry:
    def test_builtins_resolve(self):
        assert isinstance(get_backend("cycle"), CycleBackend)
        assert isinstance(get_backend("analytic"), AnalyticBackend)
        assert {"cycle", "analytic"} <= set(backend_names())

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(KeyError, match="cycle"):
            get_backend("quantum")

    def test_custom_registration(self):
        class Fake(Backend):
            name = "fake-test-backend"

            def run(self, spec):
                return SimStats(cycles=1, committed=1)

        register_backend(Fake())
        try:
            assert get_backend("fake-test-backend").run(None).committed == 1
        finally:
            from repro.engine import backends as mod
            del mod._REGISTRY["fake-test-backend"]

    def test_nameless_backend_rejected(self):
        class Nameless(Backend):
            name = ""

        with pytest.raises(ValueError):
            register_backend(Nameless())

    def test_placeholder_name_rejected(self):
        # forgetting to set `name` must fail loudly, not register the
        # subclass under the base class's placeholder
        class Forgot(Backend):
            pass

        with pytest.raises(ValueError, match="placeholder"):
            register_backend(Forgot())

    def test_execute_dispatches_through_registry(self):
        stats = tiny().execute()
        assert stats.committed == sum(tiny().budgets()[:1])
        assert stats.cycles > 0


class TestCharacterization:
    def test_walk_is_latency_and_mode_independent(self):
        base = tiny()
        keys = {
            character_key(s, s.machine_config())
            for s in (
                base,
                tiny(l2_latency=256),
                tiny(decoupled=False),
                tiny(mshrs=4),
            )
        }
        assert len(keys) == 1  # one walk serves the whole latency sweep
        assert character_key(
            tiny(n_threads=3), tiny(n_threads=3).machine_config()
        ) not in keys

    def test_mix_accounts_every_instruction(self):
        spec = tiny()
        char = characterize(spec, spec.machine_config())
        mix = (char.ialu + char.falu + char.loads_fp + char.loads_int
               + char.stores + char.branches + char.itof + char.ftoi)
        assert mix == char.instrs
        assert char.fills_fp <= char.loads_fp
        assert char.load_fill_clusters <= char.fills_fp + char.fills_int
        assert 0 <= char.mispredicts <= char.branches

    def test_single_benchmark_kind(self):
        spec = RunSpec.single("tomcatv", backend="analytic", commits=2000,
                              warmup=500)
        char = characterize(spec, spec.machine_config())
        assert char.n_threads == 1
        assert char.instrs == spec.budgets()[0]


class TestAnalyticModel:
    def test_stats_are_fully_populated_and_conserved(self):
        spec = tiny()
        stats = spec.execute()
        cfg = spec.machine_config()
        assert stats.committed == spec.budgets()[0]
        assert sum(stats.committed_per_thread.values()) == stats.committed
        # issue-slot conservation, the same invariant the cycle backend
        # satisfies (tests/test_properties.py)
        for unit, width in ((0, cfg.ap_width), (1, cfg.ep_width)):
            assert len(stats.slot_counts[unit]) == N_SLOT_CATEGORIES
            assert sum(stats.slot_counts[unit]) == stats.cycles * width
            assert all(v >= 0 for v in stats.slot_counts[unit])
        assert 0.0 <= stats.bus_utilization <= 1.0
        assert stats.ipc > 0

    def test_round_trips_and_caches_like_any_result(self, tmp_path):
        spec = tiny()
        stats = spec.execute()
        assert SimStats.from_dict(stats.to_dict()) == stats
        engine = Engine(workers=1, cache=ResultCache(tmp_path))
        assert engine.run(spec) == stats
        warm = Engine(workers=1, cache=ResultCache(tmp_path))
        assert warm.run(spec) == stats
        assert warm.n_cached == 1

    def test_never_shipped_to_a_worker_pool(self, monkeypatch):
        # workers=8 with an analytic-only batch must execute in-process:
        # make any pool construction explode to prove none is created
        import repro.engine.scheduler as sched

        def boom(*args, **kwargs):
            raise AssertionError("analytic specs must not spawn a pool")

        monkeypatch.setattr(sched, "ProcessPoolExecutor", boom)
        engine = Engine(workers=8, cache=None)
        res = engine.map([tiny(), tiny(l2_latency=128)])
        assert res.n_executed == 2
        assert all(s.ipc > 0 for s in res.values())

    def test_latency_monotonicity(self):
        ipcs = [tiny(l2_latency=lat).execute().ipc
                for lat in (16, 64, 128, 256)]
        assert ipcs == sorted(ipcs, reverse=True)

    def test_decoupling_speedup_and_latency_tolerance(self):
        # the paper's headline effects, reproduced by the model
        dec = tiny(l2_latency=128).execute()
        non = tiny(l2_latency=128, decoupled=False).execute()
        assert dec.ipc > non.ipc
        assert dec.perceived_load_latency < non.perceived_load_latency

    def test_smt_scales_ipc(self):
        one = tiny(n_threads=1).execute()
        four = tiny(n_threads=4).execute()
        assert four.ipc > one.ipc

    def test_perceived_latency_grows_with_l2(self):
        p = [tiny(l2_latency=lat).execute().perceived_load_latency
             for lat in (16, 128, 256)]
        assert p[0] < p[1] < p[2]

    def test_solver_converges_on_degenerate_configs(self):
        # narrow machine, tiny queues: the fixed point must stay finite
        spec = tiny(
            ap_width=1, ep_width=1, dispatch_width=2, iq_size=4,
            aq_size=4, mshrs=1, l2_latency=256,
        )
        stats = spec.execute()
        assert 0 < stats.ipc < 8
        cfg = spec.machine_config()
        char = characterize(spec, cfg)
        sol = solve(spec, cfg, char)
        # stats.ipc re-derives from integer cycles, so only rounding apart
        assert sol.ipc == pytest.approx(stats.ipc, rel=1e-3)


class TestConformance:
    def test_quick_document_shape(self, tmp_path):
        from repro.experiments.conformance import (
            render_conformance,
            run_conformance,
        )

        doc = run_conformance(quick=True, timing_specs=8)
        assert doc["n_cells"] == 14  # 12 classic + 2 finite-L2 cells
        assert 0 <= doc["mean_abs_ipc_err"] <= doc["max_abs_ipc_err"]
        assert doc["timing"]["analytic_sweep_specs"] == 8
        assert doc["timing"]["cycle_runs_executed"] == 14
        assert doc["timing"]["sweep_speedup"] > 1
        text = render_conformance(doc)
        assert "mean |IPC err|" in text
        assert ("PASS" in text) or ("FAIL" in text)

    def test_cli_exit_codes(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main(["conformance", "--quick", "--timing-specs", "0",
                     "--output", str(tmp_path / "conf.json")]) == 0
        assert (tmp_path / "conf.json").is_file()
        capsys.readouterr()
        # an impossible tolerance must flip the exit code
        assert main(["conformance", "--quick", "--timing-specs", "0",
                     "--tolerance", "0.000001"]) == 1
        assert "CONFORMANCE FAILURE" in capsys.readouterr().err
