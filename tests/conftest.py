"""Shared test fixtures and tiny-program builders.

Hand-built micro-programs exercise precise pipeline behaviours; the builders
here keep those tests readable. Addresses below 2**26 carry a zero region
salt for thread 0, so micro-program addresses behave literally.
"""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.isa.trace import Trace

_PC_STEP = 4


def prog(*insts: StaticInst, name: str = "test") -> Trace:
    """Wrap hand-built instructions into a trace."""
    return Trace(list(insts), name=name)


class ProgramBuilder:
    """Convenience builder assigning sequential PCs."""

    def __init__(self, pc: int = 0x1000):
        self.pc = pc
        self.insts: list[StaticInst] = []

    def emit(self, op, dest=None, srcs=(), addr=0, taken=False, target=0):
        inst = StaticInst(self.pc, op, dest, tuple(srcs), addr, taken, target)
        self.insts.append(inst)
        self.pc += _PC_STEP
        return inst

    def ialu(self, dest=4, srcs=(4,)):
        return self.emit(OpClass.IALU, dest=dest, srcs=srcs)

    def falu(self, dest=36, srcs=(36,)):
        return self.emit(OpClass.FALU, dest=dest, srcs=srcs)

    def load_f(self, dest=40, base=2, addr=0x2000):
        return self.emit(OpClass.LOAD_F, dest=dest, srcs=(base,), addr=addr)

    def load_i(self, dest=8, base=2, addr=0x3000):
        return self.emit(OpClass.LOAD_I, dest=dest, srcs=(base,), addr=addr)

    def store_f(self, base=2, data=36, addr=0x4000):
        return self.emit(OpClass.STORE_F, srcs=(base, data), addr=addr)

    def store_i(self, base=2, data=4, addr=0x5000):
        return self.emit(OpClass.STORE_I, srcs=(base, data), addr=addr)

    def branch(self, taken=False, src=4, target=0):
        return self.emit(OpClass.BRANCH, srcs=(src,), taken=taken,
                         target=target or self.pc + 2 * _PC_STEP)

    def nops(self, n: int):
        """n independent integer ops on rotating scratch registers."""
        for i in range(n):
            self.ialu(dest=10 + (i % 8), srcs=(10 + (i % 8),))

    def trace(self, name: str = "test") -> Trace:
        return Trace(self.insts, name=name)


@pytest.fixture
def builder():
    return ProgramBuilder()


def small_config(**overrides) -> MachineConfig:
    """A paper-parameter config unless overridden."""
    return MachineConfig(**overrides)


def run_program(
    trace: Trace,
    cfg: MachineConfig | None = None,
    max_commits: int | None = None,
    max_cycles: int = 100_000,
    seed: int = 0,
):
    """Run one finite trace to completion on every context.

    The program does not wrap, so ``stats.committed`` equals the number of
    (right-path) instructions in the program exactly.
    """
    cfg = cfg or MachineConfig()
    proc = Processor(cfg, [[trace]] * cfg.n_threads, seed=seed, wrap=False)
    stats = proc.run(max_commits=max_commits, max_cycles=max_cycles)
    return proc, stats


def cycles_to_run(trace: Trace, cfg: MachineConfig | None = None) -> int:
    """Cycles needed to commit the whole trace once."""
    _proc, stats = run_program(trace)
    return stats.cycles
