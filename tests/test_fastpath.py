"""Spec-specialized memory fast path: selection and bit-identity.

The specialized ``load``/``store`` closures (``memory/fastpath.py``) must
be indistinguishable from the generic :class:`MemorySystem` interpreter —
same status codes, same ready cycles, same counters in the same order —
on every shape they claim, and must *decline* every shape they do not
model.  The differential tests here drive a specialized system and its
generic twin (``specialize=False``) through identical access streams and
whole pipeline runs and require equality everywhere.
"""

import random

import pytest

from repro.core.config import MachineConfig
from repro.engine.spec import RunSpec
from repro.memory.hierarchy import MemorySystem
from repro.memory.spec import mem_preset


@pytest.fixture(autouse=True)
def _specialization_enabled(monkeypatch):
    """These tests exercise the specialized path on purpose — neutralize
    an ambient REPRO_GENERIC_MEM (e.g. CI's fallback-paths job)."""
    monkeypatch.delenv("REPRO_GENERIC_MEM", raising=False)


def resolved(name="classic", n_threads=1, **cfg_kw):
    cfg = MachineConfig(n_threads=n_threads, **cfg_kw)
    return mem_preset(name).resolve(cfg)


def make_pair(name="classic", n_threads=1, line_bytes=32, **cfg_kw):
    """(specialized, generic) MemorySystem twins of one resolved spec."""
    spec = resolved(name, n_threads=n_threads, **cfg_kw)
    fast = MemorySystem(spec, n_threads=n_threads, line_bytes=line_bytes)
    ref = MemorySystem(spec, n_threads=n_threads, line_bytes=line_bytes,
                       specialize=False)
    return fast, ref


def counters(mem):
    return {
        "fills": mem.fills,
        "writebacks": mem.writebacks,
        "blocked": mem.blocked_requests,
        "mshr_failures": mem.mshrs.alloc_failures,
        "mshr_in_use": mem.mshrs.in_use,
        "bus_busy": mem.bus.busy_cycles,
        "bus_free_at": mem.bus.free_at,
        "levels": mem.level_stats(),
        "l1": (list(mem.l1.tags), bytes(mem.l1.dirty),
               list(mem.l1.pending)),
    }


class TestSelection:
    def test_classic_is_specialized(self):
        assert MemorySystem.classic().specialized is True

    def test_classic_multithread_shared_l1_is_specialized(self):
        spec = resolved("classic", n_threads=4)
        mem = MemorySystem(spec, n_threads=4)
        assert mem.specialized is True

    def test_wide_bus_is_specialized(self):
        spec = resolved("wide_bus")
        assert MemorySystem(spec).specialized is True

    @pytest.mark.parametrize(
        "preset", ["l2_finite", "l2_small", "l2_partitioned",
                   "nextline", "stream"],
    )
    def test_exotic_shapes_fall_back(self, preset):
        spec = resolved(preset)
        mem = MemorySystem(spec)
        assert mem.specialized is False

    def test_per_thread_l1_slices_fall_back(self):
        # spec surgery on the classic preset: un-share the L1 so each
        # hardware context gets its own slice
        from dataclasses import replace

        base = mem_preset("classic")
        spec = replace(
            base, levels=(replace(base.levels[0], shared=False),)
            + base.levels[1:],
        ).resolve(MachineConfig(n_threads=4))
        mem = MemorySystem(spec, n_threads=4)
        assert len(mem._l1s) == 4 and mem.specialized is False

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERIC_MEM", "1")
        assert MemorySystem.classic().specialized is False

    def test_generic_flag_builds_generic(self):
        spec = resolved("classic")
        mem = MemorySystem(spec, specialize=False)
        assert mem.specialized is False


class TestDifferentialStreams:
    """Random access streams: every return value and counter matches."""

    GRID = [
        dict(),
        dict(mshrs=2),
        dict(l2_latency=256),
        dict(bus_bytes_per_cycle=32),
        dict(l1_bytes=4 * 1024),
        dict(n_threads=4),
    ]

    @pytest.mark.parametrize("kw", GRID)
    def test_stream_bit_identical(self, kw):
        n_threads = kw.pop("n_threads", 1)
        fast, ref = make_pair("classic", n_threads=n_threads, **kw)
        assert fast.specialized and not ref.specialized
        rng = random.Random(1234)
        now = 0
        for i in range(20_000):
            now += rng.randrange(0, 3)
            if i % 512 == 0:
                fast.begin_cycle()
                ref.begin_cycle()
            # a few 64 KB regions, with some very hot lines mixed in
            addr = (rng.randrange(0, 4) << 26) | rng.randrange(0, 1 << 16)
            tid = rng.randrange(n_threads)
            if rng.random() < 0.3:
                got = fast.store(addr, now, tid)
                want = ref.store(addr, now, tid)
            else:
                got = fast.load(addr, now, tid)
                want = ref.load(addr, now, tid)
            assert got == want, f"access {i}: {got} != {want}"
        assert counters(fast) == counters(ref)

    def test_reset_stats_keeps_paths_in_lockstep(self):
        fast, ref = make_pair("classic")
        for mem in (fast, ref):
            mem.load(0x1000, 0)
            mem.store(0x2000, 1)
            mem.reset_stats()
            mem.load(0x3000, 2)
        assert counters(fast) == counters(ref)


class TestDifferentialPipeline:
    """Whole-run differential: a pipeline on the specialized system must
    produce the exact SimStats of one on the generic interpreter."""

    @pytest.mark.parametrize("build", [
        lambda: RunSpec.single("su2cor", l2_latency=64,
                               commits=4_000, warmup=1_000),
        lambda: RunSpec.multiprogrammed(2, l2_latency=16,
                                        commits_per_thread=2_000,
                                        warmup_per_thread=500),
    ])
    def test_run_bit_identical(self, build, monkeypatch):
        spec = build()
        proc, kw = spec.instantiate()
        assert proc.mem.specialized is True
        fast_stats = proc.run(**kw)

        monkeypatch.setenv("REPRO_GENERIC_MEM", "1")
        proc2, kw2 = spec.instantiate()
        assert proc2.mem.specialized is False
        ref_stats = proc2.run(**kw2)
        assert fast_stats.to_dict() == ref_stats.to_dict()
