"""Multiprogrammed workload construction (rotated benchmark playlists)."""

from repro.workloads.multiprogram import (
    benchmark_trace,
    multiprogram,
    rotation,
    single_program,
)
from repro.workloads.profiles import BENCH_ORDER


class TestRotation:
    def test_identity(self):
        assert rotation(["a", "b", "c"], 0) == ["a", "b", "c"]

    def test_shift(self):
        assert rotation(["a", "b", "c"], 1) == ["b", "c", "a"]

    def test_wraps(self):
        assert rotation(["a", "b", "c"], 4) == rotation(["a", "b", "c"], 1)


class TestMultiprogram:
    def test_one_playlist_per_thread(self):
        pls = multiprogram(3, seg_instrs=1000)
        assert len(pls) == 3

    def test_each_playlist_covers_all_benchmarks(self):
        pls = multiprogram(2, seg_instrs=1000)
        for pl in pls:
            assert sorted(tr.name for tr in pl) == sorted(BENCH_ORDER)

    def test_threads_start_on_different_benchmarks(self):
        pls = multiprogram(4, seg_instrs=1000)
        firsts = [pl[0].name for pl in pls]
        assert len(set(firsts)) == 4

    def test_traces_shared_between_threads(self):
        # memory must not scale with the thread count
        pls = multiprogram(3, seg_instrs=1000)
        assert pls[0][1] is pls[1][0]  # same object, rotated position

    def test_segment_length(self):
        pls = multiprogram(1, seg_instrs=1234)
        for tr in pls[0]:
            assert len(tr) >= 1234

    def test_subset_selection(self):
        pls = multiprogram(2, seg_instrs=800, names=["swim", "fpppp"])
        assert sorted(tr.name for tr in pls[0]) == ["fpppp", "swim"]


class TestCaching:
    def test_trace_cache_returns_same_object(self):
        a = benchmark_trace("mgrid", 1500, seed=0)
        b = benchmark_trace("mgrid", 1500, seed=0)
        assert a is b

    def test_cache_distinguishes_seed(self):
        a = benchmark_trace("mgrid", 1500, seed=0)
        b = benchmark_trace("mgrid", 1500, seed=1)
        assert a is not b


class TestSingleProgram:
    def test_shape(self):
        pls = single_program("applu", n_instrs=2000)
        assert len(pls) == 1
        assert len(pls[0]) == 1
        assert pls[0][0].name == "applu"
