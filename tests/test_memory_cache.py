"""Direct-mapped write-back L1: hits, misses, secondary merges, conflicts."""

import pytest

from repro.memory.levels import CONFLICT, HIT, MISS, SECONDARY, L1Cache


def make_cache():
    return L1Cache(size_bytes=64 * 1024, line_bytes=32)


class TestGeometry:
    def test_sets(self):
        c = make_cache()
        assert c.n_sets == 2048

    def test_line_of(self):
        c = make_cache()
        assert c.line_of(0) == 0
        assert c.line_of(31) == 0
        assert c.line_of(32) == 1

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            L1Cache(size_bytes=100, line_bytes=32)

    def test_sets_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            L1Cache(size_bytes=96, line_bytes=32)


class TestProbeInstall:
    def test_cold_miss(self):
        c = make_cache()
        outcome, _idx, _when = c.probe(0x1000, now=0)
        assert outcome == MISS

    def test_hit_after_fill_completes(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=10, make_dirty=False)
        assert c.probe(0x1000, now=10)[0] == HIT
        assert c.probe(0x1008, now=10)[0] == HIT  # same line

    def test_secondary_while_fill_pending(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=10, make_dirty=False)
        outcome, _idx, when = c.probe(0x1008, now=5)
        assert outcome == SECONDARY
        assert when == 10

    def test_conflict_when_set_pinned(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=10, make_dirty=False)
        # same set (64 KB apart), different tag, while fill in flight
        outcome, _idx, when = c.probe(0x1000 + 64 * 1024, now=5)
        assert outcome == CONFLICT
        assert when == 10

    def test_eviction_after_fill(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=1, make_dirty=False)
        other = 0x1000 + 64 * 1024
        assert c.probe(other, now=5)[0] == MISS
        c.install(other, now=5, fill_cycle=6, make_dirty=False)
        assert c.probe(0x1000, now=10)[0] == MISS  # victim gone


class TestDirtyTracking:
    def test_clean_victim_needs_no_writeback(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=1, make_dirty=False)
        assert c.install(0x1000 + 64 * 1024, now=5, fill_cycle=6,
                         make_dirty=False)[1] is False

    def test_dirty_victim_reports_writeback(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=1, make_dirty=True)
        assert c.install(0x1000 + 64 * 1024, now=5, fill_cycle=6, make_dirty=False)[1] is True

    def test_write_hit_sets_dirty(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=1, make_dirty=False)
        c.touch_write(0x1008)
        assert c.install(0x1000 + 64 * 1024, now=5, fill_cycle=6, make_dirty=False)[1] is True

    def test_touch_write_ignores_non_resident(self):
        c = make_cache()
        c.touch_write(0x9000)  # nothing resident: no crash, no dirty bit
        c.install(0x9000, now=0, fill_cycle=1, make_dirty=False)
        assert c.install(0x9000 + 64 * 1024, now=5, fill_cycle=6, make_dirty=False)[1] is False


class TestFlush:
    def test_flush_invalidates(self):
        c = make_cache()
        c.install(0x1000, now=0, fill_cycle=1, make_dirty=True)
        c.flush()
        assert c.probe(0x1000, now=5)[0] == MISS
