"""The simulation-as-a-service job server, exercised over real HTTP.

Integration tests boot a :class:`~repro.service.server.SimService` on an
ephemeral port in a background thread and speak to it with ``urllib`` —
the same loopback TCP path a real client takes.  The headline scenario
is the acceptance criterion from the service design: K identical
concurrent submissions must coalesce to **exactly one** engine
execution, a graceful drain must finish and persist in-flight jobs, and
a restarted service must recover the spool.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import RunSpec
from repro.engine.backends import Backend, get_backend, register_backend
from repro.service import JobStore, SimService, parse_job_request
from repro.service.jobs import Job
from repro.service.wire import WireError


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


def fast_spec(**kw):
    """An analytic-backend spec: microseconds per run."""
    base = dict(
        n_threads=1, l2_latency=16, seed=0, backend="analytic",
        commits_per_thread=1500, warmup_per_thread=500, seg_instrs=3000,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


# -- wire schema ------------------------------------------------------------------


class TestWire:
    def test_single_spec_roundtrip(self):
        spec = fast_spec()
        req = parse_job_request(
            json.dumps({"spec": spec.to_dict(), "label": "one"}).encode()
        )
        assert req.specs == [spec]
        assert req.label == "one"

    def test_batch_roundtrip_preserves_order(self):
        specs = [fast_spec(l2_latency=lat) for lat in (16, 64, 256)]
        req = parse_job_request(
            json.dumps({"specs": [s.to_dict() for s in specs]}).encode()
        )
        assert req.specs == specs
        assert req.label is None

    @pytest.mark.parametrize(
        "body, excerpt",
        [
            (b"{not json", "not valid JSON"),
            (b"[1, 2]", "JSON object"),
            (b"{}", 'exactly one of "spec" or "specs"'),
            (b'{"spec": {}, "specs": []}', 'exactly one of "spec" or "specs"'),
            (b'{"specs": []}', "at least one spec"),
            (b'{"specs": {"a": 1}}', "must be a list"),
            (b'{"specs": [42]}', "spec[0] must be an object"),
            (b'{"spec": {"nope": 1}}', "not a valid RunSpec"),
        ],
    )
    def test_rejects_malformed_bodies(self, body, excerpt):
        with pytest.raises(WireError, match=None) as err:
            parse_job_request(body)
        assert excerpt in str(err.value)

    def test_rejects_unknown_backend(self):
        doc = fast_spec().to_dict()
        doc["backend"] = "quantum"
        with pytest.raises(WireError, match="quantum"):
            parse_job_request(json.dumps({"spec": doc}).encode())

    def test_rejects_non_string_label(self):
        body = json.dumps({"spec": fast_spec().to_dict(), "label": 7})
        with pytest.raises(WireError, match="label"):
            parse_job_request(body.encode())


# -- job spool --------------------------------------------------------------------


class TestJobStore:
    def test_record_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job([fast_spec()], label="spooled")
        job.mark_running()
        job.finish_ok([{"key": "k", "stats": {"ipc": 1.0}}])
        store.save(job)
        (loaded,) = store.load_all()
        assert loaded.id == job.id
        assert loaded.label == "spooled"
        assert loaded.state == "done"
        assert loaded.specs == job.specs
        assert loaded.runs == job.runs

    def test_load_all_skips_garbage(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(Job([fast_spec()]))
        (tmp_path / "junk.job.json").write_text("{torn")
        assert len(store.load_all()) == 1

    def test_load_all_missing_dir(self, tmp_path):
        assert JobStore(tmp_path / "nope").load_all() == []


# -- live HTTP --------------------------------------------------------------------


def _boot(tmp_path, **kw):
    """Start a service on an ephemeral port; returns (service, thread)."""
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("spool_dir", str(tmp_path / "spool"))
    kw.setdefault("log", lambda msg: None)
    svc = SimService(host="127.0.0.1", port=0, **kw)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(svc.run(ready=ready)), daemon=True
    )
    thread.start()
    assert ready.wait(10), "service failed to start"
    return svc, thread


def _drain(svc, thread):
    svc.request_drain_threadsafe()
    thread.join(15)
    assert not thread.is_alive(), "service failed to drain"


@pytest.fixture
def service(tmp_path):
    svc, thread = _boot(tmp_path)
    yield svc
    if thread.is_alive():
        _drain(svc, thread)


def _request(svc, method, path, body=None):
    """One HTTP request; returns (status, parsed JSON body)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{svc.port}{path}",
        method=method,
        data=json.dumps(body).encode() if body is not None else None,
    )
    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _await_job(svc, job_id, timeout=20.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc = _request(svc, "GET", f"/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


class TestHTTP:
    def test_submit_poll_results(self, service):
        specs = [fast_spec(l2_latency=lat) for lat in (16, 64)]
        status, doc = _request(
            service, "POST", "/jobs",
            {"specs": [s.to_dict() for s in specs], "label": "pair"},
        )
        assert status == 202
        assert doc["state"] == "queued"
        assert doc["n_specs"] == 2
        final = _await_job(service, doc["id"])
        assert final["state"] == "done"
        assert final["error"] is None
        assert final["counters"]["n_executed"] == 2
        # runs come back in submission order, keyed like the CLI sweep doc
        assert [r["key"] for r in final["runs"]] == [s.key() for s in specs]
        for run in final["runs"]:
            assert run["stats"]["committed"] > 0

    def test_warm_resubmission_is_a_cache_hit(self, service):
        spec = fast_spec(seed=3)
        _, first = _request(service, "POST", "/jobs", {"spec": spec.to_dict()})
        _await_job(service, first["id"])
        _, second = _request(service, "POST", "/jobs", {"spec": spec.to_dict()})
        final = _await_job(service, second["id"])
        assert final["counters"] == {
            **final["counters"], "n_cached": 1, "n_executed": 0,
        }

    def test_listing_and_metrics(self, service):
        _, doc = _request(
            service, "POST", "/jobs", {"spec": fast_spec(seed=9).to_dict()}
        )
        _await_job(service, doc["id"])
        status, listing = _request(service, "GET", "/jobs")
        assert status == 200
        assert doc["id"] in [j["id"] for j in listing["jobs"]]
        status, metrics = _request(service, "GET", "/metrics")
        assert status == 200
        assert metrics["jobs"]["submitted"] >= 1
        assert metrics["jobs"]["completed"] >= 1
        assert metrics["engine"]["n_executed"] >= 1
        assert metrics["engine"]["ff_jumps"] >= 0
        assert "ff_cycles_skipped" in metrics["engine"]
        assert metrics["queue_depth"] == 0
        assert metrics["draining"] is False
        assert metrics["service_workers"] == len(service.engines)

    def test_hybrid_job_streams_routing_events(self, service):
        """A routed (hybrid-backend) job: screened/promoted progress
        events stream live, and the routing counters land in the job
        document and in /metrics."""
        specs = [
            fast_spec(backend="hybrid", l2_latency=lat, decoupled=dec)
            for lat in (16, 64, 256) for dec in (True, False)
        ]
        _, doc = _request(
            service, "POST", "/jobs",
            {"specs": [s.to_dict() for s in specs], "label": "routed"},
        )
        final = _await_job(service, doc["id"])
        assert final["state"] == "done"
        c = final["counters"]
        assert c["n_screened"] + c["n_promoted"] == len(specs)
        assert 1 <= c["n_promoted"] <= 2  # default 0.15 budget on 6 cells
        assert c["cycle_cells_saved"] == c["n_screened"]
        url = f"http://127.0.0.1:{service.port}/jobs/{doc['id']}/events"
        with urllib.request.urlopen(url, timeout=20) as resp:
            lines = resp.read().decode()
        assert "screened" in lines and "promoted" in lines
        _, metrics = _request(service, "GET", "/metrics")
        assert metrics["engine"]["n_screened"] >= c["n_screened"]
        assert metrics["engine"]["n_promoted"] >= c["n_promoted"]
        assert metrics["engine"]["cycle_cells_saved"] >= c["n_screened"]
        # screened stats carry the error bar over the wire
        screened = [r for r in final["runs"]
                    if r["stats"].get("fidelity") == "analytic"]
        assert len(screened) == c["n_screened"]
        for run in screened:
            assert run["stats"]["ipc_lo"] <= run["stats"]["ipc_hi"]

    def test_healthz(self, service):
        status, doc = _request(service, "GET", "/healthz")
        assert (status, doc["ok"], doc["draining"]) == (200, True, False)

    def test_bad_body_is_400_not_an_accepted_job(self, service):
        status, doc = _request(service, "POST", "/jobs", {"specs": []})
        assert status == 400
        assert "at least one spec" in doc["error"]
        assert service.metrics.jobs_submitted == 0

    def test_unknown_job_is_404(self, service):
        status, doc = _request(service, "GET", "/jobs/deadbeef")
        assert status == 404
        assert "deadbeef" in doc["error"]

    def test_unknown_route_is_404(self, service):
        status, doc = _request(service, "GET", "/nope")
        assert status == 404
        assert "POST /jobs" in doc["routes"]

    def test_wrong_method_is_405(self, service):
        status, _ = _request(service, "POST", "/metrics", {})
        assert status == 404 or status == 405

    def test_events_stream_runs_to_terminal(self, service):
        spec = fast_spec(seed=17)
        _, doc = _request(service, "POST", "/jobs", {"spec": spec.to_dict()})
        # the stream stays open until the job is terminal, then closes —
        # reading to EOF therefore observes the whole lifecycle
        url = f"http://127.0.0.1:{service.port}/jobs/{doc['id']}/events"
        with urllib.request.urlopen(url, timeout=20) as resp:
            lines = resp.read().decode().splitlines()
        assert any("queued" in line for line in lines)
        assert any("running" in line for line in lines)
        assert any("done" in line for line in lines)
        assert any(spec.label() in line for line in lines)


# -- coalescing -------------------------------------------------------------------


class _SlowAnalytic(Backend):
    """Analytic results delivered slowly: holds a spec in flight long
    enough for concurrent identical submissions to pile up behind it."""

    name = "slow-analytic-test"
    process_pool_worthwhile = False  # must run in-process: registered at runtime

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.n_runs = 0
        self._lock = threading.Lock()

    def run(self, spec):
        with self._lock:
            self.n_runs += 1
        time.sleep(self.delay_s)
        return get_backend("analytic").run(spec)


class TestCoalescing:
    def test_identical_concurrent_posts_cost_one_execution(self, tmp_path):
        """The acceptance criterion: K concurrent identical POST /jobs
        produce exactly one engine execution — every other job either
        borrows the in-flight result or hits the now-warm cache."""
        backend = register_backend(_SlowAnalytic(delay_s=1.0))
        try:
            svc, thread = _boot(tmp_path, service_workers=4)
            try:
                spec = fast_spec()
                doc = dict(spec.to_dict(), backend=backend.name)
                k = 4
                ids = []
                for _ in range(k):
                    status, reply = _request(svc, "POST", "/jobs", {"spec": doc})
                    assert status == 202
                    ids.append(reply["id"])
                finals = [_await_job(svc, job_id) for job_id in ids]
                assert [f["state"] for f in finals] == ["done"] * k
                assert backend.n_runs == 1
                assert sum(e.n_executed for e in svc.engines) == 1
                assert sum(f["counters"]["n_executed"] for f in finals) == 1
                assert sum(f["counters"]["n_coalesced"] for f in finals) >= 1
                # every job reports the one result, byte-for-byte
                stats = [f["runs"][0]["stats"] for f in finals]
                assert all(s == stats[0] for s in stats)
                _, metrics = _request(svc, "GET", "/metrics")
                assert metrics["coalesced_specs"] >= 1
                assert metrics["inflight_specs"] == 0
            finally:
                _drain(svc, thread)
        finally:
            from repro.engine.backends import _REGISTRY

            _REGISTRY.pop(backend.name, None)

    def test_failed_owner_propagates_to_borrowers(self, tmp_path):
        class _Exploding(_SlowAnalytic):
            name = "exploding-test"

            def run(self, spec):
                with self._lock:
                    self.n_runs += 1
                time.sleep(self.delay_s)
                raise RuntimeError("boom at cycle 7")

        backend = register_backend(_Exploding(delay_s=0.8))
        try:
            svc, thread = _boot(tmp_path, service_workers=2)
            try:
                doc = dict(fast_spec().to_dict(), backend=backend.name)
                _, a = _request(svc, "POST", "/jobs", {"spec": doc})
                _, b = _request(svc, "POST", "/jobs", {"spec": doc})
                final_a = _await_job(svc, a["id"])
                final_b = _await_job(svc, b["id"])
                assert {final_a["state"], final_b["state"]} == {"failed"}
                assert "boom at cycle 7" in (final_a["error"] or "")
                # the borrower failed via the owner's exception, not a
                # second execution of the doomed spec
                assert backend.n_runs == 1
            finally:
                _drain(svc, thread)
        finally:
            from repro.engine.backends import _REGISTRY

            _REGISTRY.pop(backend.name, None)


# -- drain + recovery -------------------------------------------------------------


class TestDrainAndRecovery:
    def test_drain_finishes_inflight_and_persists(self, tmp_path):
        backend = register_backend(_SlowAnalytic(delay_s=1.0))
        try:
            svc, thread = _boot(tmp_path, service_workers=1)
            doc = dict(fast_spec().to_dict(), backend=backend.name)
            _, reply = _request(svc, "POST", "/jobs", {"spec": doc})
            deadline = time.time() + 10
            while svc.jobs[reply["id"]].state == "queued":
                assert time.time() < deadline
                time.sleep(0.02)
            # drain while the job is mid-simulation: it must finish, not die
            _drain(svc, thread)
            (job,) = [
                j for j in JobStore(tmp_path / "spool").load_all()
                if j.id == reply["id"]
            ]
            assert job.state == "done"
            assert job.runs[0]["stats"]["committed"] > 0
        finally:
            from repro.engine.backends import _REGISTRY

            _REGISTRY.pop(backend.name, None)

    def test_restart_recovers_unfinished_jobs(self, tmp_path):
        # a job the previous process accepted but never ran: written to
        # the spool as queued, exactly what a hard kill leaves behind
        spec = fast_spec(seed=21)
        orphan = Job([spec], label="orphaned by a crash")
        JobStore(tmp_path / "spool").save(orphan)
        svc, thread = _boot(tmp_path)
        try:
            final = _await_job(svc, orphan.id)
            assert final["state"] == "done"
            assert final["runs"][0]["key"] == spec.key()
            assert any("recovered" in line for line in svc.jobs[orphan.id].events)
        finally:
            _drain(svc, thread)

    def test_restart_keeps_finished_jobs_queryable(self, tmp_path):
        svc, thread = _boot(tmp_path)
        _, reply = _request(
            svc, "POST", "/jobs", {"spec": fast_spec(seed=5).to_dict()}
        )
        first = _await_job(svc, reply["id"])
        _drain(svc, thread)
        svc2, thread2 = _boot(tmp_path)
        try:
            status, again = _request(svc2, "GET", f"/jobs/{reply['id']}")
            assert status == 200
            assert again["state"] == "done"
            assert again["runs"] == first["runs"]
        finally:
            _drain(svc2, thread2)

    def test_draining_rejects_new_jobs_with_503(self, tmp_path):
        svc, thread = _boot(tmp_path)
        # flip the flag without closing the listener: the 503 path, not
        # a connection refusal, is what a mid-drain client must see
        svc._draining = True
        status, doc = _request(
            svc, "POST", "/jobs", {"spec": fast_spec().to_dict()}
        )
        assert status == 503
        assert "draining" in doc["error"]
        status, health = _request(svc, "GET", "/healthz")
        assert health["draining"] is True
        svc._draining = False
        _drain(svc, thread)
