"""The declarative workload API: spec round-trips, registries, CLI."""

import json
import subprocess
import sys

import pytest

from repro.engine import RunSpec, get_backend
from repro.engine.spec import scale_factor
from repro.workloads.profiles import (
    BenchProfile,
    get_profile,
    load_profiles,
    profile_names,
    profile_provenance,
    register_profile,
)
from repro.workloads.spec import (
    WorkloadEntry,
    WorkloadSpec,
    load_workload,
    parse_value,
    preset_names,
    resolve_workload,
    workload_preset,
)


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")


@pytest.fixture
def clean_registry():
    """Snapshot/restore the profile registry around mutation tests."""
    from repro.workloads import profiles as mod

    before = dict(mod._REGISTRY)
    yield
    mod._REGISTRY.clear()
    mod._REGISTRY.update(before)


class TestEntryParsing:
    def test_plain_reference(self):
        entry = WorkloadEntry.parse("swim")
        assert entry.profile == get_profile("swim")
        assert entry.seg_instrs is None

    def test_inline_overrides_and_sizes(self):
        entry = WorkloadEntry.parse("swim?hot_frac=0.1&ws_bytes=16M")
        assert entry.profile.hot_frac == 0.1
        assert entry.profile.ws_bytes == 16 * 1024 * 1024
        assert entry.label == "swim?hot_frac=0.1&ws_bytes=16777216"

    def test_seg_instrs_is_reserved(self):
        entry = WorkloadEntry.parse("swim?seg_instrs=5000")
        assert entry.seg_instrs == 5000
        assert entry.profile == get_profile("swim")

    def test_value_coercion(self):
        assert parse_value("4K") == 4096
        assert parse_value("1.5M") == int(1.5 * 1024 * 1024)
        assert parse_value("true") is True
        assert parse_value("3") == 3
        assert parse_value("0.25") == 0.25
        assert parse_value("icount") == "icount"

    def test_unknown_profile_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'swim'"):
            WorkloadEntry.parse("swmi")

    def test_unknown_field_suggests(self):
        with pytest.raises(ValueError, match="hot_frac"):
            WorkloadEntry.parse("swim?hot_fracc=0.1")

    def test_malformed_query_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            WorkloadEntry.parse("swim?hot_frac")

    def test_nonpositive_seg_instrs_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WorkloadEntry.parse("swim?seg_instrs=-5000")
        with pytest.raises(ValueError, match="positive"):
            WorkloadEntry.parse("swim?seg_instrs=0")


class TestWorkloadSpecIdentity:
    def test_dict_round_trip(self):
        wl = workload_preset("hetero4")
        clone = WorkloadSpec.from_dict(json.loads(json.dumps(wl.to_dict())))
        assert clone == wl
        assert clone.key() == wl.key()
        assert hash(clone) == hash(wl)

    def test_round_trip_is_registry_independent(self, clean_registry):
        register_profile(
            get_profile("swim").with_overrides(name="mine", hot_frac=0.2)
        )
        wl = WorkloadSpec.mix([["mine"]], name="uses-user-profile")
        d = json.loads(json.dumps(wl.to_dict()))
        from repro.workloads import profiles as mod

        del mod._REGISTRY["mine"]
        clone = WorkloadSpec.from_dict(d)  # no registry lookup needed
        assert clone == wl

    def test_key_stable_across_processes(self):
        wl = workload_preset("hetero4")
        code = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.workloads.spec import workload_preset;"
            "print(workload_preset('hetero4').key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, cwd=".",
        ).stdout.strip()
        assert out == wl.key()

    def test_single_field_isolates_cache_keys(self):
        base = RunSpec.from_workload(
            WorkloadSpec.mix([["swim?hot_frac=0.4"]], name="w"), scale=1.0
        )
        other = RunSpec.from_workload(
            WorkloadSpec.mix([["swim?hot_frac=0.41"]], name="w"), scale=1.0
        )
        assert base.workload != other.workload
        assert base.key() != other.key()

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1 thread"):
            WorkloadSpec(name="empty", threads=())
        with pytest.raises(ValueError, match=">= 1 entry"):
            WorkloadSpec(name="hole", threads=((),))

    def test_name_collision_with_different_fields_rejected(self):
        # the characterization walk keys profile blending by trace name;
        # one name binding two field sets would silently blend wrong
        a = WorkloadEntry(get_profile("swim").with_overrides(hot_frac=0.1))
        b = WorkloadEntry(get_profile("swim").with_overrides(hot_frac=0.9))
        with pytest.raises(ValueError, match="distinct names"):
            WorkloadSpec(name="clash", threads=((a,), (b,)))
        # identical duplicates are fine (homogeneous workloads)
        WorkloadSpec(name="dup", threads=((a,), (a,)))

    def test_with_profile_overrides(self):
        wl = workload_preset("thrash4")
        hot = wl.with_profile_overrides(hot_frac=0.33)
        assert hot.key() != wl.key()
        assert all(
            e.profile.hot_frac == 0.33
            for pl in hot.threads for e in pl
        )
        assert "hot_frac=0.33" in hot.threads[0][0].label


class TestBothBackendsConsumeOneSpec:
    @pytest.mark.parametrize("backend", ["cycle", "analytic"])
    def test_preset_runs_on_backend(self, backend):
        wl = workload_preset("ptrchase2")
        spec = RunSpec.from_workload(
            wl, commits=1200, warmup=300, backend=backend
        )
        stats = spec.execute()
        # the cycle kernel may commit up to one extra cycle's width
        assert stats.committed >= spec.budgets()[0]
        assert stats.ipc > 0

    def test_characterization_keys_on_workload(self):
        from repro.model.charwalk import character_key

        wl = workload_preset("hetero4")
        a = RunSpec.from_workload(wl, backend="analytic")
        b = RunSpec.from_workload(wl, l2_latency=256, backend="analytic")
        assert character_key(a, a.machine_config()) == character_key(
            b, b.machine_config()
        )
        other = RunSpec.from_workload(
            wl.with_profile_overrides(hot_frac=0.2), backend="analytic"
        )
        assert character_key(a, a.machine_config()) != character_key(
            other, other.machine_config()
        )

    def test_decoupling_helps_stream_not_ptrchase(self):
        # the scenario presets reproduce the paper's qualitative law:
        # decoupling hides FP-load latency (the streaming preset sees an
        # almost-zero perceived latency), but integer loads on the
        # address-generation path — the pointer chase — stay exposed at
        # nearly their non-decoupled cost (paper section 2)
        def run(preset, decoupled):
            return RunSpec.from_workload(
                workload_preset(preset), l2_latency=64,
                decoupled=decoupled, commits=1500, warmup=400,
            ).execute()

        stream = run("stream4", True)
        assert stream.perceived_fp_latency < 5.0
        assert stream.average_slip > 10.0
        chase_dec = run("ptrchase2", True)
        chase_non = run("ptrchase2", False)
        assert chase_dec.perceived_int_latency > 20.0
        assert (
            chase_dec.perceived_int_latency
            > 0.8 * chase_non.perceived_int_latency
        )


class TestProfileRegistry:
    def test_builtins_present_with_provenance(self):
        assert "swim" in profile_names()
        assert profile_provenance("swim") == "built-in"
        assert profile_provenance("ptrchase") == "built-in scenario"

    def test_load_profiles_json(self, tmp_path, clean_registry):
        path = tmp_path / "mine.json"
        path.write_text(json.dumps({
            "profiles": {
                "solver": {"base": "su2cor", "gather_frac": 0.3},
                "scratch": {"ws_bytes": 4096},
            }
        }))
        assert sorted(load_profiles(path)) == ["scratch", "solver"]
        assert get_profile("solver").gather_frac == 0.3
        assert get_profile("scratch").ws_bytes == 4096
        assert profile_provenance("solver") == str(path)

    def test_load_profiles_toml(self, tmp_path, clean_registry):
        path = tmp_path / "mine.toml"
        path.write_text(
            "[profiles.dense]\nbase = \"mgrid\"\nn_chains = 8\n"
        )
        assert load_profiles(path) == ["dense"]
        assert get_profile("dense").n_chains == 8

    def test_unknown_base_profile_suggests(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"p": {"base": "mgird"}}))
        with pytest.raises(KeyError, match="did you mean 'mgrid'"):
            load_profiles(path)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown profile field"):
            BenchProfile.from_dict({"name": "x", "hotness": 1})


class TestWorkloadFilesAndPresets:
    def test_load_workload_json_with_embedded_profiles(
        self, tmp_path, clean_registry
    ):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({
            "name": "filed",
            "seg_instrs": 4000,
            "profiles": {"mine": {"base": "swim", "hot_frac": 0.05}},
            "threads": [["mine"], ["fpppp?seg_instrs=2500"]],
        }))
        wl = load_workload(path)
        assert wl.n_threads == 2
        assert wl.threads[0][0].profile.hot_frac == 0.05
        assert wl.threads[1][0].seg_instrs == 2500
        assert profile_provenance("mine") == str(path)

    def test_example_files_resolve(self):
        for ref in (
            "examples/workload_hetero.json",
            "examples/workload_ptrchase.json",
            "examples/workload_thrash.toml",
        ):
            wl = resolve_workload(ref)
            assert wl.n_threads >= 2

    def test_builtin_presets(self):
        assert {"hetero4", "ptrchase2", "thrash4", "stream4"} <= set(
            preset_names()
        )
        assert workload_preset("paper-rot4").n_threads == 4
        assert workload_preset("paper-swim").n_threads == 1

    def test_unknown_preset_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'hetero4'"):
            workload_preset("hetero")


class TestDidYouMeanEverywhere:
    def test_backend_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'analytic'"):
            get_backend("analytics")

    def test_profile_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'fpppp'"):
            get_profile("fppp")


class TestScaleFactor:
    def test_malformed_warns_once(self, monkeypatch):
        import repro.engine.spec as spec_mod

        monkeypatch.setenv("REPRO_SCALE", "fast")
        monkeypatch.setattr(spec_mod, "_warned_bad_scale", False)
        with pytest.warns(RuntimeWarning, match="REPRO_SCALE"):
            assert scale_factor() == 1.0
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")  # a second warning would raise
            assert scale_factor() == 1.0

    def test_floor_documented_and_applied(self, monkeypatch):
        from repro.engine.spec import SCALE_FLOOR

        monkeypatch.setenv("REPRO_SCALE", "0.000001")
        assert scale_factor() == SCALE_FLOOR


class TestCli:
    def test_workloads_lists_profiles_and_presets(self, capsys):
        from repro.cli import main

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "ptrchase" in out and "hetero4" in out
        assert "built-in scenario" in out

    def test_workloads_with_user_file(self, tmp_path, capsys,
                                      clean_registry):
        from repro.cli import main

        path = tmp_path / "mine.json"
        path.write_text(json.dumps({"zippy": {"base": "swim"}}))
        assert main(["workloads", "--profiles", str(path)]) == 0
        assert "zippy" in capsys.readouterr().out

    def test_run_workload_file_both_backends_and_cache(
        self, tmp_path, capsys, clean_registry
    ):
        from repro.cli import main

        path = tmp_path / "wl.json"
        path.write_text(json.dumps({
            "name": "filed",
            "seg_instrs": 3000,
            "default_commits": 1200,
            "default_warmup": 300,
            "profiles": {"mine": {"base": "turb3d", "iters": 32}},
            "threads": [["mine"], ["swim"]],
        }))
        for backend in ("cycle", "analytic"):
            assert main(["run", "--workload", str(path),
                         "--backend", backend]) == 0
            assert "filed" in capsys.readouterr().out
        # warm rerun: served from the content-addressed cache
        assert main(["run", "--workload", str(path)]) == 0
        first = capsys.readouterr().out
        assert main(["run", "--workload", str(path)]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_over_workload_field(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--workload", "ptrchase2",
                     "--workload-axis", "index_dist=0,4",
                     "--commits", "1200", "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_runs"] == 2
        dists = [
            pl[0]["profile"]["index_dist"]
            for run in doc["runs"]
            for pl in [run["spec"]["workload"]["threads"][0]]
        ]
        assert dists == [0, 4]

    def test_sweep_rejects_bad_axis(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--workload", "ptrchase2",
                     "--workload-axis", "index_dist"]) == 2
        assert "field=value" in capsys.readouterr().err
        assert main(["sweep", "--workload", "ptrchase2",
                     "--workload-axis", "bogus_knob=1"]) == 2
        assert "unknown profile field" in capsys.readouterr().err

    def test_run_rejects_unknown_preset(self, capsys):
        from repro.cli import main

        assert main(["run", "--workload", "heterro4"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_bench_accepts_inline_overrides(self, capsys):
        from repro.cli import main

        assert main(["bench", "ptrchase?index_dist=2"]) == 0
        assert "ptrchase" in capsys.readouterr().out

    def test_bench_unknown_suggests(self, capsys):
        from repro.cli import main

        assert main(["bench", "ptrchas"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_sweep_benches_rejects_bad_inline_override(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--benches", "swim?bogus_field=1"]) == 2
        assert "unknown profile field" in capsys.readouterr().err
        assert main(["sweep", "--benches", "swim?hot_frac"]) == 2
        assert "malformed" in capsys.readouterr().err
