"""Infinite L2 model."""

import pytest

from repro.memory.l2 import InfiniteL2


class TestInfiniteL2:
    def test_constant_latency(self):
        l2 = InfiniteL2(16)
        assert l2.access(0) == 16
        assert l2.access(100) == 116

    def test_never_misses(self):
        l2 = InfiniteL2(1)
        for t in range(50):
            assert l2.access(t) == t + 1

    def test_counts_accesses(self):
        l2 = InfiniteL2(16)
        for t in range(7):
            l2.access(t)
        assert l2.accesses == 7

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            InfiniteL2(0)
