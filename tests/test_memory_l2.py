"""Outer-level models: infinite backing, finite LRU levels, partitions."""

import pytest

from repro.memory.levels import CacheLevel, InfiniteLevel, MSHRFile


class TestInfiniteLevel:
    def test_always_hits(self):
        lvl = InfiniteLevel()
        for line in range(50):
            assert lvl.peek(line) is True

    def test_install_never_evicts_dirty(self):
        lvl = InfiniteLevel()
        assert lvl.install(7, dirty=True) is False
        lvl.touch(7)  # no-op, no crash


class TestCacheLevel:
    def test_hit_after_install(self):
        lvl = CacheLevel(1024, line_bytes=32, assoc=2)
        assert lvl.peek(5) is False
        lvl.install(5)
        assert lvl.peek(5) is True

    def test_lru_eviction_order(self):
        # one set: capacity 2 lines, assoc 2 -> n_sets == 1
        lvl = CacheLevel(64, line_bytes=32, assoc=2)
        lvl.install(1)
        lvl.install(2)
        lvl.touch(1)          # 1 becomes MRU, 2 is now LRU
        lvl.install(3)        # evicts 2
        assert lvl.peek(1) and lvl.peek(3)
        assert not lvl.peek(2)

    def test_peek_does_not_touch_lru(self):
        lvl = CacheLevel(64, line_bytes=32, assoc=2)
        lvl.install(1)
        lvl.install(2)        # MRU=2, LRU=1
        lvl.peek(1)           # must NOT promote
        lvl.install(3)        # evicts 1
        assert not lvl.peek(1)

    def test_dirty_victim_reported(self):
        lvl = CacheLevel(64, line_bytes=32, assoc=2)
        lvl.install(1, dirty=True)
        lvl.install(2)
        lvl.touch(2)
        assert lvl.install(3) is True  # evicts dirty line 1

    def test_reinstall_refreshes_in_place(self):
        lvl = CacheLevel(64, line_bytes=32, assoc=2)
        lvl.install(1)
        lvl.install(2)
        assert lvl.install(1, dirty=True) is False  # no eviction
        lvl.install(3)  # evicts 2 (1 was refreshed to MRU)
        assert lvl.peek(1) and not lvl.peek(2)

    def test_set_indexing(self):
        lvl = CacheLevel(4096, line_bytes=32, assoc=2)  # 64 sets
        lvl.install(0)
        lvl.install(64)   # same set, second way
        lvl.install(1)    # different set
        assert lvl.peek(0) and lvl.peek(64) and lvl.peek(1)

    def test_partitioned_capacity_is_private(self):
        lvl = CacheLevel(128, line_bytes=32, assoc=2, partitions=2)
        lvl.install(9, tid=0)
        assert lvl.peek(9, tid=0) is True
        assert lvl.peek(9, tid=1) is False  # other thread's slice is cold

    def test_partitions_validated(self):
        with pytest.raises(ValueError):
            CacheLevel(1024, 32, partitions=0)


class TestUnboundedMSHRs:
    def test_none_count_never_exhausts(self):
        m = MSHRFile(None)
        for i in range(1000):
            assert m.available(now=0)
            m.allocate(release_cycle=10**9)
        assert m.outstanding == 0  # unbounded file tracks nothing

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
