"""Pipeline tracer: timelines must respect pipeline-order invariants."""

from conftest import ProgramBuilder

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.isa.opclass import Unit
from repro.stats.tracing import Tracer


def traced_run(trace, cfg=None, cycles=2000):
    cfg = cfg or MachineConfig()
    proc = Processor(cfg, [[trace]], wrap=False)
    tracer = Tracer(proc)
    for _ in range(cycles):
        proc.step()
        tracer.observe()
        if proc.finished():
            break
    return proc, tracer.trace


def simple_program(n=60):
    b = ProgramBuilder()
    for i in range(n):
        b.ialu(dest=4 + (i % 4), srcs=(4 + (i % 4),))
        b.falu(dest=36 + (i % 2), srcs=(36 + (i % 2),))
    return b.trace()


class TestTimelineInvariants:
    def test_every_instruction_recorded_and_committed(self):
        tr = simple_program()
        _proc, trace = traced_run(tr)
        committed = trace.committed()
        assert len(committed) == len(tr)

    def test_stage_ordering(self):
        _proc, trace = traced_run(simple_program())
        for r in trace.committed():
            assert r.fetch_cycle <= r.issue_cycle
            assert r.issue_cycle < r.complete_cycle
            assert r.complete_cycle <= r.commit_cycle

    def test_commit_order_matches_program_order(self):
        _proc, trace = traced_run(simple_program())
        commits = [r.commit_cycle for r in trace.for_thread(0) if r.commit_cycle >= 0]
        assert commits == sorted(commits)

    def test_per_unit_issue_is_in_order(self):
        """The paper's in-order issue restriction, observed externally."""
        _proc, trace = traced_run(simple_program())
        for unit in (Unit.AP, Unit.EP):
            issues = [
                r.issue_cycle for r in trace.for_thread(0)
                if r.unit == unit and r.issue_cycle >= 0
            ]
            assert issues == sorted(issues)

    def test_ep_latency_visible(self):
        _proc, trace = traced_run(simple_program())
        for r in trace.committed():
            if r.unit == Unit.EP:
                assert r.complete_cycle - r.issue_cycle == 4
            else:
                assert r.complete_cycle - r.issue_cycle >= 1


class TestSquashRecording:
    def test_squashed_instructions_flagged(self):
        b = ProgramBuilder()
        for _ in range(20):
            b.nops(4)
            b.branch(taken=False, src=4)  # cold predictor says taken
        _proc, trace = traced_run(b.trace())
        assert trace.squashed()
        for r in trace.squashed():
            assert r.commit_cycle == -1

    def test_wrong_path_marked(self):
        b = ProgramBuilder()
        for _ in range(20):
            b.nops(4)
            b.branch(taken=False, src=4)
        _proc, trace = traced_run(b.trace())
        assert any(r.wrong_path for r in trace.records.values())


class TestFormatting:
    def test_timeline_renders(self):
        _proc, trace = traced_run(simple_program(10))
        text = trace.format_timeline(0)
        assert "IALU" in text and "FALU" in text

    def test_capacity_respected(self):
        tr = simple_program(100)
        proc = Processor(MachineConfig(), [[tr]], wrap=False)
        tracer = Tracer(proc, capacity=20)
        for _ in range(500):
            proc.step()
            tracer.observe()
            if proc.finished():
                break
        assert len(tracer.trace.records) <= 20

    def test_slip_visible_in_trace(self):
        """AP instructions issue far ahead of same-region EP instructions."""
        b = ProgramBuilder()
        for i in range(80):
            b.ialu(dest=2, srcs=(2,))
            b.load_f(dest=40 + (i % 8), base=2, addr=0x100000 + i * 32)
            b.falu(dest=36, srcs=(36, 40 + (i % 8)))
        cfg = MachineConfig(l2_latency=32, mshrs=64)
        _proc, trace = traced_run(b.trace(), cfg, cycles=5000)
        recs = trace.for_thread(0)
        # find a mid-program EP instruction and the AP instructions that
        # issued no later than it despite being much younger
        ep = [r for r in recs if r.unit == Unit.EP and r.issue_cycle > 0]
        ap = [r for r in recs if r.unit == Unit.AP and r.issue_cycle > 0]
        mid = ep[len(ep) // 2]
        ahead = [r for r in ap if r.seq > mid.seq and r.issue_cycle <= mid.issue_cycle]
        assert ahead, "decoupling should let younger AP work issue first"
