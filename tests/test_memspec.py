"""The declarative memory hierarchy (`repro.memory.spec` + facade).

Covers the PR-5 tentpole contracts:

* ``MemSpec`` identity: JSON round-trips, AUTO resolution against the
  machine scalars, geometry normalization (one characterization walk per
  latency sweep), preset/override ergonomics with did-you-mean errors.
* The composed facade reproduces the seed-era hardwired machine exactly:
  a reference implementation of the pre-refactor arithmetic is driven
  over random request streams and must agree call-for-call.
* Dirty-victim write-backs are conserved against a shadow model.
* Finite-L2 timing, thread-partitioned levels, prefetch accounting and
  the fast-forward eligibility gate for tick-driven prefetchers.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import MachineConfig
from repro.engine.spec import RunSpec
from repro.memory.hierarchy import (
    S_BLOCKED,
    S_HIT,
    S_MISS,
    S_SECONDARY,
    MemorySystem,
)
from repro.memory.spec import (
    InterconnectSpec,
    LevelSpec,
    MemSpec,
    PrefetchSpec,
    load_memspec,
    mem_preset,
)

KB = 1024


def resolved(mem: MemSpec | None = None, **scalars) -> MemSpec:
    cfg = MachineConfig(mem=mem, **scalars)
    return cfg.memory()


# ---------------------------------------------------------------- spec layer


class TestResolution:
    def test_default_spec_resolves_to_classic_scalars(self):
        ms = resolved()
        l1, l2 = ms.levels
        assert l1.capacity_bytes == 64 * KB
        assert l1.hit_latency == 1
        assert l1.mshrs == 16
        assert l1.ports == 4
        assert l2.capacity_bytes is None          # infinite L2
        assert l2.hit_latency == 16
        assert l2.mshrs is None
        assert ms.interconnect.bytes_per_cycle == 16
        assert ms.resolved

    def test_auto_tracks_overridden_scalars(self):
        ms = resolved(l2_latency=64, mshrs=32, bus_bytes_per_cycle=8)
        assert ms.levels[1].hit_latency == 64
        assert ms.levels[0].mshrs == 32
        assert ms.interconnect.bytes_per_cycle == 8

    def test_custom_spec_inherits_through_auto(self):
        mem = mem_preset("l2_finite")
        ms = resolved(mem, l2_latency=128)
        assert ms.levels[1].capacity_bytes == 1024 * KB
        assert ms.levels[1].hit_latency == 128    # AUTO -> sweep axis alive
        assert ms.memory_latency == 4 * 128       # AUTO -> 4x last level

    def test_resolve_is_idempotent(self):
        cfg = MachineConfig()
        ms = cfg.memory()
        assert ms.resolve(cfg) == ms

    def test_explicit_fields_win_over_scalars(self):
        mem = MemSpec(levels=(
            LevelSpec(name="L1", capacity_bytes=8 * KB, hit_latency=2),
            LevelSpec(name="L2"),
        ))
        ms = resolved(mem)
        assert ms.levels[0].capacity_bytes == 8 * KB
        assert ms.levels[0].hit_latency == 2


class TestValidation:
    def test_infinite_l1_rejected(self):
        with pytest.raises(ValueError, match="cannot be infinite"):
            MemSpec(levels=(LevelSpec(name="L1", capacity_bytes=None),))

    def test_associative_l1_rejected(self):
        with pytest.raises(ValueError, match="direct-mapped"):
            MemSpec(levels=(LevelSpec(name="L1", assoc=2),))

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MemSpec(levels=(LevelSpec(name="L1"), LevelSpec(name="L1")))

    def test_unknown_level_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'assoc'"):
            LevelSpec.from_dict({"name": "L2", "asoc": 2})

    def test_unknown_bus_policy_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'fifo'"):
            InterconnectSpec(policy="fifi")

    def test_unknown_prefetch_kind_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'nextline'"):
            PrefetchSpec(kind="nexline")

    def test_unresolved_spec_rejected_by_facade(self):
        with pytest.raises(ValueError, match="resolved"):
            MemorySystem(MemSpec())

    def test_fractional_set_count_fails_at_resolve(self):
        # 128 B at 8 ways x 32 B lines is half a set; CacheLevel would
        # silently round it up to a whole (256 B!) set
        mem = MemSpec(levels=(
            LevelSpec(name="L1"),
            LevelSpec(name="L2", capacity_bytes=128, assoc=8),
        ))
        with pytest.raises(ValueError, match="whole sets"):
            MachineConfig(mem=mem).memory()

    def test_cache_level_rejects_rounded_capacity(self):
        from repro.memory.levels import CacheLevel

        with pytest.raises(ValueError, match="silently rounded"):
            CacheLevel(1000, line_bytes=32, assoc=2)

    def test_unpartitionable_capacity_fails_at_resolve(self):
        # 64K across 12 threads is not a power-of-two-sets line-multiple
        # slice; must fail with one actionable message, not a traceback
        # from deep inside machine construction
        mem = MemSpec(levels=(
            LevelSpec(name="L1", shared=False), LevelSpec(name="L2"),
        ))
        with pytest.raises(ValueError, match="partitioned across 12"):
            MachineConfig(n_threads=12, mem=mem).memory()
        # a clean power-of-two split resolves fine
        assert MachineConfig(n_threads=4, mem=mem).memory().resolved


class TestIdentity:
    def test_json_round_trip(self):
        for name in ("classic", "l2_finite", "l2_partitioned", "stream",
                     "wide_bus"):
            ms = mem_preset(name)
            again = MemSpec.from_dict(json.loads(json.dumps(ms.to_dict())))
            assert again == ms
            assert again.key() == ms.key()

    def test_resolved_round_trip(self):
        ms = resolved(mem_preset("l2_finite"), l2_latency=64)
        assert MemSpec.from_dict(ms.to_dict()) == ms

    def test_geometry_is_latency_invariant(self):
        a = resolved(mem_preset("l2_finite"), l2_latency=16)
        b = resolved(mem_preset("l2_finite"), l2_latency=256,
                     bus_bytes_per_cycle=4, mshrs=64)
        assert a != b
        assert a.geometry() == b.geometry()

    def test_geometry_ignores_override_names(self):
        # override() renames the spec per axis value; a *timing-only*
        # axis must still share one characterization walk
        a = resolved(MemSpec().override("bus_bytes_per_cycle", 8))
        b = resolved(MemSpec().override("bus_bytes_per_cycle", 32))
        assert a != b
        assert a.geometry() == b.geometry()

    def test_geometry_sees_capacity(self):
        a = resolved(mem_preset("l2_finite"))
        b = resolved(mem_preset("l2_small"))
        assert a.geometry() != b.geometry()

    def test_unknown_preset_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'l2_finite'"):
            mem_preset("l2finite")

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "mem.json"
        path.write_text(json.dumps({
            "name": "filemem",
            "levels": [
                {"name": "L1"},
                {"name": "L2", "capacity_bytes": 512 * KB, "assoc": 4},
            ],
            "prefetch": {"kind": "nextline", "degree": 2},
        }))
        ms = load_memspec(path)
        assert ms.name == "filemem"
        assert ms.levels[1].assoc == 4
        assert ms.prefetch.degree == 2


class TestOverride:
    def test_flat_field(self):
        ms = MemSpec().override("prefetch_degree", 3)
        assert ms.prefetch.degree == 3
        assert "prefetch_degree=3" in ms.name

    def test_level_field(self):
        ms = mem_preset("l2_finite").override("L2.capacity_bytes", 256 * KB)
        assert ms.levels[1].capacity_bytes == 256 * KB

    def test_unknown_flat_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'prefetch_kind'"):
            MemSpec().override("prefetchkind", "stream")

    def test_unknown_level_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'L2'"):
            MemSpec().override("L22.assoc", 2)

    def test_unknown_level_lists_levels(self):
        with pytest.raises(ValueError, match="levels: L1, L2"):
            MemSpec().override("L3.assoc", 2)

    def test_unknown_level_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'capacity_bytes'"):
            MemSpec().override("L2.capacity", 1)


class TestRunSpecIntegration:
    def test_mem_round_trips_through_dict(self):
        spec = RunSpec.multiprogrammed(2, mem=mem_preset("l2_finite"))
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_mem_changes_cache_key(self):
        a = RunSpec.multiprogrammed(2)
        b = RunSpec.multiprogrammed(2, mem=mem_preset("l2_finite"))
        assert a.key() != b.key()
        assert "mem=l2_finite" in b.label()

    def test_machine_config_carries_mem(self):
        spec = RunSpec.multiprogrammed(2, mem=mem_preset("l2_finite"),
                                       l2_latency=64)
        ms = spec.machine_config().memory()
        assert ms.levels[1].capacity_bytes == 1024 * KB
        assert ms.levels[1].hit_latency == 64


# ------------------------------------------------- seed-reference differential


class _SeedReference:
    """The pre-refactor ``MemorySystem`` arithmetic, reimplemented
    standalone (dict tag store, eager bus, heap-free MSHR accounting) as
    the oracle for the composed facade's default configuration."""

    def __init__(self, l1_bytes=64 * KB, line_bytes=32, mshrs=16,
                 l2_latency=16, bus_bytes_per_cycle=16, hit_latency=1):
        self.n_sets = l1_bytes // line_bytes
        self.shift = line_bytes.bit_length() - 1
        self.tags: dict[int, int] = {}
        self.dirty: dict[int, bool] = {}
        self.pending: dict[int, int] = {}
        self.mshr_count = mshrs
        self.mshr_releases: list[int] = []
        self.l2_latency = l2_latency
        self.cycles_per_line = max(1, -(-line_bytes // bus_bytes_per_cycle))
        self.bus_free = 0
        self.hit_latency = hit_latency
        self.fills = 0
        self.writebacks = 0

    def _mshr_free(self, now):
        self.mshr_releases = [r for r in self.mshr_releases if r > now]
        return len(self.mshr_releases) < self.mshr_count

    def _bus(self, earliest):
        start = max(earliest, self.bus_free)
        self.bus_free = start + self.cycles_per_line
        return self.bus_free

    def access(self, addr, now, is_store):
        line = addr >> self.shift
        idx = line % self.n_sets
        pend = self.pending.get(idx, 0)
        if self.tags.get(idx) == line:
            if pend > now:
                if is_store:
                    self.dirty[idx] = True
                return S_SECONDARY, pend
            if is_store:
                self.dirty[idx] = True
            return S_HIT, now + self.hit_latency
        if pend > now:
            return S_BLOCKED, pend
        if not self._mshr_free(now):
            return S_BLOCKED, 0
        fill = self._bus(now + self.l2_latency)
        self.mshr_releases.append(fill)
        victim_dirty = idx in self.tags and self.dirty.get(idx, False)
        self.tags[idx] = line
        self.dirty[idx] = is_store
        self.pending[idx] = fill
        if victim_dirty:
            self._bus(now)
            self.writebacks += 1
        self.fills += 1
        return S_MISS, fill


class TestDefaultBitIdentity:
    """The composed facade with the default MemSpec must agree with the
    seed arithmetic on every call of a random request stream."""

    @pytest.mark.parametrize("draw", [0, 1, 2])
    def test_random_streams(self, draw):
        rng = random.Random(0xC0FFEE + draw)
        kw = dict(
            l1_bytes=rng.choice([4 * KB, 64 * KB]),
            mshrs=rng.choice([2, 4, 16]),
            l2_latency=rng.choice([4, 16, 100]),
            bus_bytes_per_cycle=rng.choice([8, 16, 32]),
        )
        mem = MemorySystem.classic(**kw)
        ref = _SeedReference(**kw)
        now = 0
        # a small address pool makes hits/secondaries/conflicts all common
        pool = [rng.randrange(0, 1 << 18) for _ in range(64)]
        for _ in range(3000):
            now += rng.randrange(0, 3)
            addr = rng.choice(pool)
            is_store = rng.random() < 0.3
            got = (mem.store if is_store else mem.load)(addr, now)
            want = ref.access(addr, now, is_store)
            assert got == want, (kw, addr, now, is_store)
        assert mem.fills == ref.fills
        assert mem.writebacks == ref.writebacks
        assert mem.bus.free_at == ref.bus_free


class TestWritebackConservation:
    """Property: write-backs == evictions of valid victims minus clean
    evictions (every dirty victim, and only dirty victims, go out)."""

    def test_random_stream_against_shadow(self):
        rng = random.Random(0xD1127)
        mem = MemorySystem.classic(l1_bytes=2 * KB, l2_latency=4)
        shadow: dict[int, bool] = {}   # set index -> resident line is dirty
        n_sets = mem.l1.n_sets
        valid_evictions = 0
        clean_evictions = 0
        installs = 0
        now = 0
        for _ in range(5000):
            now += 1
            addr = rng.randrange(0, 1 << 16)
            is_store = rng.random() < 0.4
            status, _when = (mem.store if is_store else mem.load)(addr, now)
            idx = (addr >> 5) % n_sets
            if status == S_MISS:
                installs += 1
                if idx in shadow:
                    valid_evictions += 1
                    if not shadow[idx]:
                        clean_evictions += 1
                shadow[idx] = is_store
            elif status in (S_HIT, S_SECONDARY) and is_store:
                shadow[idx] = True
        assert installs == mem.fills
        assert mem.writebacks == valid_evictions - clean_evictions
        assert mem.writebacks > 0           # the stream really was dirty


# ---------------------------------------------------------- finite outer level


def _finite_mem(**kw) -> MemorySystem:
    """32-byte (1-set) L1 over a 2-line finite L2, fully explicit."""
    spec = MemSpec(
        name="tiny",
        levels=(
            LevelSpec(name="L1", capacity_bytes=32, hit_latency=1,
                      mshrs=16, ports=4),
            LevelSpec(name="L2", capacity_bytes=64, assoc=2,
                      hit_latency=10, mshrs=None),
        ),
        interconnect=InterconnectSpec(bytes_per_cycle=16),
        memory_latency=100,
        **kw,
    )
    cfg = MachineConfig()
    return MemorySystem(spec.resolve(cfg), n_threads=1, line_bytes=32)


class TestFiniteL2:
    def test_l2_miss_pays_memory_latency(self):
        mem = _finite_mem()
        status, ready = mem.load(0x0, now=0)
        assert status == S_MISS
        # L2 lookup (10) + memory (100) + bus transfer (2)
        assert ready == 112
        assert mem.level_stats()["L2"] == {
            "hits": 0, "misses": 1, "writebacks": 0, "mshr_failures": 0,
        }

    def test_l2_hit_after_l1_eviction(self):
        mem = _finite_mem()
        mem.load(0x0, now=0)         # line 0 -> L1 + L2
        mem.load(0x20, now=200)      # line 1 evicts line 0 from the L1
        status, ready = mem.load(0x0, now=400)
        assert status == S_MISS      # L1 miss...
        assert ready == 400 + 10 + 2  # ...but served by the L2, no memory
        assert mem.level_stats()["L2"]["hits"] == 1

    def test_l2_lru_eviction_forgets(self):
        mem = _finite_mem()
        mem.load(0x0, now=0)         # L2 set 0 way 1   (lines 0,2 -> set 0)
        mem.load(0x40, now=200)      # line 2, same L2 set
        mem.load(0x80, now=400)      # line 4, same L2 set: evicts line 0
        status, ready = mem.load(0x0, now=600)
        assert status == S_MISS
        assert ready == 600 + 110 + 2  # back to memory
        assert mem.level_stats()["L2"]["misses"] == 4

    def test_dirty_l1_victim_lands_in_l2(self):
        mem = _finite_mem()
        mem.store(0x0, now=0)        # line 0 dirty in L1
        mem.load(0x20, now=200)      # evicts it -> write-back + L2 install
        assert mem.writebacks == 1
        status, _ready = mem.load(0x0, now=400)
        assert status == S_MISS
        assert mem.level_stats()["L2"]["hits"] == 1  # victim was cached

    def test_banked_level_serializes(self):
        spec = MemSpec(
            name="banked",
            levels=(
                LevelSpec(name="L1", capacity_bytes=64, hit_latency=1,
                          mshrs=16, ports=4),
                LevelSpec(name="L2", capacity_bytes=None, hit_latency=10,
                          mshrs=None, banks=1),
            ),
            interconnect=InterconnectSpec(bytes_per_cycle=32),
            memory_latency=100,
        )
        mem = MemorySystem(spec.resolve(MachineConfig()), line_bytes=32)
        s1, r1 = mem.load(0x000, now=0)   # L1 set 0
        s2, r2 = mem.load(0x420, now=0)   # L1 set 1, same (single) L2 bank
        assert (s1, s2) == (S_MISS, S_MISS)
        assert r2 == r1 + 1               # one access per bank per cycle

    def test_outer_mshr_exhaustion_blocks(self):
        spec = MemSpec(
            name="l2mshr",
            levels=(
                LevelSpec(name="L1", capacity_bytes=32 * KB, hit_latency=1,
                          mshrs=16, ports=4),
                LevelSpec(name="L2", capacity_bytes=64, assoc=2,
                          hit_latency=10, mshrs=1),
            ),
            interconnect=InterconnectSpec(bytes_per_cycle=16),
            memory_latency=100,
        )
        mem = MemorySystem(spec.resolve(MachineConfig()), line_bytes=32)
        assert mem.load(0x0000, now=0)[0] == S_MISS   # occupies the L2 MSHR
        status, _ = mem.load(0x1000, now=0)
        assert status == S_BLOCKED                    # L2 MSHR full
        assert mem.blocked_requests == 1
        assert mem.load(0x1000, now=200)[0] == S_MISS  # released by then


class TestPartitionedLevels:
    def test_partitioned_l1_slices_are_private(self):
        mem = MemorySystem(
            MemSpec(
                name="split-l1",
                levels=(
                    LevelSpec(name="L1", capacity_bytes=4 * KB,
                              shared=False),
                    LevelSpec(name="L2"),
                ),
            ).resolve(MachineConfig(n_threads=2)),
            n_threads=2,
        )
        assert mem.load(0x1000, now=0, tid=0)[0] == S_MISS
        # thread 1's slice is cold for the same address
        assert mem.load(0x1000, now=100, tid=1)[0] == S_MISS
        assert mem.load(0x1000, now=200, tid=0)[0] == S_HIT
        # both cold-slice fills walked to the (infinite, shared) L2
        assert mem.level_stats()["L2"]["hits"] == 2


# -------------------------------------------------------------------- prefetch


def _prefetch_mem(kind: str, degree: int = 1, **kw) -> MemorySystem:
    spec = MemSpec(
        name=f"pf-{kind}",
        prefetch=PrefetchSpec(kind=kind, degree=degree),
        **kw,
    )
    cfg = MachineConfig()
    return MemorySystem(spec.resolve(cfg), line_bytes=32)


class TestPrefetch:
    def test_nextline_covers_sequential_stream(self):
        mem = _prefetch_mem("nextline")
        assert mem.load(0x1000, now=0)[0] == S_MISS
        assert mem.prefetch_fills == 1                  # line+1 in flight
        status, ready = mem.load(0x1020, now=2)
        assert status == S_SECONDARY                    # merged into prefetch
        assert mem.prefetch_hits == 1
        # the prefetch transfer queued behind the demand fill on the bus
        assert ready > mem.hit_latency + 2

    def test_prefetched_line_hit_counts_once(self):
        mem = _prefetch_mem("nextline")
        mem.load(0x1000, now=0)
        mem.load(0x1020, now=100)   # resident by now: a prefetched HIT
        mem.load(0x1028, now=101)   # same line again: normal hit
        assert mem.prefetch_hits == 1

    def test_stream_needs_an_ascending_run(self):
        mem = _prefetch_mem("stream", degree=2)
        mem.load(0x1000, now=0)     # isolated miss: no prefetch yet
        assert mem.prefetch_fills == 0
        mem.load(0x1020, now=1)     # line+1 misses -> ascending run
        assert mem.prefetch_fills == 2                  # two lines ahead
        assert mem.load(0x1040, now=200)[0] == S_HIT    # covered

    def test_random_misses_trigger_no_stream_prefetch(self):
        mem = _prefetch_mem("stream")
        mem.load(0x1000, now=0)
        mem.load(0x9000, now=1)
        mem.load(0x4000, now=2)
        assert mem.prefetch_fills == 0

    def test_warmup_prefetch_flags_cleared_by_stats_reset(self):
        # a warm-up prefetch must not pair a measured hit with an
        # unmeasured fill (coverage would exceed 100%)
        mem = _prefetch_mem("nextline")
        mem.load(0x1000, now=0)            # prefetches the next line
        mem.reset_stats()                  # the warm-up boundary
        mem.load(0x1020, now=100)          # demand-touches that line
        assert mem.prefetch_fills == 0
        assert mem.prefetch_hits == 0

    def test_prefetch_dropped_on_pinned_set(self):
        mem = _prefetch_mem("nextline")
        mem.load(0x0, now=0)             # line 0 pins set 0 until its fill
        # line 2047 misses; its next line (2048) maps back onto pinned
        # set 0 with a different tag -> structurally refused = dropped
        mem.load(64 * KB - 32, now=1)
        assert mem.prefetch_dropped == 1

    def test_prefetch_dropped_when_mshrs_full(self):
        mem = _prefetch_mem("nextline", degree=1)
        mem.mshrs.count = 1         # the demand miss takes the only MSHR
        mem.load(0x1000, now=0)
        assert mem.prefetch_fills == 0
        assert mem.prefetch_dropped == 1

    def test_prefetch_consumes_bus_bandwidth(self):
        plain = MemorySystem.classic()
        pf = _prefetch_mem("nextline", degree=2)
        plain.load(0x1000, now=0)
        pf.load(0x1000, now=0)
        assert pf.bus.busy_cycles == 3 * plain.bus.busy_cycles

    def test_miss_triggered_prefetchers_keep_fast_forward(self):
        assert _prefetch_mem("nextline").fast_forward_safe
        assert _prefetch_mem("stream").fast_forward_safe
        assert MemorySystem.classic().fast_forward_safe


class TestFastForwardGate:
    """A tick-driven prefetcher must force the per-cycle walk."""

    def _run(self, tick_driven: bool):
        spec = RunSpec.single("su2cor", l2_latency=256, scale=1.0,
                              commits=800, warmup=200)
        proc, kw = spec.instantiate()
        if tick_driven:
            proc.state.mem.prefetcher.tick_driven = True
        proc.run(**kw)
        return proc

    def test_gate_disables_skipping(self):
        assert self._run(tick_driven=False).ff_cycles_skipped > 0
        assert self._run(tick_driven=True).ff_cycles_skipped == 0


# -------------------------------------------------------- analytic integration


class TestAnalyticHierarchy:
    def test_walk_sees_finite_l2_miss_stream(self):
        from repro.model.charwalk import characterize

        spec = RunSpec.multiprogrammed(
            2, l2_latency=64, mem=mem_preset("l2_small"),
            commits_per_thread=2000, warmup_per_thread=500, scale=1.0,
        )
        char = characterize(spec, spec.machine_config())
        assert len(char.outer_misses) == 1
        assert char.outer_misses[0] > 0          # the L2 really is finite
        assert char.outer_hits[0] > 0

    def test_characterization_shared_across_latencies(self):
        from repro.model.charwalk import character_key

        a = RunSpec.multiprogrammed(2, l2_latency=16,
                                    mem=mem_preset("l2_finite"), scale=1.0)
        b = RunSpec.multiprogrammed(2, l2_latency=256,
                                    mem=mem_preset("l2_finite"), scale=1.0,
                                    bus_bytes_per_cycle=4)
        assert character_key(a, a.machine_config()) == \
            character_key(b, b.machine_config())

    def test_analytic_models_finite_l2_not_ignores_it(self):
        classic = RunSpec.multiprogrammed(
            4, l2_latency=64, backend="analytic",
            commits_per_thread=3000, warmup_per_thread=800, scale=1.0,
        )
        finite = RunSpec.multiprogrammed(
            4, l2_latency=64, backend="analytic",
            mem=mem_preset("l2_small"),
            commits_per_thread=3000, warmup_per_thread=800, scale=1.0,
        )
        s_classic = classic.execute()
        s_finite = finite.execute()
        # a small shared L2 must cost IPC in the model, not be a no-op
        assert s_finite.ipc < s_classic.ipc * 0.9
        assert s_finite.level_stats["L2"]["misses"] > 0

    def test_analytic_sees_prefetch_traffic(self):
        spec = RunSpec.from_workload(
            __import__("repro.workloads.spec", fromlist=["workload_preset"])
            .workload_preset("stream4"),
            l2_latency=64, backend="analytic", mem=mem_preset("stream"),
            commits=2000, warmup=500, scale=1.0,
        )
        stats = spec.execute()
        assert stats.prefetch_fills > 0

    def test_auto_in_geometry_never_reaches_the_walk(self):
        # geometry() of a resolved spec must itself be fully resolved
        geo = resolved(mem_preset("l2_finite")).geometry()
        assert geo.resolved
