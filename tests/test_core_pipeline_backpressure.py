"""Structural back-pressure: every finite resource must stall dispatch
gracefully (never deadlock, never overflow)."""

from conftest import ProgramBuilder, run_program

from repro.core.config import MachineConfig
from repro.core.processor import Processor


def fp_heavy(n=300):
    b = ProgramBuilder()
    for i in range(n):
        b.falu(dest=36 + (i % 2), srcs=(36 + (i % 2),))
    return b.trace()


def store_heavy(n=120):
    b = ProgramBuilder()
    for i in range(n):
        b.falu(dest=36, srcs=(36,))
        b.store_f(base=2, data=36, addr=0x4000 + (i % 64) * 8)
    return b.trace()


class TestQueueBackpressure:
    def test_tiny_iq_still_completes(self):
        cfg = MachineConfig(iq_size=2, aq_size=2)
        _p, stats = run_program(fp_heavy(), cfg)
        assert stats.committed == 300

    def test_tiny_iq_never_overflows(self):
        cfg = MachineConfig(iq_size=2, aq_size=2)
        proc = Processor(cfg, [[fp_heavy()]], wrap=False)
        while not proc.finished():
            proc.step()
            assert len(proc.threads[0].iq) <= 2
            assert len(proc.threads[0].aq) <= 2

    def test_tiny_saq_still_completes(self):
        cfg = MachineConfig(saq_size=1)
        _p, stats = run_program(store_heavy(), cfg)
        assert stats.committed == 240
        assert stats.stores == 120

    def test_tiny_rob_still_completes(self):
        cfg = MachineConfig(rob_size=4)
        _p, stats = run_program(fp_heavy(), cfg)
        assert stats.committed == 300

    def test_rob_bound_respected(self):
        cfg = MachineConfig(rob_size=4)
        proc = Processor(cfg, [[fp_heavy(100)]], wrap=False)
        while not proc.finished():
            proc.step()
            assert len(proc.threads[0].rob) <= 4


class TestRegisterBackpressure:
    def test_minimal_register_files_still_complete(self):
        cfg = MachineConfig(ap_regs=34, ep_regs=34)
        _p, stats = run_program(fp_heavy(120), cfg)
        assert stats.committed == 120

    def test_free_lists_never_go_negative(self):
        cfg = MachineConfig(ap_regs=34, ep_regs=34)
        proc = Processor(cfg, [[store_heavy(60)]], wrap=False)
        while not proc.finished():
            proc.step()
            t = proc.threads[0]
            assert len(t.rename.free_ap) >= 0
            assert len(t.rename.free_ep) >= 0
        proc.check_invariants()


class TestWidthLimits:
    def test_dispatch_width_caps_throughput(self):
        b = ProgramBuilder()
        b.nops(1200)
        tr = b.trace()
        _p, s_wide = run_program(tr, MachineConfig(dispatch_width=8))
        _p, s_narrow = run_program(tr, MachineConfig(dispatch_width=2))
        assert s_narrow.ipc <= 2.05
        assert s_wide.ipc > s_narrow.ipc

    def test_commit_width_caps_throughput(self):
        b = ProgramBuilder()
        b.nops(1200)
        _p, s = run_program(b.trace(), MachineConfig(commit_width=1))
        assert s.ipc <= 1.05

    def test_fetch_buffer_bound(self):
        cfg = MachineConfig(fetch_buffer=4)
        proc = Processor(cfg, [[fp_heavy(100)]], wrap=False)
        while not proc.finished():
            proc.step()
            assert len(proc.threads[0].fetch_buf) <= 4


class TestIssueSlotSharing:
    def test_one_thread_cannot_exceed_unit_width(self):
        b = ProgramBuilder()
        b.nops(2000)  # independent AP ops
        _p, stats = run_program(b.trace(), MachineConfig(ap_width=4))
        assert stats.ipc <= 4.05

    def test_narrower_ap_hurts_ap_bound_code(self):
        b = ProgramBuilder()
        b.nops(1500)
        _p, s4 = run_program(b.trace(), MachineConfig())
        _p, s2 = run_program(b.trace(), MachineConfig(ap_width=2))
        assert s2.ipc < s4.ipc
