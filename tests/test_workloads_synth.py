"""Synthetic trace generator: structure, mix, determinism, calibration."""

import pytest

from repro.isa.opclass import OpClass
from repro.workloads.profiles import BENCH_ORDER, get_profile
from repro.workloads.synth import (
    FOLD_WINDOW,
    GATHER_BASE,
    HOT_BASE,
    INDEX_BASE,
    STORE_BASE,
    KernelSynthesizer,
    fold,
    synthesize,
)


class TestFold:
    def test_stays_in_window_sets(self):
        base = 0x10000000
        for off in (0, 8, 4095, 4096, 100_000, 10_000_000):
            addr = fold(base, off)
            assert (addr - base) % (64 * 1024) < FOLD_WINDOW or \
                ((addr % (64 * 1024)) - (base % (64 * 1024))) % (64 * 1024) < FOLD_WINDOW

    def test_tag_changes_every_window(self):
        base = 0x10000000
        a = fold(base, 0)
        b = fold(base, FOLD_WINDOW)
        assert a != b
        assert a % FOLD_WINDOW == b % FOLD_WINDOW  # same set offset

    def test_stays_in_region_address_space(self):
        base = 0x10000000
        for off in range(0, 32 * 1024 * 1024, 999_936):
            assert fold(base, off) >> 26 == base >> 26


class TestDeterminism:
    def test_same_seed_same_trace(self):
        p = get_profile("tomcatv")
        a = synthesize(p, 2000, seed=3)
        b = synthesize(p, 2000, seed=3)
        assert len(a) == len(b)
        assert all(
            x.pc == y.pc and x.op == y.op and x.addr == y.addr
            for x, y in zip(a, b)
        )

    def test_different_seed_different_addresses(self):
        p = get_profile("tomcatv")
        a = synthesize(p, 2000, seed=0)
        b = synthesize(p, 2000, seed=1)
        assert any(x.addr != y.addr for x, y in zip(a, b))


class TestStructure:
    @pytest.mark.parametrize("bench", BENCH_ORDER)
    def test_length_at_least_requested(self, bench):
        tr = synthesize(get_profile(bench), 1500)
        assert 1500 <= len(tr) <= 1500 + 600

    @pytest.mark.parametrize("bench", BENCH_ORDER)
    def test_contains_loop_branches(self, bench):
        tr = synthesize(get_profile(bench), 2000)
        branches = [i for i in tr if i.op == OpClass.BRANCH]
        assert branches, "loop body must end in a branch"
        taken = sum(1 for b in branches if b.taken)
        assert taken / len(branches) > 0.8  # loop branches mostly taken

    def test_loop_pcs_repeat(self):
        tr = synthesize(get_profile("tomcatv"), 2000)
        pcs = [i.pc for i in tr]
        assert len(set(pcs)) < len(pcs) / 3  # iterations share static code

    def test_gather_benchmarks_have_int_loads(self):
        for bench in ("su2cor", "wave5", "turb3d", "fpppp"):
            tr = synthesize(get_profile(bench), 2000)
            assert any(i.op == OpClass.LOAD_I for i in tr), bench

    def test_non_gather_benchmarks_have_no_int_loads(self):
        for bench in ("tomcatv", "swim", "mgrid", "applu"):
            tr = synthesize(get_profile(bench), 2000)
            assert not any(i.op == OpClass.LOAD_I for i in tr), bench

    def test_fpppp_has_lod_events(self):
        tr = synthesize(get_profile("fpppp"), 3000)
        assert any(i.op == OpClass.FTOI for i in tr)

    def test_good_decouplers_have_no_lod_events(self):
        for bench in ("tomcatv", "swim", "mgrid"):
            tr = synthesize(get_profile(bench), 3000)
            assert not any(i.op == OpClass.FTOI for i in tr), bench

    def test_memory_ops_have_addresses(self):
        tr = synthesize(get_profile("hydro2d"), 2000)
        for i in tr:
            if i.is_load or i.is_store:
                assert i.addr > 0

    def test_addresses_eight_byte_aligned(self):
        tr = synthesize(get_profile("su2cor"), 2000)
        for i in tr:
            if i.is_load or i.is_store:
                assert i.addr % 8 == 0


class TestRegionLayout:
    def test_regions_in_disjoint_address_spaces(self):
        bases = [GATHER_BASE, INDEX_BASE, STORE_BASE, HOT_BASE]
        assert len({b >> 26 for b in bases}) == len(bases)

    def test_hot_loads_land_in_hot_zone(self):
        tr = synthesize(get_profile("mgrid"), 3000)
        hot = [i for i in tr if i.op == OpClass.LOAD_F and i.addr >> 26 == HOT_BASE >> 26]
        assert hot
        for i in hot:
            assert 52 * 1024 <= i.addr % (64 * 1024) < 64 * 1024

    def test_store_addresses_in_store_space(self):
        tr = synthesize(get_profile("mgrid"), 3000)
        for i in tr:
            if i.op == OpClass.STORE_F:
                assert i.addr >> 26 == STORE_BASE >> 26


class TestMixCalibration:
    def test_ap_fraction_near_paper_balance(self):
        """The AP-side share across the suite sets the ~6.8 effective peak
        (paper section 3.1: a 15% imbalance loss over 8-wide issue)."""
        fracs = []
        for bench in BENCH_ORDER:
            st = synthesize(get_profile(bench), 4000).stats()
            fracs.append(st.ap_fraction)
        avg = sum(fracs) / len(fracs)
        assert 0.50 < avg < 0.68

    def test_load_fraction_realistic(self):
        for bench in BENCH_ORDER:
            st = synthesize(get_profile(bench), 4000).stats()
            loads = st.fraction(OpClass.LOAD_F, OpClass.LOAD_I)
            assert 0.15 < loads < 0.45, bench

    def test_fp_fraction_realistic(self):
        for bench in BENCH_ORDER:
            st = synthesize(get_profile(bench), 4000).stats()
            fp = st.fraction(OpClass.FALU, OpClass.FTOI)
            assert 0.25 < fp < 0.60, bench

    def test_store_fraction_realistic(self):
        for bench in BENCH_ORDER:
            st = synthesize(get_profile(bench), 4000).stats()
            stores = st.fraction(OpClass.STORE_F, OpClass.STORE_I)
            assert 0.02 < stores < 0.18, bench


class TestPlanning:
    def test_gather_minimum_one_slot(self):
        # a nonzero gather fraction must survive integer rounding
        k = KernelSynthesizer(get_profile("su2cor"))
        assert k.n_gather >= 1

    def test_roles_partition_loads(self):
        for bench in BENCH_ORDER:
            k = KernelSynthesizer(get_profile(bench))
            assert len(k.load_slots) == k.n_loads
            by_role = {"hot": 0, "stream": 0, "gather": 0}
            for s in k.load_slots:
                by_role[s.role] += 1
            assert by_role["gather"] == k.n_gather
            assert by_role["hot"] == k.n_hot

    def test_stream_slots_have_distinct_windows(self):
        k = KernelSynthesizer(get_profile("tomcatv"))
        windows = [s.window for s in k.load_slots if s.role == "stream"]
        assert len(set(windows)) == len(windows)
