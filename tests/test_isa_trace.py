"""Trace container and instruction-mix statistics."""

from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.isa.trace import Trace


def _trace():
    insts = [
        StaticInst(0, OpClass.IALU, dest=4, srcs=(4,)),
        StaticInst(4, OpClass.FALU, dest=36, srcs=(36,)),
        StaticInst(8, OpClass.LOAD_F, dest=40, srcs=(2,), addr=64),
        StaticInst(12, OpClass.STORE_F, srcs=(2, 36), addr=128),
        StaticInst(16, OpClass.BRANCH, srcs=(4,), taken=True, target=0),
    ]
    return Trace(insts, name="mix")


class TestTrace:
    def test_len_and_indexing(self):
        tr = _trace()
        assert len(tr) == 5
        assert tr[0].op == OpClass.IALU
        assert tr[4].is_branch

    def test_iteration(self):
        assert [i.op for i in _trace()] == [
            OpClass.IALU, OpClass.FALU, OpClass.LOAD_F,
            OpClass.STORE_F, OpClass.BRANCH,
        ]

    def test_concat(self):
        a, b = _trace(), _trace()
        c = a.concat(b)
        assert len(c) == 10
        assert c.name == "mix+mix"

    def test_concat_custom_name(self):
        assert _trace().concat(_trace(), name="x").name == "x"


class TestTraceStats:
    def test_counts(self):
        st = _trace().stats()
        assert st.total == 5
        assert st.by_op[OpClass.IALU] == 1
        assert st.by_op[OpClass.BRANCH] == 1

    def test_fraction(self):
        st = _trace().stats()
        assert st.fraction(OpClass.LOAD_F) == 0.2
        assert st.fraction(OpClass.LOAD_F, OpClass.STORE_F) == 0.4

    def test_ap_fraction(self):
        # AP-side: IALU, LOAD_F, STORE_F, BRANCH = 4 of 5
        assert abs(_trace().stats().ap_fraction - 0.8) < 1e-9

    def test_empty_trace_stats(self):
        st = Trace([], name="empty").stats()
        assert st.total == 0
        assert st.ap_fraction == 0.0
        assert st.fraction(OpClass.IALU) == 0.0
