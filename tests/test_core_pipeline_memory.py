"""Pipeline <-> memory-system interactions: misses, MSHRs, ports, bus."""

from conftest import ProgramBuilder, run_program

from repro.core.config import MachineConfig


def streaming_trace(n_lines=150, consumers=True):
    b = ProgramBuilder()
    for i in range(n_lines):
        b.ialu(dest=2, srcs=(2,))
        b.load_f(dest=40 + (i % 8), base=2, addr=0x500000 + i * 32)
        if consumers:
            b.falu(dest=36, srcs=(36, 40 + (i % 8)))
    return b.trace()


class TestMissBehaviour:
    def test_all_distinct_lines_miss(self):
        _p, stats = run_program(streaming_trace())
        assert stats.load_misses_fp == 150
        assert stats.load_merged_fp == 0

    def test_line_fills_match_misses(self):
        proc, stats = run_program(streaming_trace())
        assert stats.line_fills == stats.load_misses_fp

    def test_higher_latency_means_fewer_ipc_without_decoupling(self):
        tr = streaming_trace()
        ipcs = {}
        for lat in (1, 64):
            cfg = MachineConfig(l2_latency=lat, decoupled=False)
            _p, s = run_program(tr, cfg)
            ipcs[lat] = s.ipc
        assert ipcs[64] < ipcs[1]


class TestMSHRLimit:
    def test_few_mshrs_throttle_mlp(self):
        tr = streaming_trace(200, consumers=False)
        cfg_many = MachineConfig(l2_latency=64, mshrs=32)
        cfg_few = MachineConfig(l2_latency=64, mshrs=2)
        _p, s_many = run_program(tr, cfg_many)
        _p, s_few = run_program(tr, cfg_few)
        assert s_many.ipc > 1.5 * s_few.ipc

    def test_mshr_failures_reported(self):
        tr = streaming_trace(200, consumers=False)
        cfg = MachineConfig(l2_latency=64, mshrs=2)
        _p, stats = run_program(tr, cfg)
        assert stats.mshr_alloc_failures > 0


class TestPorts:
    def test_port_limit_caps_load_rate(self):
        """More loads per cycle than ports -> structural serialisation."""
        b = ProgramBuilder()
        for i in range(400):
            # 8-independent loads per 'cycle group', same warm line
            b.load_f(dest=40 + (i % 8), base=2, addr=0x2000)
        tr = b.trace()
        _p, s4 = run_program(tr, MachineConfig(l1_ports=4))
        _p, s1 = run_program(tr, MachineConfig(l1_ports=1))
        assert s4.ipc > 2 * s1.ipc


class TestBusAccounting:
    def test_bus_utilization_grows_with_traffic(self):
        light = streaming_trace(30)
        heavy = streaming_trace(300)
        _p, s_light = run_program(light)
        _p, s_heavy = run_program(heavy)
        assert s_heavy.bus_utilization >= s_light.bus_utilization

    def test_writebacks_counted(self):
        b = ProgramBuilder()
        # dirty a line, wait until the write drains, then evict it
        b.falu(dest=36, srcs=(36,))
        b.store_f(base=2, data=36, addr=0x600000)
        b.nops(60)  # let the store commit and perform its write
        for i in range(4):
            b.load_f(dest=40, base=2, addr=0x600000 + (i + 1) * 64 * 1024)
        b.nops(40)
        proc, stats = run_program(b.trace())
        assert stats.writebacks >= 1


class TestPerceivedLatencyMetric:
    def test_hits_not_counted(self):
        b = ProgramBuilder()
        b.load_f(dest=40, base=2, addr=0x2000)  # cold miss warms the line
        b.nops(60)
        for _ in range(50):
            b.load_f(dest=41, base=2, addr=0x2000)
            b.falu(dest=36, srcs=(36, 41))
        _p, stats = run_program(b.trace())
        # consumers of hits contribute nothing; only the cold miss counts
        assert stats.load_misses_fp == 1
        assert stats.perceived_fp_latency < 25

    def test_immediate_consumer_perceives_miss(self):
        b = ProgramBuilder()
        for i in range(60):
            b.load_f(dest=40, base=2, addr=0x700000 + i * 32)
            b.falu(dest=36, srcs=(36, 40))  # right behind the load
        cfg = MachineConfig(l2_latency=64, decoupled=False, mshrs=64)
        _p, stats = run_program(b.trace(), cfg)
        # non-decoupled, consumer adjacent: perceives most of the ~66 cycles
        assert stats.perceived_fp_latency > 30

    def test_distant_consumer_perceives_little(self):
        b = ProgramBuilder()
        for i in range(60):
            b.load_f(dest=40 + (i % 4), base=2, addr=0x700000 + i * 32)
            b.nops(12)  # static scheduling distance
            b.falu(dest=36, srcs=(36, 40 + (i % 4)))
        cfg = MachineConfig(l2_latency=16, decoupled=False)
        _p, stats = run_program(b.trace(), cfg)
        assert stats.perceived_fp_latency < 16
