"""Branch prediction, wrong-path execution and squash recovery."""

from conftest import ProgramBuilder, run_program

from repro.core.config import MachineConfig


def mispredicting_program(n_blocks: int = 30):
    """Alternating-outcome branches defeat the 2-bit counters."""
    b = ProgramBuilder()
    for i in range(n_blocks):
        b.nops(6)
        b.branch(taken=False, src=4)   # init counter is weakly-taken
    return b.trace()


class TestPrediction:
    def test_well_predicted_loop_has_few_mispredicts(self, builder):
        for _ in range(40):
            builder.nops(5)
            builder.branch(taken=True, src=4, target=0x1000)
        _p, stats = run_program(builder.trace())
        assert stats.mispredict_rate < 0.1

    def test_cold_not_taken_branches_mispredict(self):
        _p, stats = run_program(mispredicting_program())
        assert stats.branch_mispredicts >= 1
        assert stats.squashes >= 1


class TestRecovery:
    def test_commits_exactly_the_trace(self):
        """Wrong-path instructions must never commit."""
        tr = mispredicting_program(25)
        _p, stats = run_program(tr)
        assert stats.committed == len(tr)

    def test_wrong_path_instructions_fetched_and_squashed(self):
        _p, stats = run_program(mispredicting_program(25))
        assert stats.fetched_wrong_path > 0
        assert stats.squashed_instructions > 0

    def test_state_consistent_after_squashes(self):
        tr = mispredicting_program(30)
        cfg = MachineConfig()
        from repro.core.processor import Processor
        proc = Processor(cfg, [[tr]])
        target = len(tr)
        while proc.total_committed < target:
            proc.step()
            if proc.cycle % 7 == 0:
                proc.check_invariants()
        proc.check_invariants()

    def test_rename_free_lists_recover_after_squash(self):
        tr = mispredicting_program(40)
        from repro.core.processor import Processor
        proc = Processor(MachineConfig(), [[tr]])
        while proc.total_committed < len(tr):
            proc.step()
        # drain in-flight zombies
        for _ in range(300):
            proc.step()
        t = proc.threads[0]
        free = len(t.rename.free_ap) + len(t.rename.free_ep)
        in_flight = len(t.rob)
        # all non-architected registers eventually return
        assert free + in_flight * 1 >= (64 - 32) + (96 - 32) - len(t.rob)

    def test_branch_limit_respected(self):
        """Dispatch stalls at 4 unresolved branches (paper Figure 2)."""
        b = ProgramBuilder()
        for _ in range(60):
            b.branch(taken=True, src=4, target=0x1000)
        from repro.core.processor import Processor
        proc = Processor(MachineConfig(), [[b.trace()]])
        max_seen = 0
        while proc.total_committed < 60:
            proc.step()
            max_seen = max(max_seen, proc.threads[0].unresolved_branches)
        assert max_seen <= 4

    def test_wrong_path_loads_pollute_but_do_not_count(self):
        _p, stats = run_program(mispredicting_program(30))
        # wrong-path loads may fetch lines, but the measured load counters
        # only reflect the 0 right-path loads in this program
        assert stats.loads_fp == 0
        assert stats.loads_int == 0


class TestTakenBranchFetchBreak:
    def test_taken_branches_limit_fetch_bandwidth(self):
        """Predicted-taken branches end the fetch group, throttling IPC."""
        dense = ProgramBuilder()
        for _ in range(200):
            dense.ialu()
            dense.branch(taken=True, src=4, target=0x1000)
        sparse = ProgramBuilder()
        for _ in range(200):
            sparse.nops(7)
            sparse.branch(taken=True, src=4, target=0x1000)
        _p, s_dense = run_program(dense.trace())
        _p, s_sparse = run_program(sparse.trace())
        # dense: ~2 instructions per fetch group; sparse: 8
        assert s_sparse.ipc > 1.5 * s_dense.ipc
