"""Differential tests: event-horizon fast-forward vs per-cycle stepping.

The staged kernel's fast-forward must be *bit-identical* to the plain
cycle-by-cycle walk — same cycle counts, same issue-slot attribution, same
perceived-latency stalls, same refusal counters, same everything
``SimStats.comparable_dict()`` can see (only the scheduler's own
``ff_jumps``/``ff_cycles_skipped`` diagnostics may differ between modes).
These tests drive the Figure-3 grid plus randomized full-idle and
partial-idle configurations through both stepping modes in chunks, calling
``check_invariants()`` between chunks, and assert exact equality of the
comparable statistics dictionaries.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import MachineConfig, paper_config
from repro.core.processor import Processor, SimulationError
from repro.core.stages import (
    DecoupledIssueStage,
    UnifiedIssueStage,
    build_stages,
)
from repro.engine.spec import RunSpec
from repro.workloads.multiprogram import single_program


def run_checked(spec: RunSpec, fast_forward: bool, slices: int = 6):
    """Execute a spec in commit-budget slices, checking structural
    invariants between slices; returns ``(proc, final_stats)``."""
    proc, kw = spec.instantiate()
    total = kw["max_commits"]
    warmup = kw["warmup_commits"]
    per_slice = max(1, total // slices)
    stats = None
    first = True
    while True:
        done = stats.committed if stats is not None else 0
        remaining = total - done
        if remaining <= 0:
            break
        stats = proc.run(
            max_commits=min(per_slice, remaining),
            warmup_commits=warmup if first else 0,
            max_cycles=kw["max_cycles"],
            fast_forward=fast_forward,
        )
        first = False
        proc.check_invariants()
    return proc, stats


def assert_differential(spec: RunSpec) -> Processor:
    """Run ``spec`` both ways and assert bit-identical statistics."""
    proc_ff, stats_ff = run_checked(spec, fast_forward=True)
    proc_step, stats_step = run_checked(spec, fast_forward=False)
    assert proc_step.ff_cycles_skipped == 0
    d_ff, d_step = stats_ff.comparable_dict(), stats_step.comparable_dict()
    diff = {
        k: (d_ff[k], d_step[k]) for k in d_ff if d_ff[k] != d_step[k]
    }
    assert not diff, f"fast-forward diverged from stepping on {spec.label()}: {diff}"
    assert proc_ff.cycle == proc_step.cycle
    return proc_ff


# Small budgets: the differential property holds cycle-for-cycle, so short
# runs exercise it as strictly as long ones while keeping tier-1 fast.
_BUDGET = dict(commits_per_thread=1200, warmup_per_thread=400, scale=1.0,
               seg_instrs=4000)


class TestFigure3Grid:
    """The paper's Figure-3 grid: 1-6 threads, decoupled, L2 = 16."""

    @pytest.mark.parametrize("n_threads", [1, 2, 3, 4, 5, 6])
    def test_bit_identical(self, n_threads):
        assert_differential(
            RunSpec.multiprogrammed(n_threads, l2_latency=16, **_BUDGET)
        )


class TestRandomizedConfigs:
    """Two seeded-random machine configurations (the issue's satellite)."""

    @pytest.mark.parametrize("draw", [0, 1])
    def test_bit_identical(self, draw):
        rng = random.Random(0x20260729 + draw)
        spec = RunSpec.multiprogrammed(
            rng.choice([1, 2, 3]),
            l2_latency=rng.choice([32, 64, 128, 256]),
            decoupled=rng.random() < 0.5,
            seed=rng.randrange(100),
            commits_per_thread=1000,
            warmup_per_thread=300,
            scale=1.0,
            seg_instrs=4000,
            iq_size=rng.choice([16, 48, 96]),
            mshrs=rng.choice([4, 16, 32]),
            fetch_threads=rng.choice([1, 2]),
        )
        assert_differential(spec)


class TestIdleHeavyWorkloads:
    """Where the fast-forward actually earns its keep: long-latency
    machines that idle most cycles must still match exactly."""

    def test_fig1_long_latency_single(self):
        proc = assert_differential(
            RunSpec.single("su2cor", l2_latency=256, scale=1.0,
                           commits=4000, warmup=1000)
        )
        assert proc.ff_cycles_skipped > 0  # the windows really were taken

    def test_non_decoupled_long_latency(self):
        proc = assert_differential(
            RunSpec.multiprogrammed(2, l2_latency=128, decoupled=False,
                                    commits_per_thread=1500,
                                    warmup_per_thread=300,
                                    scale=1.0, seg_instrs=4000)
        )
        assert proc.ff_cycles_skipped > 0


class TestPrefetcherConfigs:
    """Miss-triggered prefetchers mutate MSHR/bus state only inside
    demand accesses, so fast-forward must stay bit-identical with them
    enabled — on both the classic and a finite-L2 hierarchy."""

    @pytest.mark.parametrize("preset", ["nextline", "stream"])
    def test_bit_identical_with_prefetch(self, preset):
        from repro.memory.spec import mem_preset

        proc = assert_differential(
            RunSpec.single("su2cor", l2_latency=128, scale=1.0,
                           commits=3000, warmup=800,
                           mem=mem_preset(preset))
        )
        assert proc.ff_cycles_skipped > 0          # windows still taken
        assert proc.mem.prefetch_fills > 0         # prefetcher really ran

    def test_bit_identical_finite_l2(self):
        from repro.memory.spec import mem_preset

        assert_differential(
            RunSpec.multiprogrammed(2, l2_latency=64,
                                    mem=mem_preset("l2_small"),
                                    commits_per_thread=1200,
                                    warmup_per_thread=300,
                                    scale=1.0, seg_instrs=4000)
        )


class TestPartialIdleWindows:
    """The event-horizon tentpole: jumps must fire (and stay
    bit-identical) in windows where some stage is *not* operand-blocked —
    issue heads retrying against exhausted MSHR files, store heads
    retrying against pinned L1 sets — which the old all-quiescent
    protocol walked cycle by cycle."""

    def test_mshr_starved_threads_skip(self):
        """With 2 MSHRs and 4 memory-hungry threads, most stall windows
        contain a structurally refused load head; the horizon must still
        fire there and the refusal counters must match the walk's."""
        spec = RunSpec.multiprogrammed(
            4, l2_latency=128, mshrs=2, commits_per_thread=900,
            warmup_per_thread=200, scale=1.0, seg_instrs=4000,
        )
        proc = assert_differential(spec)
        assert proc.ff_cycles_skipped > 0
        assert proc.stats.blocked_requests > 0  # refusals really happened

    def test_store_drain_refusal_skip(self):
        """Same property on the unified machine, where the store drain's
        retries against a long-latency hierarchy dominate."""
        spec = RunSpec.multiprogrammed(
            2, l2_latency=256, decoupled=False, mshrs=4,
            commits_per_thread=900, warmup_per_thread=200,
            scale=1.0, seg_instrs=4000,
        )
        proc = assert_differential(spec)
        assert proc.ff_cycles_skipped > 0


class TestRandomizedPartialIdle:
    """Seeded-random partial-idle scenarios over exotic hierarchies: a
    finite banked L2, a stream prefetcher, split per-thread L1 slices and
    mixed decoupled/unified machines (run in CI also under
    ``REPRO_GENERIC_MEM=1`` and without numpy — the fallback-paths job)."""

    @pytest.mark.parametrize("draw", [0, 1, 2, 3])
    def test_bit_identical(self, draw):
        from repro.memory.spec import mem_preset

        rng = random.Random(0x20260807 + draw)
        mem = [
            mem_preset("l2_small").override("L2.banks", 2),
            mem_preset("classic").override("L1.shared", False),
            mem_preset("stream"),
            mem_preset("l2_small").override("prefetch_kind", "nextline"),
        ][draw]
        spec = RunSpec.multiprogrammed(
            rng.choice([2, 3, 4]),
            l2_latency=rng.choice([64, 128, 256]),
            decoupled=rng.random() < 0.5,
            mshrs=rng.choice([2, 4]),
            seed=rng.randrange(100),
            mem=mem,
            commits_per_thread=800,
            warmup_per_thread=200,
            scale=1.0,
            seg_instrs=4000,
        )
        proc = assert_differential(spec)
        assert proc.ff_cycles_skipped > 0


class TestDeadlockEquivalence:
    """The deadlock horizon must fire at the same cycle, with the same
    statistics, whether reached by stepping or by a fast-forward jump."""

    def _machine(self):
        cfg = paper_config(1, decoupled=True, l2_latency=500,
                           deadlock_cycles=60)
        playlists = single_program("tomcatv", n_instrs=2000, seed=0)
        return Processor(cfg, playlists, seed=0)

    def test_same_cycle_and_stats(self):
        outcomes = []
        skipped = []
        for ff in (True, False):
            proc = self._machine()
            with pytest.raises(SimulationError) as exc:
                proc.run(max_commits=2000, max_cycles=1_000_000,
                         fast_forward=ff)
            outcomes.append(
                (proc.cycle, proc.stats.comparable_dict(), str(exc.value))
            )
            skipped.append(proc.ff_cycles_skipped)
        assert outcomes[0] == outcomes[1]
        # the jump really crossed part of the no-commit window — i.e. the
        # watchdog tripped at the same cycle *because* skipped cycles
        # count toward the threshold, not because no jump happened
        assert skipped[0] > 0
        assert skipped[1] == 0

    def test_structural_deadlock_same_cycle(self):
        """A machine wedged on *structural* refusals (every MSHR held by
        fills that outlive the deadlock horizon) must trip the watchdog at
        the same cycle with fast-forward on and off — the partial-idle
        jump may never leap over the threshold."""
        from repro.workloads.multiprogram import multiprogram

        cfg = paper_config(2, decoupled=True, l2_latency=2000, mshrs=2,
                           deadlock_cycles=80)
        outcomes = []
        for ff in (True, False):
            proc = Processor(
                cfg, multiprogram(2, seg_instrs=2000, seed=0,
                                  names=["su2cor", "tomcatv"]),
                seed=0,
            )
            with pytest.raises(SimulationError) as exc:
                proc.run(max_commits=4000, max_cycles=1_000_000,
                         fast_forward=ff)
            outcomes.append(
                (proc.cycle, proc.stats.comparable_dict(), str(exc.value))
            )
        assert outcomes[0] == outcomes[1]


class TestFiniteProgramDrain:
    """Finite (non-wrapping) runs must drain to the same final state."""

    def test_finished_identical(self):
        from repro.isa.instruction import StaticInst
        from repro.isa.opclass import OpClass
        from repro.isa.trace import Trace

        insts = []
        pc = 0x1000
        for i in range(40):
            insts.append(StaticInst(pc, OpClass.LOAD_F, dest=40 + (i % 4),
                                    srcs=(2,), addr=0x2000 + 64 * i))
            insts.append(StaticInst(pc + 4, OpClass.FALU, dest=36,
                                    srcs=(36, 40 + (i % 4))))
            pc += 8
        tr = Trace(insts, name="ff-drain")
        results = []
        for ff in (True, False):
            cfg = MachineConfig(l2_latency=200)
            proc = Processor(cfg, [[tr]], wrap=False)
            stats = proc.run(max_cycles=50_000, fast_forward=ff)
            assert proc.finished()
            results.append(stats.comparable_dict())
        assert results[0] == results[1]


class TestStagedKernelComposition:
    """The stage list is composed from the config, not branched at tick."""

    def test_decoupled_stage_list(self):
        stages = build_stages(MachineConfig(decoupled=True))
        assert any(isinstance(s, DecoupledIssueStage) for s in stages)
        assert not any(isinstance(s, UnifiedIssueStage) for s in stages)

    def test_unified_stage_list(self):
        stages = build_stages(MachineConfig(decoupled=False))
        assert any(isinstance(s, UnifiedIssueStage) for s in stages)
        assert not any(isinstance(s, DecoupledIssueStage) for s in stages)

    def test_stage_order(self):
        names = [s.name for s in build_stages(MachineConfig())]
        assert names == [
            "writeback", "commit", "issue/decoupled", "store-drain",
            "dispatch", "fetch",
        ]

    def test_deadlock_cycles_from_config(self):
        cfg = MachineConfig(deadlock_cycles=123)
        proc = Processor(cfg, single_program("tomcatv", n_instrs=1000, seed=0))
        assert proc.deadlock_cycles == 123
        proc.deadlock_cycles = 456  # per-instance override still allowed
        assert proc.state.deadlock_cycles == 456

    def test_deadlock_cycles_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(deadlock_cycles=0)

    def test_finished_ignores_queues_of_other_mode(self):
        """finished() must only inspect the queues the configured mode
        actually uses (satellite fix: it used to touch all of them)."""
        from repro.isa.instruction import DynInst, StaticInst
        from repro.isa.opclass import OpClass
        from repro.isa.trace import Trace

        tr = Trace([StaticInst(0x1000, OpClass.IALU, dest=4, srcs=(4,))],
                   name="one")
        cfg = MachineConfig(decoupled=False)
        proc = Processor(cfg, [[tr]], wrap=False)
        proc.run(max_cycles=1000)
        assert proc.finished()
        # junk in the decoupled-mode queues is invisible to a unified machine
        ghost = DynInst(tr[0], 0, 999, False)
        proc.threads[0].aq.push(ghost)
        proc.threads[0].iq.push(ghost)
        assert proc.finished()
