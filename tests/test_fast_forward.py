"""Differential tests: idle-cycle fast-forward vs per-cycle stepping.

The staged kernel's fast-forward must be *bit-identical* to the plain
cycle-by-cycle walk — same cycle counts, same issue-slot attribution, same
perceived-latency stalls, same everything ``SimStats.to_dict()`` can see.
These tests drive the Figure-3 grid plus randomized configurations through
both stepping modes in chunks, calling ``check_invariants()`` between
chunks, and assert exact equality of the full statistics dictionaries.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import MachineConfig, paper_config
from repro.core.processor import Processor, SimulationError
from repro.core.stages import (
    DecoupledIssueStage,
    UnifiedIssueStage,
    build_stages,
)
from repro.engine.spec import RunSpec
from repro.workloads.multiprogram import single_program


def run_checked(spec: RunSpec, fast_forward: bool, slices: int = 6):
    """Execute a spec in commit-budget slices, checking structural
    invariants between slices; returns ``(proc, final_stats)``."""
    proc, kw = spec.instantiate()
    total = kw["max_commits"]
    warmup = kw["warmup_commits"]
    per_slice = max(1, total // slices)
    stats = None
    first = True
    while True:
        done = stats.committed if stats is not None else 0
        remaining = total - done
        if remaining <= 0:
            break
        stats = proc.run(
            max_commits=min(per_slice, remaining),
            warmup_commits=warmup if first else 0,
            max_cycles=kw["max_cycles"],
            fast_forward=fast_forward,
        )
        first = False
        proc.check_invariants()
    return proc, stats


def assert_differential(spec: RunSpec) -> Processor:
    """Run ``spec`` both ways and assert bit-identical statistics."""
    proc_ff, stats_ff = run_checked(spec, fast_forward=True)
    proc_step, stats_step = run_checked(spec, fast_forward=False)
    assert proc_step.ff_cycles_skipped == 0
    d_ff, d_step = stats_ff.to_dict(), stats_step.to_dict()
    diff = {
        k: (d_ff[k], d_step[k]) for k in d_ff if d_ff[k] != d_step[k]
    }
    assert not diff, f"fast-forward diverged from stepping on {spec.label()}: {diff}"
    assert proc_ff.cycle == proc_step.cycle
    return proc_ff


# Small budgets: the differential property holds cycle-for-cycle, so short
# runs exercise it as strictly as long ones while keeping tier-1 fast.
_BUDGET = dict(commits_per_thread=1200, warmup_per_thread=400, scale=1.0,
               seg_instrs=4000)


class TestFigure3Grid:
    """The paper's Figure-3 grid: 1-6 threads, decoupled, L2 = 16."""

    @pytest.mark.parametrize("n_threads", [1, 2, 3, 4, 5, 6])
    def test_bit_identical(self, n_threads):
        assert_differential(
            RunSpec.multiprogrammed(n_threads, l2_latency=16, **_BUDGET)
        )


class TestRandomizedConfigs:
    """Two seeded-random machine configurations (the issue's satellite)."""

    @pytest.mark.parametrize("draw", [0, 1])
    def test_bit_identical(self, draw):
        rng = random.Random(0x20260729 + draw)
        spec = RunSpec.multiprogrammed(
            rng.choice([1, 2, 3]),
            l2_latency=rng.choice([32, 64, 128, 256]),
            decoupled=rng.random() < 0.5,
            seed=rng.randrange(100),
            commits_per_thread=1000,
            warmup_per_thread=300,
            scale=1.0,
            seg_instrs=4000,
            iq_size=rng.choice([16, 48, 96]),
            mshrs=rng.choice([4, 16, 32]),
            fetch_threads=rng.choice([1, 2]),
        )
        assert_differential(spec)


class TestIdleHeavyWorkloads:
    """Where the fast-forward actually earns its keep: long-latency
    machines that idle most cycles must still match exactly."""

    def test_fig1_long_latency_single(self):
        proc = assert_differential(
            RunSpec.single("su2cor", l2_latency=256, scale=1.0,
                           commits=4000, warmup=1000)
        )
        assert proc.ff_cycles_skipped > 0  # the windows really were taken

    def test_non_decoupled_long_latency(self):
        proc = assert_differential(
            RunSpec.multiprogrammed(2, l2_latency=128, decoupled=False,
                                    commits_per_thread=1500,
                                    warmup_per_thread=300,
                                    scale=1.0, seg_instrs=4000)
        )
        assert proc.ff_cycles_skipped > 0


class TestPrefetcherConfigs:
    """Miss-triggered prefetchers mutate MSHR/bus state only inside
    demand accesses, so fast-forward must stay bit-identical with them
    enabled — on both the classic and a finite-L2 hierarchy."""

    @pytest.mark.parametrize("preset", ["nextline", "stream"])
    def test_bit_identical_with_prefetch(self, preset):
        from repro.memory.spec import mem_preset

        proc = assert_differential(
            RunSpec.single("su2cor", l2_latency=128, scale=1.0,
                           commits=3000, warmup=800,
                           mem=mem_preset(preset))
        )
        assert proc.ff_cycles_skipped > 0          # windows still taken
        assert proc.mem.prefetch_fills > 0         # prefetcher really ran

    def test_bit_identical_finite_l2(self):
        from repro.memory.spec import mem_preset

        assert_differential(
            RunSpec.multiprogrammed(2, l2_latency=64,
                                    mem=mem_preset("l2_small"),
                                    commits_per_thread=1200,
                                    warmup_per_thread=300,
                                    scale=1.0, seg_instrs=4000)
        )


class TestDeadlockEquivalence:
    """The deadlock horizon must fire at the same cycle, with the same
    statistics, whether reached by stepping or by a fast-forward jump."""

    def _machine(self):
        cfg = paper_config(1, decoupled=True, l2_latency=500,
                           deadlock_cycles=60)
        playlists = single_program("tomcatv", n_instrs=2000, seed=0)
        return Processor(cfg, playlists, seed=0)

    def test_same_cycle_and_stats(self):
        outcomes = []
        for ff in (True, False):
            proc = self._machine()
            with pytest.raises(SimulationError) as exc:
                proc.run(max_commits=2000, max_cycles=1_000_000,
                         fast_forward=ff)
            outcomes.append((proc.cycle, proc.stats.to_dict(), str(exc.value)))
        assert outcomes[0] == outcomes[1]


class TestFiniteProgramDrain:
    """Finite (non-wrapping) runs must drain to the same final state."""

    def test_finished_identical(self):
        from repro.isa.instruction import StaticInst
        from repro.isa.opclass import OpClass
        from repro.isa.trace import Trace

        insts = []
        pc = 0x1000
        for i in range(40):
            insts.append(StaticInst(pc, OpClass.LOAD_F, dest=40 + (i % 4),
                                    srcs=(2,), addr=0x2000 + 64 * i))
            insts.append(StaticInst(pc + 4, OpClass.FALU, dest=36,
                                    srcs=(36, 40 + (i % 4))))
            pc += 8
        tr = Trace(insts, name="ff-drain")
        results = []
        for ff in (True, False):
            cfg = MachineConfig(l2_latency=200)
            proc = Processor(cfg, [[tr]], wrap=False)
            stats = proc.run(max_cycles=50_000, fast_forward=ff)
            assert proc.finished()
            results.append(stats.to_dict())
        assert results[0] == results[1]


class TestStagedKernelComposition:
    """The stage list is composed from the config, not branched at tick."""

    def test_decoupled_stage_list(self):
        stages = build_stages(MachineConfig(decoupled=True))
        assert any(isinstance(s, DecoupledIssueStage) for s in stages)
        assert not any(isinstance(s, UnifiedIssueStage) for s in stages)

    def test_unified_stage_list(self):
        stages = build_stages(MachineConfig(decoupled=False))
        assert any(isinstance(s, UnifiedIssueStage) for s in stages)
        assert not any(isinstance(s, DecoupledIssueStage) for s in stages)

    def test_stage_order(self):
        names = [s.name for s in build_stages(MachineConfig())]
        assert names == [
            "writeback", "commit", "issue/decoupled", "store-drain",
            "dispatch", "fetch",
        ]

    def test_deadlock_cycles_from_config(self):
        cfg = MachineConfig(deadlock_cycles=123)
        proc = Processor(cfg, single_program("tomcatv", n_instrs=1000, seed=0))
        assert proc.deadlock_cycles == 123
        proc.deadlock_cycles = 456  # per-instance override still allowed
        assert proc.state.deadlock_cycles == 456

    def test_deadlock_cycles_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(deadlock_cycles=0)

    def test_finished_ignores_queues_of_other_mode(self):
        """finished() must only inspect the queues the configured mode
        actually uses (satellite fix: it used to touch all of them)."""
        from repro.isa.instruction import DynInst, StaticInst
        from repro.isa.opclass import OpClass
        from repro.isa.trace import Trace

        tr = Trace([StaticInst(0x1000, OpClass.IALU, dest=4, srcs=(4,))],
                   name="one")
        cfg = MachineConfig(decoupled=False)
        proc = Processor(cfg, [[tr]], wrap=False)
        proc.run(max_cycles=1000)
        assert proc.finished()
        # junk in the decoupled-mode queues is invisible to a unified machine
        ghost = DynInst(tr[0], 0, 999, False)
        proc.threads[0].aq.push(ghost)
        proc.threads[0].iq.push(ghost)
        assert proc.finished()
