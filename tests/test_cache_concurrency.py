"""Shared-cache-dir hardening: defects that only bite under concurrency.

A cache directory stops being private the moment two engines point at it
— CI jobs sharing a warm cache, the job server's worker pool, or two
users on one machine.  This suite pins the behaviours that make that
safe: entry permissions honor the umask instead of ``mkstemp``'s 0600
(a root-owned 0600 entry reads as permission-denied, i.e. an eternal
miss, for everyone else); orphaned ``*.tmp`` files from killed writers
get swept; racing ``put``/``get``/``put_snapshot`` calls never observe a
torn entry; and a fork follower that reads a concurrently-rewritten or
corrupt ``.snap`` file falls back to a cold execute instead of killing
the whole sweep.
"""

from __future__ import annotations

import os
import stat
import threading
import time

import pytest

from repro.engine import Engine, ResultCache, RunSpec, Sweep
from repro.engine.cache import ORPHAN_TMP_AGE_S


@pytest.fixture(autouse=True)
def fast_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")


def tiny_spec(**kw):
    """A cycle-backend spec cheap enough to execute inside a unit test."""
    base = dict(
        n_threads=1, l2_latency=16, seed=0,
        commits_per_thread=1500, warmup_per_thread=500, seg_instrs=3000,
    )
    base.update(kw)
    return RunSpec.multiprogrammed(**base)


def fast_spec(**kw):
    """An analytic-backend spec (microseconds per run) for tight races."""
    kw.setdefault("backend", "analytic")
    return tiny_spec(**kw)


@pytest.fixture
def umask_022():
    """A permissive umask, restored afterwards, so group/other read bits
    are expected on everything the cache publishes."""
    old = os.umask(0o022)
    yield 0o022
    os.umask(old)


def _mode(path) -> int:
    return stat.S_IMODE(os.stat(path).st_mode)


class TestSharedDirPermissions:
    """``mkstemp`` opens 0600 and ``os.replace`` preserves it; entries
    must be re-moded to what the umask allows before publication."""

    def test_result_entries_honor_umask(self, tmp_path, umask_022):
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        path = cache.put(spec, spec.execute())
        assert _mode(path) == 0o644

    def test_snapshot_entries_honor_umask(self, tmp_path, umask_022):
        path = ResultCache(tmp_path).put_snapshot("a" * 32, b"payload")
        assert _mode(path) == 0o644

    def test_overwrite_keeps_umask_mode(self, tmp_path, umask_022):
        # the second put replaces the entry through a fresh temp file;
        # the published mode must not regress to 0600 either
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        stats = spec.execute()
        cache.put(spec, stats)
        path = cache.put(spec, stats)
        assert _mode(path) == 0o644

    def test_restrictive_umask_still_wins(self, tmp_path):
        # honoring the umask also means *not* widening past it
        old = os.umask(0o077)
        try:
            path = ResultCache(tmp_path).put_snapshot("b" * 32, b"x")
            assert _mode(path) == 0o600
        finally:
            os.umask(old)


class TestOrphanSweep:
    def test_stale_tmp_swept_fresh_tmp_kept(self, tmp_path):
        orphan = tmp_path / "deadbeef.tmp"
        orphan.write_bytes(b"killed mid-write")
        ancient = time.time() - ORPHAN_TMP_AGE_S - 60
        os.utime(orphan, (ancient, ancient))
        live = tmp_path / "live.tmp"
        live.write_bytes(b"a concurrent writer owns this")

        ResultCache(tmp_path).put_snapshot("c" * 32, b"data")
        assert not orphan.exists()  # swept
        assert live.exists()        # too young to be an orphan

    def test_sweep_runs_once_per_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_snapshot("d" * 32, b"data")
        late_orphan = tmp_path / "later.tmp"
        late_orphan.write_bytes(b"x")
        ancient = time.time() - ORPHAN_TMP_AGE_S - 60
        os.utime(late_orphan, (ancient, ancient))
        cache.put_snapshot("e" * 32, b"data")
        assert late_orphan.exists()  # this instance already swept
        ResultCache(tmp_path).put_snapshot("f" * 32, b"data")
        assert not late_orphan.exists()  # a fresh instance sweeps again


class TestRacingEngines:
    """Two engines over one cache dir: races corrupt nothing."""

    def test_concurrent_sweeps_agree_and_warm_the_cache(self, tmp_path):
        sweep = Sweep.of(*(fast_spec(l2_latency=lat) for lat in
                           (4, 8, 16, 32, 64, 128)))
        reference = Engine.serial().map(sweep)
        engines = [Engine(workers=1, cache=ResultCache(tmp_path))
                   for _ in range(2)]
        results: list = [None, None]
        errors: list = []

        def go(i):
            try:
                results[i] = engines[i].map(sweep)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=go, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for res in results:
            for spec in sweep:
                assert res[spec].to_dict() == reference[spec].to_dict()
        # whoever lost each per-spec race simply overwrote an identical
        # entry; a third engine now runs everything from disk
        warm = Engine(workers=1, cache=ResultCache(tmp_path)).map(sweep)
        assert warm.n_executed == 0 and warm.n_cached == len(sweep)

    def test_put_get_snapshot_hammering(self, tmp_path):
        spec = fast_spec()
        stats = spec.execute()
        expected = stats.to_dict()
        snap_payload = b"snapshot-bytes" * 64
        stop = time.time() + 1.0
        errors: list = []

        def writer():
            cache = ResultCache(tmp_path)
            try:
                while time.time() < stop:
                    cache.put(spec, stats)
                    cache.put_snapshot(spec.warmup_key(), snap_payload)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            cache = ResultCache(tmp_path)
            try:
                while time.time() < stop:
                    got = cache.get(spec)
                    # atomic publication: a reader sees a complete entry
                    # or a miss, never a torn one
                    assert got is None or got.to_dict() == expected
                    snap = cache.get_snapshot(spec.warmup_key())
                    assert snap is None or snap == snap_payload
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=f)
                   for f in (writer, writer, reader, reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert ResultCache(tmp_path).get(spec).to_dict() == expected


class _RewrittenSnapCache(ResultCache):
    """Serves a valid snapshot to the scheduler's validation read, but
    points phase-2 workers at a corrupt file — modelling a ``.snap``
    another process rewrites between validation and the follower's
    read."""

    def __init__(self, root, valid_bytes):
        super().__init__(root)
        self._valid = valid_bytes

    def get_snapshot(self, warmup_key):
        return self._valid

    def snapshot_path(self, warmup_key):
        return self.root / "corrupt.snap"


class TestForkFollowerFallback:
    """A follower hitting a bad snapshot runs cold; the sweep survives."""

    def _specs(self):
        # same warm-up prefix (only the measured budget differs), so the
        # scheduler groups them under one warmup_key
        return [tiny_spec(commits_per_thread=c) for c in (1000, 1400)]

    def test_parallel_follower_corrupt_snap_runs_cold(self, tmp_path):
        from repro.engine.snapshot import capture_warmup

        specs = self._specs()
        snap, _ = capture_warmup(specs[0])
        (tmp_path / "corrupt.snap").write_bytes(b"repro-snap\n{torn")
        cache = _RewrittenSnapCache(tmp_path, snap.to_bytes())
        engine = Engine(workers=2, cache=cache, fork_warmup=2)
        results = engine.map(specs)  # pre-fix: SnapshotError killed this
        reference = Engine.serial().map(specs)
        for spec in specs:
            assert results[spec].to_dict() == reference[spec].to_dict()
        assert results.n_executed == 2
        assert results.n_forked == 0
        assert results.warmup_cycles_saved == 0

    def test_parallel_follower_vanished_snap_runs_cold(self, tmp_path):
        from repro.engine.snapshot import capture_warmup

        specs = self._specs()
        snap, _ = capture_warmup(specs[0])
        # snapshot_path points at a file nobody ever wrote: the follower
        # gets FileNotFoundError instead of SnapshotError
        cache = _RewrittenSnapCache(tmp_path, snap.to_bytes())
        engine = Engine(workers=2, cache=cache, fork_warmup=2)
        results = engine.map(specs)
        reference = Engine.serial().map(specs)
        for spec in specs:
            assert results[spec].to_dict() == reference[spec].to_dict()
        assert results.n_forked == 0

    def test_serial_foreign_snapshot_runs_cold(self, tmp_path):
        # a valid snapshot filed under the *wrong* warmup key (copied
        # between cache dirs by hand) fails restore's fork-key check;
        # the serial path must also fall back per cell
        from repro.engine.snapshot import capture_warmup

        specs = self._specs()
        foreign = tiny_spec(seed=7)
        snap, _ = capture_warmup(foreign)
        cache = ResultCache(tmp_path)
        cache.put_snapshot(specs[0].warmup_key(), snap.to_bytes())
        engine = Engine(workers=1, cache=cache, fork_warmup=2)
        results = engine.map(specs)
        reference = Engine.serial().map(specs)
        for spec in specs:
            assert results[spec].to_dict() == reference[spec].to_dict()
        assert results.n_forked == 0 and results.n_executed == 2
