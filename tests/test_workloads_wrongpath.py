"""Wrong-path instruction synthesis."""

from repro.isa.opclass import OpClass
from repro.workloads.wrongpath import WrongPathGenerator


class TestWrongPathGenerator:
    def test_block_size(self):
        gen = WrongPathGenerator(seed=1)
        assert len(gen.next_block(16)) == 16

    def test_deterministic_in_seed(self):
        a = WrongPathGenerator(seed=5).next_block(64)
        b = WrongPathGenerator(seed=5).next_block(64)
        assert [(i.op, i.addr, i.dest) for i in a] == [
            (i.op, i.addr, i.dest) for i in b
        ]

    def test_no_branches(self):
        # the mispredicted branch pins recovery; wrong paths don't branch
        insts = WrongPathGenerator(seed=2).next_block(400)
        assert not any(i.op == OpClass.BRANCH for i in insts)

    def test_no_stores(self):
        insts = WrongPathGenerator(seed=2).next_block(400)
        assert not any(i.is_store for i in insts)

    def test_contains_loads_that_touch_memory(self):
        insts = WrongPathGenerator(seed=3).next_block(400)
        loads = [i for i in insts if i.is_load]
        assert loads
        assert all(i.addr > 0 and i.addr % 8 == 0 for i in loads)

    def test_load_addresses_near_hot_region(self):
        gen = WrongPathGenerator(seed=4)
        for i in gen.next_block(300):
            if i.is_load:
                assert gen.data_base <= i.addr < gen.data_base + gen.data_span

    def test_mix_roughly_matches_weights(self):
        insts = WrongPathGenerator(seed=6).next_block(2000)
        loads = sum(1 for i in insts if i.is_load)
        falu = sum(1 for i in insts if i.op == OpClass.FALU)
        assert 0.15 < loads / len(insts) < 0.45
        assert 0.20 < falu / len(insts) < 0.50
