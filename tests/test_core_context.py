"""Per-thread hardware context: trace walking, salts, resume points."""

import pytest

from conftest import ProgramBuilder
from repro.core.config import MachineConfig
from repro.core.context import ThreadContext
from repro.isa.trace import Trace


def _ctx(n_traces=2, trace_len=5, tid=0, wrap=True):
    traces = []
    for k in range(n_traces):
        b = ProgramBuilder(pc=0x1000 * (k + 1))
        b.nops(trace_len)
        traces.append(b.trace(name=f"t{k}"))
    return ThreadContext(tid, MachineConfig(), traces, wrap=wrap)


class TestTraceWalking:
    def test_walks_in_order(self):
        ctx = _ctx()
        pcs = []
        for _ in range(5):
            pcs.append(ctx.cur_static().pc)
            ctx.advance()
        assert pcs == sorted(pcs)

    def test_wraps_to_next_trace(self):
        ctx = _ctx(n_traces=2, trace_len=3)
        for _ in range(3):
            ctx.advance()
        assert ctx.play_idx == 1
        assert ctx.pos == 0

    def test_playlist_cycles(self):
        ctx = _ctx(n_traces=2, trace_len=3)
        for _ in range(6):
            ctx.advance()
        assert ctx.play_idx == 0

    def test_finite_context_exhausts(self):
        ctx = _ctx(n_traces=1, trace_len=3, wrap=False)
        assert not ctx.exhausted
        for _ in range(3):
            ctx.advance()
        assert ctx.exhausted

    def test_wrapping_context_never_exhausts(self):
        ctx = _ctx(n_traces=1, trace_len=3, wrap=True)
        for _ in range(30):
            ctx.advance()
        assert not ctx.exhausted


class TestResumePoints:
    def test_mark_and_resume(self):
        ctx = _ctx(n_traces=2, trace_len=4)
        ctx.advance()
        ctx.mark_resume(seq=10)
        ctx.advance()
        ctx.advance()
        ctx.wrong_path = True
        ctx.resume_from(10)
        assert (ctx.play_idx, ctx.pos) == (0, 1)
        assert not ctx.wrong_path

    def test_resume_clears_wp_queue(self):
        ctx = _ctx()
        ctx.mark_resume(5)
        ctx.wp_queue.extend(ctx.wp_gen.next_block(8))
        ctx.resume_from(5)
        assert not ctx.wp_queue


class TestSalts:
    def test_thread_zero_unsalted(self):
        ctx = _ctx(tid=0)
        assert ctx.salted(0x2000) == 0x2000

    def test_regions_get_distinct_strides(self):
        from repro.workloads.synth import HOT_BASE, STORE_BASE
        c1 = _ctx(tid=1)
        hot_shift = c1.salted(HOT_BASE) - HOT_BASE
        store_shift = c1.salted(STORE_BASE) - STORE_BASE
        stream_shift = c1.salted(0x10000000) - 0x10000000
        assert len({hot_shift, store_shift, stream_shift}) == 3

    def test_salt_strictly_increasing_with_tid(self):
        shifts = [
            _ctx(tid=t).salted(0x10000000) for t in range(4)
        ]
        assert shifts == sorted(shifts)
        assert len(set(shifts)) == 4


class TestValidation:
    def test_rejects_empty_playlist(self):
        with pytest.raises(ValueError):
            ThreadContext(0, MachineConfig(), [])

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            ThreadContext(0, MachineConfig(), [Trace([], name="empty")])

    def test_wp_generator_refills(self):
        ctx = _ctx()
        first = [ctx.next_wp_inst() for _ in range(40)]
        assert len(first) == 40
