"""Golden-stats regression corpus (tests/golden/*.json).

Every cell of the pinned fig1/fig3/fig4 sub-grid is re-run live on the
cycle backend and diffed against the committed corpus. A failure here
means simulation semantics changed: either fix the regression, or — for
an intentional change — bump ``SPEC_VERSION`` and run
``repro-sim golden --refresh`` (see DESIGN.md "Validation methodology").
"""

import json
from pathlib import Path

import pytest

from repro.engine import Engine
from repro.engine.spec import SPEC_VERSION
from repro.experiments import golden

CORPUS = Path(__file__).parent / "golden"

#: one serial engine for the whole module: its in-memory memo dedupes
#: the repeated golden-grid runs across these tests
ENGINE = Engine.serial()


def test_corpus_files_exist():
    for figure in golden.golden_cells():
        assert golden.path_for(figure, CORPUS).is_file(), (
            f"missing golden file for {figure}; run "
            "'repro-sim golden --refresh'"
        )


@pytest.mark.parametrize("figure", sorted(golden.golden_cells()))
def test_live_runs_match_corpus(figure):
    path = golden.path_for(figure, CORPUS)
    stored = json.loads(path.read_text())
    assert stored["schema"] == golden.SCHEMA
    assert stored["spec_version"] == SPEC_VERSION, (
        f"{path} was recorded for SPEC_VERSION {stored['spec_version']}, "
        f"code is at {SPEC_VERSION}; if intentional, refresh the corpus"
    )
    problems = golden.compare(figure, stored, ENGINE)
    assert not problems, "\n".join(problems)


def test_default_root_is_anchored_to_the_repo(tmp_path, monkeypatch):
    # the CLI must find the committed corpus from any working directory
    monkeypatch.chdir(tmp_path)
    assert golden.default_root() == CORPUS.resolve()


def test_cli_golden_bypasses_the_result_cache(tmp_path, monkeypatch, capsys):
    # a warm cache must never satisfy a golden verification: the command
    # exists to compare *live* semantics against the corpus
    from repro.cli import main
    from repro.engine import ResultCache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    specs = [s for cells in golden.golden_cells().values()
             for s in cells.values()]
    cache = ResultCache(tmp_path / "cache")
    poisoned = specs[0].execute()
    poisoned.committed += 12345  # a cache hit would visibly skew metrics
    for spec in specs:
        cache.put(spec, poisoned)
    assert main(["golden"]) == 0
    assert "conformant" in capsys.readouterr().out


def test_verify_reports_spec_version_skew(tmp_path):
    golden_dir = tmp_path / "golden"
    golden.refresh(golden_dir, ENGINE)
    doc = json.loads(golden.path_for("fig3", golden_dir).read_text())
    doc["spec_version"] = SPEC_VERSION - 1
    golden.path_for("fig3", golden_dir).write_text(json.dumps(doc))
    problems = golden.verify(golden_dir, ENGINE)
    assert any("SPEC_VERSION" in p and "fig3" in p for p in problems)


def test_verify_reports_metric_drift(tmp_path):
    golden_dir = tmp_path / "golden"
    golden.refresh(golden_dir, ENGINE)
    path = golden.path_for("fig4", golden_dir)
    doc = json.loads(path.read_text())
    label = sorted(doc["cells"])[0]
    doc["cells"][label]["ipc"] *= 1.5
    path.write_text(json.dumps(doc))
    problems = golden.verify(golden_dir, ENGINE)
    assert any("ipc" in p and label in p for p in problems)
    # the other figures still verify clean
    assert all("fig1" not in p and "fig3" not in p for p in problems)
