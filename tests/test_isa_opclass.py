"""Steering and op-class predicates (paper section 2 steering rule)."""

import pytest

from repro.isa.opclass import (
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    OpClass,
    Unit,
    is_load,
    is_mem,
    is_store,
    steer,
)


class TestSteering:
    def test_integer_alu_goes_to_ap(self):
        assert steer(OpClass.IALU) is Unit.AP

    def test_fp_alu_goes_to_ep(self):
        assert steer(OpClass.FALU) is Unit.EP

    def test_all_memory_ops_go_to_ap(self):
        # "memory instructions ... are all sent to the AP"
        for op in MEMORY_OPS:
            assert steer(op) is Unit.AP

    def test_branches_go_to_ap(self):
        assert steer(OpClass.BRANCH) is Unit.AP

    def test_itof_executes_on_ap(self):
        # reads an integer register: AP-side producer of an EP value
        assert steer(OpClass.ITOF) is Unit.AP

    def test_ftoi_executes_on_ep(self):
        # reads an FP register: the loss-of-decoupling event
        assert steer(OpClass.FTOI) is Unit.EP

    def test_every_op_class_is_steered(self):
        for op in OpClass:
            assert steer(op) in (Unit.AP, Unit.EP)


class TestPredicates:
    @pytest.mark.parametrize("op", [OpClass.LOAD_I, OpClass.LOAD_F])
    def test_loads(self, op):
        assert is_load(op)
        assert is_mem(op)
        assert not is_store(op)

    @pytest.mark.parametrize("op", [OpClass.STORE_I, OpClass.STORE_F])
    def test_stores(self, op):
        assert is_store(op)
        assert is_mem(op)
        assert not is_load(op)

    @pytest.mark.parametrize(
        "op", [OpClass.IALU, OpClass.FALU, OpClass.BRANCH, OpClass.ITOF, OpClass.FTOI]
    )
    def test_non_memory(self, op):
        assert not is_mem(op)
        assert not is_load(op)
        assert not is_store(op)

    def test_memory_ops_partition(self):
        assert LOAD_OPS | STORE_OPS == MEMORY_OPS
        assert not (LOAD_OPS & STORE_OPS)
