"""Register renaming: mapping, free lists, undo, invariants."""

from repro.core.rename import RenameFile
from repro.isa.registers import FP_BASE, FP_ZERO, INT_ZERO


def make_rename():
    return RenameFile(ap_regs=64, ep_regs=96)


class TestInitialState:
    def test_identity_mapping(self):
        r = make_rename()
        assert r.lookup(0) == 0
        assert r.lookup(31) == 31
        assert r.lookup(32) == 64      # f0 -> first EP physical
        assert r.lookup(63) == 64 + 31

    def test_free_list_sizes(self):
        r = make_rename()
        assert len(r.free_ap) == 64 - 32
        assert len(r.free_ep) == 96 - 32

    def test_all_initially_ready(self):
        r = make_rename()
        assert all(r.ready)


class TestRename:
    def test_dest_allocates_new_physical(self):
        r = make_rename()
        p, old = r.rename_dest(5)
        assert old == 5
        assert p != 5
        assert r.lookup(5) == p
        assert not r.ready[p]

    def test_fp_dest_uses_ep_file(self):
        r = make_rename()
        p, _old = r.rename_dest(FP_BASE + 3)
        assert p >= 64

    def test_zero_register_dest_discarded(self):
        r = make_rename()
        assert r.rename_dest(INT_ZERO) == (-1, -1)
        assert r.rename_dest(FP_ZERO) == (-1, -1)

    def test_srcs_renamed_through_map(self):
        r = make_rename()
        p, _ = r.rename_dest(4)
        assert r.srcs_of((4,)) == (p,)

    def test_srcs_drop_zero_registers(self):
        r = make_rename()
        assert r.srcs_of((INT_ZERO, 4, FP_ZERO)) == (r.lookup(4),)

    def test_exhaustion(self):
        r = make_rename()
        for _ in range(32):
            assert r.can_rename_dest(7)
            r.rename_dest(7)
        assert not r.can_rename_dest(7)
        # other file unaffected
        assert r.can_rename_dest(FP_BASE + 1)

    def test_zero_dest_always_renameable(self):
        r = make_rename()
        for _ in range(40):
            r.rename_dest(7) if r.can_rename_dest(7) else None
        assert r.can_rename_dest(INT_ZERO)


class TestUndoAndFree:
    def test_undo_restores_mapping(self):
        r = make_rename()
        p, old = r.rename_dest(9)
        r.undo_rename(9, p, old)
        assert r.lookup(9) == old

    def test_walkback_order_restores_multiple_writers(self):
        r = make_rename()
        p1, o1 = r.rename_dest(9)
        p2, o2 = r.rename_dest(9)
        # undo youngest-first, as the ROB walk does
        r.undo_rename(9, p2, o2)
        assert r.lookup(9) == p1
        r.undo_rename(9, p1, o1)
        assert r.lookup(9) == o1 == 9

    def test_free_returns_to_correct_file(self):
        r = make_rename()
        pa, _ = r.rename_dest(3)
        pe, _ = r.rename_dest(FP_BASE + 3)
        n_ap, n_ep = len(r.free_ap), len(r.free_ep)
        r.free(pa)
        r.free(pe)
        assert len(r.free_ap) == n_ap + 1
        assert len(r.free_ep) == n_ep + 1

    def test_free_negative_is_noop(self):
        r = make_rename()
        n = len(r.free_ap)
        r.free(-1)
        assert len(r.free_ap) == n

    def test_invariants_after_churn(self):
        r = make_rename()
        history = []
        for i in range(200):
            arch = (i * 7) % 31
            if not r.can_rename_dest(arch):
                # free the oldest old mapping, as commit would
                arch_c, p_c, old_c = history.pop(0)
                r.free(old_c)
            p, old = r.rename_dest(arch)
            history.append((arch, p, old))
            if len(history) > 20:
                _a, _p, old_c = history.pop(0)
                r.free(old_c)
            r.check_invariants()
