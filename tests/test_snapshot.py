"""Differential tests: snapshot/restore vs unbroken execution.

The checkpoint subsystem's core claim is **bit-identity**: capture a
machine at the warm-up boundary (or anywhere in the measured region),
restore it — through a full serialize/deserialize round trip — and run to
completion, and you get exactly the statistics *and* exactly the final
machine state of a run that was never interrupted.  These tests gate that
claim the same way ``tests/test_fast_forward.py`` gates the idle-cycle
fast-forward: exact equality of ``SimStats.to_dict()`` plus the strictly
stronger ``MachineState.fingerprint()`` (queues, rename files, cache tag
arrays, MSHR occupancy, event heap, RNG cursors — everything).

Coverage deliberately includes the shapes the memory fast path declines —
finite banked L2, a stream prefetcher, per-thread split L1 — because
those run the generic interpreter, whose per-level state (tag/LRU/dirty
lists, bank queues, prefetch tables) must survive the pickle too.  A
cross-``REPRO_GENERIC_MEM`` test pins the subtlest contract: a snapshot
captured with the specialized closures installed restores onto the
generic path (and vice versa) with identical results.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.snapshot import (
    Snapshot,
    SnapshotError,
    capture_warmup,
    run_tail,
)
from repro.engine.spec import RunSpec
from repro.memory.spec import mem_preset

# Small budgets: bit-identity holds cycle-for-cycle, so short runs test it
# as strictly as long ones while keeping tier-1 fast.
_BUDGET = dict(commits_per_thread=1000, warmup_per_thread=400, scale=1.0,
               seg_instrs=4000)


def run_cold(spec: RunSpec):
    """An unbroken run; returns ``(proc, stats)``."""
    proc, kw = spec.instantiate()
    return proc, proc.run(**kw)


def run_restored(spec: RunSpec):
    """Warm up, snapshot, serialize, restore into a *fresh* machine and
    run only the measured tail; returns ``(restored_proc, stats)``."""
    snap, _warm_proc = capture_warmup(spec)
    snap = Snapshot.from_bytes(snap.to_bytes())  # full round trip
    proc = snap.restore(spec)
    kw = spec.run_kwargs()
    kw["warmup_commits"] = 0
    return proc, proc.run(**kw)


def assert_bit_identical(spec: RunSpec):
    """The differential gate: cold vs snapshot-restored, exact equality
    of statistics, final cycle and complete machine fingerprint."""
    proc_cold, stats_cold = run_cold(spec)
    proc_rest, stats_rest = run_restored(spec)
    d_cold, d_rest = stats_cold.to_dict(), stats_rest.to_dict()
    diff = {
        k: (d_cold[k], d_rest[k]) for k in d_cold if d_cold[k] != d_rest[k]
    }
    assert not diff, f"restore diverged from cold on {spec.label()}: {diff}"
    assert proc_cold.cycle == proc_rest.cycle
    assert proc_cold.state.fingerprint() == proc_rest.state.fingerprint(), (
        f"final machine states diverged on {spec.label()}"
    )
    proc_rest.check_invariants()
    return proc_rest


class TestFigure3Grid:
    """Warm-up-boundary restore across the paper's Figure-3 cells."""

    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_bit_identical(self, n_threads):
        assert_bit_identical(
            RunSpec.multiprogrammed(n_threads, l2_latency=16, **_BUDGET)
        )

    def test_long_latency_idle_heavy(self):
        # fast-forward active in both halves of the comparison
        assert_bit_identical(
            RunSpec.single("su2cor", l2_latency=256, scale=1.0,
                           commits=3000, warmup=1000)
        )


class TestRandomizedConfigs:
    """Seeded-random machine configurations (the acceptance grid's
    randomized cells)."""

    @pytest.mark.parametrize("draw", [0, 1])
    def test_bit_identical(self, draw):
        rng = random.Random(0x20260807 + draw)
        spec = RunSpec.multiprogrammed(
            rng.choice([1, 2, 3]),
            l2_latency=rng.choice([32, 64, 128]),
            decoupled=rng.random() < 0.5,
            seed=rng.randrange(100),
            commits_per_thread=900,
            warmup_per_thread=300,
            scale=1.0,
            seg_instrs=4000,
            iq_size=rng.choice([16, 48, 96]),
            mshrs=rng.choice([4, 16, 32]),
            fetch_threads=rng.choice([1, 2]),
        )
        assert_bit_identical(spec)


class TestExoticShapes:
    """Shapes the memory fast path declines: the *generic* interpreter's
    per-level state must survive the pickle byte-for-byte."""

    def test_finite_banked_l2(self):
        spec = RunSpec.multiprogrammed(
            2, l2_latency=64,
            mem=mem_preset("l2_small").override("L2.banks", 2), **_BUDGET,
        )
        proc = assert_bit_identical(spec)
        assert not proc.mem.specialized  # really on the generic path

    def test_stream_prefetcher(self):
        spec = RunSpec.single(
            "su2cor", l2_latency=128, scale=1.0, commits=2500, warmup=800,
            mem=mem_preset("stream"),
        )
        proc = assert_bit_identical(spec)
        assert not proc.mem.specialized
        assert proc.mem.prefetch_fills > 0  # the prefetcher really ran

    def test_split_per_thread_l1(self):
        spec = RunSpec.multiprogrammed(
            2, l2_latency=64,
            mem=mem_preset("classic").override("L1.shared", False),
            **_BUDGET,
        )
        proc = assert_bit_identical(spec)
        assert not proc.mem.specialized
        assert len(proc.mem._l1s) == 2

    def test_prefetch_on_finite_l2(self):
        # the acceptance grid's combined prefetch + finite-L2 cell
        spec = RunSpec.multiprogrammed(
            2, l2_latency=64,
            mem=mem_preset("l2_small").override("prefetch_kind", "nextline"),
            **_BUDGET,
        )
        proc = assert_bit_identical(spec)
        assert not proc.mem.specialized


class TestCrossModeRestore:
    """Snapshots restore across ``REPRO_GENERIC_MEM`` settings — legal
    because the fast and generic paths are bit-identical by contract."""

    def _spec(self):
        return RunSpec.multiprogrammed(2, l2_latency=64, **_BUDGET)

    def test_fast_capture_generic_restore(self, monkeypatch):
        spec = self._spec()
        monkeypatch.delenv("REPRO_GENERIC_MEM", raising=False)
        proc_cold, stats_cold = run_cold(spec)
        assert proc_cold.mem.specialized
        snap, _ = capture_warmup(spec)
        monkeypatch.setenv("REPRO_GENERIC_MEM", "1")
        proc = Snapshot.from_bytes(snap.to_bytes()).restore(spec)
        assert not proc.mem.specialized  # restored onto the generic path
        kw = spec.run_kwargs()
        kw["warmup_commits"] = 0
        stats = proc.run(**kw)
        assert stats.to_dict() == stats_cold.to_dict()
        assert proc.state.fingerprint() == proc_cold.state.fingerprint()

    def test_generic_capture_fast_restore(self, monkeypatch):
        spec = self._spec()
        monkeypatch.setenv("REPRO_GENERIC_MEM", "1")
        proc_cold, stats_cold = run_cold(spec)
        assert not proc_cold.mem.specialized
        snap, _ = capture_warmup(spec)
        monkeypatch.delenv("REPRO_GENERIC_MEM")
        proc = Snapshot.from_bytes(snap.to_bytes()).restore(spec)
        assert proc.mem.specialized  # re-specialized over restored arrays
        kw = spec.run_kwargs()
        kw["warmup_commits"] = 0
        stats = proc.run(**kw)
        assert stats.to_dict() == stats_cold.to_dict()
        assert proc.state.fingerprint() == proc_cold.state.fingerprint()


class TestMidRegionCapture:
    """Capture is legal anywhere, not just the warm-up boundary — and is
    non-destructive: the captured machine keeps running and must agree
    with its own restored twin to the last counter."""

    def test_capture_mid_measured_region(self):
        spec = RunSpec.multiprogrammed(2, l2_latency=32, **_BUDGET)
        proc, kw = spec.instantiate()
        proc.run(max_commits=kw["warmup_commits"], max_cycles=None)
        proc.reset_stats()
        half = kw["max_commits"] // 2
        proc.run(max_commits=half, warmup_commits=0,
                 max_cycles=kw["max_cycles"])
        snap = Snapshot.capture(proc, spec=spec)
        # the original machine continues past the capture point...
        rest_commits = kw["max_commits"] - proc.stats.committed
        stats_a = proc.run(max_commits=rest_commits, warmup_commits=0,
                           max_cycles=kw["max_cycles"])
        # ...and its restored twin runs the identical remainder
        twin = Snapshot.from_bytes(snap.to_bytes()).restore(spec)
        stats_b = twin.run(max_commits=rest_commits, warmup_commits=0,
                           max_cycles=kw["max_cycles"])
        assert stats_a.to_dict() == stats_b.to_dict()
        assert proc.state.fingerprint() == twin.state.fingerprint()

    def test_capture_lands_mid_stall_window(self):
        """A ``max_cycles`` stop can truncate an event-horizon jump,
        parking the machine inside a memory-stall window; capture there
        must still restore bit-identically (the ff diagnostics travel
        inside the pickled ``SimStats``)."""
        spec = RunSpec.multiprogrammed(
            2, l2_latency=256, commits_per_thread=800,
            warmup_per_thread=200, scale=1.0, seg_instrs=4000,
        )
        proc, kw = spec.instantiate()
        proc.run(max_commits=kw["warmup_commits"], max_cycles=None)
        proc.reset_stats()
        # a tight cycle budget at latency 256 stops between events, not
        # at a commit boundary — the adversarial capture point
        proc.run(max_commits=kw["max_commits"], warmup_commits=0,
                 max_cycles=700)
        assert proc.stats.ff_cycles_skipped > 0
        snap = Snapshot.capture(proc, spec=spec)
        rest = kw["max_commits"] - proc.stats.committed
        stats_a = proc.run(max_commits=rest, warmup_commits=0,
                           max_cycles=kw["max_cycles"])
        twin = Snapshot.from_bytes(snap.to_bytes()).restore(spec)
        stats_b = twin.run(max_commits=rest, warmup_commits=0,
                           max_cycles=kw["max_cycles"])
        assert stats_a.to_dict() == stats_b.to_dict()
        assert proc.state.fingerprint() == twin.state.fingerprint()


class TestForkedSiblings:
    """One warm-up snapshot fans out to cells with different measured
    budgets; every tail must equal its own cold run."""

    def _spec(self, commits):
        return RunSpec.multiprogrammed(
            2, l2_latency=64, commits_per_thread=commits,
            warmup_per_thread=400, scale=1.0, seg_instrs=4000,
        )

    def test_shared_warmup_key(self):
        a, b = self._spec(800), self._spec(1600)
        assert a.warmup_key() == b.warmup_key()
        assert a.key() != b.key()

    def test_tails_equal_cold(self):
        base = self._spec(800)
        snap, _ = capture_warmup(base)
        snap = Snapshot.from_bytes(snap.to_bytes())
        for commits in (800, 1200, 1600):
            sib = self._spec(commits)
            assert run_tail(sib, snap).to_dict() == sib.execute().to_dict()


class TestSnapshotFormat:
    """Serialization format, validation and refusal paths."""

    def _snap(self):
        spec = RunSpec.multiprogrammed(1, l2_latency=16, **_BUDGET)
        return spec, capture_warmup(spec)[0]

    def test_meta_fields(self):
        spec, snap = self._snap()
        assert snap.meta["spec_key"] == spec.key()
        assert snap.meta["warmup_key"] == spec.warmup_key()
        assert snap.meta["cycle"] > 0
        assert snap.meta["total_committed"] > 0

    def test_roundtrip_preserves_meta_and_payload(self):
        _, snap = self._snap()
        back = Snapshot.from_bytes(snap.to_bytes())
        assert back.meta == snap.meta
        assert back.payload == snap.payload

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError, match="magic"):
            Snapshot.from_bytes(b"not a snapshot at all")

    def test_corrupt_header_rejected(self):
        with pytest.raises(SnapshotError, match="corrupt"):
            Snapshot.from_bytes(b"repro-snap\n{never closed")

    def test_stale_format_rejected(self):
        _, snap = self._snap()
        snap.meta["format"] = 999
        with pytest.raises(SnapshotError, match="format"):
            Snapshot.from_bytes(snap.to_bytes())

    def test_stale_spec_version_rejected(self):
        _, snap = self._snap()
        snap.meta["spec_version"] = 1
        with pytest.raises(SnapshotError, match="spec_version"):
            Snapshot.from_bytes(snap.to_bytes())

    def test_mismatched_warmup_key_refused(self):
        spec, snap = self._snap()
        other = RunSpec.multiprogrammed(2, l2_latency=16, **_BUDGET)
        assert other.warmup_key() != spec.warmup_key()
        with pytest.raises(SnapshotError, match="warmup_key"):
            snap.restore(other)
