"""Statistics: derived-metric arithmetic and report formatting."""

from repro.isa.opclass import Unit
from repro.stats.counters import (
    SLOT_IDLE,
    SLOT_USEFUL,
    SLOT_WAIT_FU,
    SimStats,
)
from repro.stats.report import format_run, format_table


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimStats(cycles=100, committed=250)
        assert s.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_load_miss_ratio_includes_merged(self):
        s = SimStats(loads_fp=80, loads_int=20,
                     load_misses_fp=10, load_merged_fp=30)
        assert s.load_miss_ratio == 0.4

    def test_load_fill_ratio_is_primary_only(self):
        s = SimStats(loads_fp=80, loads_int=20,
                     load_misses_fp=10, load_merged_fp=30)
        assert s.load_fill_ratio == 0.1

    def test_store_miss_ratio(self):
        s = SimStats(stores=50, store_misses=5, store_merged=5)
        assert s.store_miss_ratio == 0.2

    def test_perceived_fp_latency_averages_over_misses(self):
        s = SimStats(load_misses_fp=4, load_merged_fp=4, perceived_stall_fp=40)
        assert s.perceived_fp_latency == 5.0

    def test_perceived_latency_no_misses(self):
        assert SimStats().perceived_fp_latency == 0.0
        assert SimStats().perceived_load_latency == 0.0

    def test_perceived_combined(self):
        s = SimStats(
            load_misses_fp=5, load_misses_int=5,
            perceived_stall_fp=20, perceived_stall_int=30,
        )
        assert s.perceived_load_latency == 5.0

    def test_mispredict_rate(self):
        s = SimStats(branches=200, branch_mispredicts=10)
        assert s.mispredict_rate == 0.05

    def test_average_slip(self):
        s = SimStats(slip_samples=10, slip_total=500)
        assert s.average_slip == 50.0


class TestSlotBreakdown:
    def _stats(self):
        s = SimStats()
        s.slot_counts[0][SLOT_USEFUL] = 60
        s.slot_counts[0][SLOT_IDLE] = 40
        s.slot_counts[1][SLOT_WAIT_FU] = 75
        s.slot_counts[1][SLOT_USEFUL] = 25
        return s

    def test_fractions_sum_to_one(self):
        s = self._stats()
        for unit in (Unit.AP, Unit.EP):
            assert abs(sum(s.slot_fractions(unit).values()) - 1.0) < 1e-9

    def test_unit_utilization(self):
        s = self._stats()
        assert s.unit_utilization(Unit.AP) == 0.6
        assert s.unit_utilization(Unit.EP) == 0.25

    def test_empty_breakdown(self):
        s = SimStats()
        assert s.unit_utilization(Unit.AP) == 0.0
        assert all(v == 0.0 for v in s.slot_fractions(Unit.EP).values())

    def test_snapshot_keys(self):
        snap = self._stats().snapshot()
        for key in ("ipc", "perceived_fp_latency", "ap_slots", "ep_slots"):
            assert key in snap


class TestReport:
    def test_format_run_contains_metrics(self):
        s = SimStats(cycles=10, committed=20)
        text = format_run(s, "label")
        assert "label" in text
        assert "IPC" in text
        assert "2.000" in text

    def test_format_run_shows_skip_effectiveness(self):
        s = SimStats(cycles=1000, committed=20,
                     ff_jumps=4, ff_cycles_skipped=600)
        text = format_run(s)
        assert "600 cycles in 4 jumps" in text
        assert "60.0% of cycles" in text
        # and the line is absent entirely when the scheduler never jumped
        assert "jumps" not in format_run(SimStats(cycles=10, committed=5))

    def test_snapshot_carries_ff_diagnostics(self):
        snap = SimStats(ff_jumps=2, ff_cycles_skipped=50).snapshot()
        assert snap["ff"] == {"jumps": 2, "cycles_skipped": 50}

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out
        assert "30" in out

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out
