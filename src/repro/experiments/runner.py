"""Experiment execution helpers.

Every figure driver funnels through :func:`run_multiprogrammed` (paper
section 3 experiments) or :func:`run_single_benchmark` (section 2), which
build the machine + workload, warm it up, run the measured region and return
the finalised :class:`~repro.stats.counters.SimStats`.

Instruction budgets scale with ``REPRO_SCALE`` (a float environment
variable, default 1.0) so the benchmark harness can run quick smoke sweeps
while the full harness reproduces the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

from repro.core.config import paper_config
from repro.core.processor import Processor
from repro.stats.counters import SimStats
from repro.workloads.multiprogram import multiprogram, single_program

#: measured commits per hardware context in multithreaded runs
COMMITS_PER_THREAD = 15_000
#: warm-up commits per hardware context (discarded)
WARMUP_PER_THREAD = 8_000
#: trace segment length per benchmark in multiprogrammed playlists
SEG_INSTRS = 20_000
#: single-benchmark (section 2) budgets
SINGLE_COMMITS = 30_000
SINGLE_WARMUP = 15_000


def scale_factor() -> float:
    """Global instruction-budget scale (``REPRO_SCALE`` env var)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_SCALE", "1.0")))
    except ValueError:
        return 1.0


def _scaled(n: int) -> int:
    return max(500, int(n * scale_factor()))


def run_multiprogrammed(
    n_threads: int,
    l2_latency: int = 16,
    decoupled: bool = True,
    seed: int = 0,
    commits_per_thread: int | None = None,
    warmup_per_thread: int | None = None,
    seg_instrs: int = SEG_INSTRS,
    **config_overrides,
) -> SimStats:
    """One paper-section-3 run: rotated SPEC FP95 mix on all contexts."""
    cfg = paper_config(
        n_threads=n_threads,
        decoupled=decoupled,
        l2_latency=l2_latency,
        **config_overrides,
    )
    playlists = multiprogram(n_threads, seg_instrs=seg_instrs, seed=seed)
    proc = Processor(cfg, playlists, seed=seed)
    commits = _scaled(commits_per_thread or COMMITS_PER_THREAD) * n_threads
    warmup = _scaled(warmup_per_thread or WARMUP_PER_THREAD) * n_threads
    return proc.run(
        max_commits=commits, warmup_commits=warmup, max_cycles=4_000_000
    )


def run_single_benchmark(
    bench: str,
    l2_latency: int = 16,
    scale_with_latency: bool = True,
    decoupled: bool = True,
    seed: int = 0,
    commits: int | None = None,
    warmup: int | None = None,
    **config_overrides,
) -> SimStats:
    """One paper-section-2 run: a single benchmark on one context."""
    cfg = paper_config(
        n_threads=1,
        decoupled=decoupled,
        l2_latency=l2_latency,
        scale_with_latency=scale_with_latency,
        **config_overrides,
    )
    commits = _scaled(commits or SINGLE_COMMITS)
    warmup = _scaled(warmup or SINGLE_WARMUP)
    playlists = single_program(bench, n_instrs=max(commits, 20_000), seed=seed)
    proc = Processor(cfg, playlists, seed=seed)
    return proc.run(
        max_commits=commits, warmup_commits=warmup, max_cycles=8_000_000
    )
