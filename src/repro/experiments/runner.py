"""Experiment execution helpers.

Since the engine refactor these are thin wrappers: each call builds a
frozen :class:`~repro.engine.spec.RunSpec` and executes it in-process.
Figure/ablation drivers no longer call these directly — they build a
:class:`~repro.engine.spec.Sweep` and submit the whole batch to an
:class:`~repro.engine.scheduler.Engine` — but the one-run entry points
remain for tests, examples and the ``run``/``bench`` CLI commands.

Instruction budgets scale with ``REPRO_SCALE`` (a float environment
variable, default 1.0, captured into the spec at build time) so the
benchmark harness can run quick smoke sweeps while the full harness
reproduces the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.engine.spec import (
    COMMITS_PER_THREAD,
    SEG_INSTRS,
    SINGLE_COMMITS,
    SINGLE_WARMUP,
    WARMUP_PER_THREAD,
    RunSpec,
    scale_factor,
)
from repro.stats.counters import SimStats

__all__ = [
    "COMMITS_PER_THREAD",
    "SEG_INSTRS",
    "SINGLE_COMMITS",
    "SINGLE_WARMUP",
    "WARMUP_PER_THREAD",
    "run_multiprogrammed",
    "run_single_benchmark",
    "scale_factor",
]


def run_multiprogrammed(
    n_threads: int,
    l2_latency: int = 16,
    decoupled: bool = True,
    seed: int = 0,
    commits_per_thread: int | None = None,
    warmup_per_thread: int | None = None,
    seg_instrs: int = SEG_INSTRS,
    **config_overrides,
) -> SimStats:
    """One paper-section-3 run: rotated SPEC FP95 mix on all contexts."""
    return RunSpec.multiprogrammed(
        n_threads,
        l2_latency=l2_latency,
        decoupled=decoupled,
        seed=seed,
        commits_per_thread=commits_per_thread,
        warmup_per_thread=warmup_per_thread,
        seg_instrs=seg_instrs,
        **config_overrides,
    ).execute()


def run_single_benchmark(
    bench: str,
    l2_latency: int = 16,
    scale_with_latency: bool = True,
    decoupled: bool = True,
    seed: int = 0,
    commits: int | None = None,
    warmup: int | None = None,
    **config_overrides,
) -> SimStats:
    """One paper-section-2 run: a single benchmark on one context."""
    return RunSpec.single(
        bench,
        l2_latency=l2_latency,
        scale_with_latency=scale_with_latency,
        decoupled=decoupled,
        seed=seed,
        commits=commits,
        warmup=warmup,
        **config_overrides,
    ).execute()
