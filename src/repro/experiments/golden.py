"""Golden-stats regression corpus.

A committed corpus of exact cycle-backend results for a small, pinned
sub-grid of the fig1/fig3/fig4 experiments, keyed by
:data:`~repro.engine.spec.SPEC_VERSION`. The tier-1 test
(``tests/test_golden.py``) re-runs every cell live and diffs it against
the corpus, so *any* unintentional change to simulation semantics —
pipeline, memory system, workload synthesis, stats accounting — fails
loudly with the first metric that moved.

Intentional semantics changes bump ``SPEC_VERSION`` (as PR 2 did for the
wrong-path change) and refresh the corpus::

    repro-sim golden --refresh

which rewrites ``tests/golden/*.json``. A stale corpus (its recorded
``spec_version`` differs from the code's) is reported as such rather
than producing 22 confusing per-metric diffs.

Cells pin ``scale=1.0`` and explicit tiny budgets, so the corpus is
independent of the ambient ``REPRO_SCALE`` and cheap enough for tier-1.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine import RunSpec, Sweep, submit
from repro.engine.spec import SPEC_VERSION

SCHEMA = "repro-golden/1"

#: corpus location, relative to the repository root
DEFAULT_DIR = "tests/golden"


def default_root() -> Path:
    """The committed corpus location, anchored to the repository root
    (this file lives at ``src/repro/experiments/``), so the CLI works
    from any working directory; falls back to a cwd-relative path for
    installed-package layouts."""
    repo_root = Path(__file__).resolve().parents[3]
    anchored = repo_root / DEFAULT_DIR
    if anchored.parent.is_dir():
        return anchored
    return Path(DEFAULT_DIR)

#: fig1 sub-grid: the section-2 classification extremes
GOLDEN_BENCHES = ("tomcatv", "swim", "su2cor", "fpppp", "turb3d")
GOLDEN_FIG1_LATENCIES = (16, 256)

#: metrics recorded per cell (floats compared within 1e-9 relative)
METRICS = (
    "cycles", "committed", "ipc", "load_miss_ratio", "store_miss_ratio",
    "perceived_fp_latency", "perceived_int_latency", "bus_utilization",
    "mispredict_rate", "average_slip",
)


def golden_cells() -> dict[str, dict[str, RunSpec]]:
    """``{figure: {cell_label: spec}}`` — the pinned corpus grid."""
    fig1 = {}
    for bench in GOLDEN_BENCHES:
        for lat in GOLDEN_FIG1_LATENCIES:
            spec = RunSpec.single(
                bench, l2_latency=lat, scale=1.0, commits=2500, warmup=500
            )
            fig1[spec.label()] = spec
    fig3 = {}
    for nt in (1, 2, 3, 4):
        spec = RunSpec.multiprogrammed(
            nt, l2_latency=16, scale=1.0,
            commits_per_thread=1500, warmup_per_thread=300,
        )
        fig3[spec.label()] = spec
    fig4 = {}
    for decoupled in (True, False):
        for nt in (1, 2):
            for lat in (16, 128):
                spec = RunSpec.multiprogrammed(
                    nt, l2_latency=lat, decoupled=decoupled, scale=1.0,
                    commits_per_thread=1500, warmup_per_thread=300,
                )
                fig4[spec.label()] = spec
    return {"fig1": fig1, "fig3": fig3, "fig4": fig4}


def _measure(specs: dict[str, RunSpec], engine=None) -> dict[str, dict]:
    results = submit(Sweep(specs.values()), engine)
    out = {}
    for label, spec in specs.items():
        stats = results[spec]
        out[label] = {m: getattr(stats, m) for m in METRICS}
    return out


def build_document(figure: str, engine=None) -> dict:
    """One figure's golden document, from live runs."""
    return {
        "schema": SCHEMA,
        "spec_version": SPEC_VERSION,
        "figure": figure,
        "cells": _measure(golden_cells()[figure], engine),
    }


def path_for(figure: str, root: str | Path = DEFAULT_DIR) -> Path:
    return Path(root) / f"{figure}.json"


def refresh(root: str | Path = DEFAULT_DIR, engine=None) -> list[Path]:
    """(Re)write the whole corpus; returns the written paths."""
    written = []
    for figure in golden_cells():
        path = path_for(figure, root)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(build_document(figure, engine), fh, indent=1,
                      sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


def compare(figure: str, stored: dict, engine=None,
            rel_tol: float = 1e-9) -> list[str]:
    """Diff one figure's live runs against a stored document.

    Returns human-readable mismatch strings (empty = conformant). A
    ``spec_version`` skew is reported as the single actionable mismatch.
    """
    if stored.get("spec_version") != SPEC_VERSION:
        return [
            f"{figure}: corpus is for SPEC_VERSION "
            f"{stored.get('spec_version')!r}, code is {SPEC_VERSION} — "
            "if the semantics change is intentional, run "
            "'repro-sim golden --refresh'"
        ]
    live = _measure(golden_cells()[figure], engine)
    problems = []
    stored_cells = stored.get("cells", {})
    for label in sorted(set(live) | set(stored_cells)):
        if label not in stored_cells:
            problems.append(f"{figure}/{label}: missing from corpus")
            continue
        if label not in live:
            problems.append(f"{figure}/{label}: no longer produced")
            continue
        for metric in METRICS:
            want = stored_cells[label].get(metric)
            got = live[label][metric]
            if want is None:
                problems.append(f"{figure}/{label}: {metric} not recorded")
            elif isinstance(want, float) or isinstance(got, float):
                scale = max(abs(want), abs(got), 1e-12)
                if abs(got - want) / scale > rel_tol:
                    problems.append(
                        f"{figure}/{label}: {metric} {want!r} -> {got!r}"
                    )
            elif got != want:
                problems.append(
                    f"{figure}/{label}: {metric} {want!r} -> {got!r}"
                )
    return problems


def verify(root: str | Path = DEFAULT_DIR, engine=None) -> list[str]:
    """Diff the whole corpus; returns all mismatches."""
    problems = []
    for figure in golden_cells():
        path = path_for(figure, root)
        if not path.is_file():
            problems.append(
                f"{figure}: {path} missing — run 'repro-sim golden --refresh'"
            )
            continue
        try:
            with open(path, encoding="utf-8") as fh:
                stored = json.load(fh)
        except (OSError, ValueError) as exc:
            problems.append(f"{figure}: unreadable corpus file ({exc})")
            continue
        problems.extend(compare(figure, stored, engine))
    return problems
