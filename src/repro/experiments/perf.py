"""Simulator performance benchmark harness (``repro-sim perf``).

Measures how fast the *simulator* runs — simulated cycles per second and
committed instructions per second — on a pinned set of workloads chosen to
cover the engine room's distinct regimes, and records the results as a
``BENCH_*.json`` document that seeds the repo's performance trajectory
(one committed baseline per PR that touches the hot path; currently
``benchmarks/perf/BENCH_PR2.json``).

The headline workload is the paper's Figure-1 ``su2cor`` point at 1 thread
and L2 = 256 — the canonical "decoupling degraded, machine mostly idle"
case the event-horizon fast-forward targets.  For that workload the
harness runs the simulation twice, with fast-forward enabled and with the
plain cycle-by-cycle walk, and reports the wall-clock speedup (the two are
bit-identical in every architectural statistic, so this is a pure
performance comparison).

Schema of the emitted document (``schema`` = ``repro-perf/1``)::

    {
      "schema": "repro-perf/1",
      "quick": false,                  # --quick budgets?
      "workloads": {
        "<name>": {
          "label":  "...",             # human-readable spec label
          "wall_s": 1.23,              # run() wall clock, fast-forward on
          "cycles": 456789,            # simulated cycles (measured region)
          "committed": 30000,          # committed instructions
          "cycles_per_s": 370000.0,    # simulation throughput
          "commits_per_s": 24000.0,
          "ff_jumps": 1500,            # fast-forward diagnostics
          "ff_cycles_skipped": 110000
        }, ...
      },
      "headline": {
        "workload": "fig1_su2cor_1T_L2=256",
        "wall_s_fast_forward": 0.45,
        "wall_s_stepping": 0.95,
        "speedup": 2.1,               # stepping / fast-forward
        "bit_identical": true         # SimStats.comparable_dict() equality
      },
      "forked_sweep": {               # checkpoint/forked-sweep benchmark
        "n_cells": 4,                 # warm-dominated grid size
        "wall_s_cold": 3.2,           # every cell simulates its warm-up
        "wall_s_forked": 1.1,         # one warm-up + snapshot fan-out
        "speedup": 2.9,               # cold / forked
        "n_forked": 3,                # cells that restored the snapshot
        "warmup_cycles_saved": 2.1e6,
        "identical": true             # forked == cold, per cell, exactly
      }
    }

Regression checking (CI's perf-smoke job) compares throughput per
workload and the headline speedup against a baseline document and fails
on a drop larger than the tolerance (default 30 %).  Only ratios of the
same machine are meaningful; absolute throughputs move with hardware.
"""

from __future__ import annotations

import cProfile
import io
import json
import math
import pstats
import time

from repro.engine.spec import RunSpec
from repro.stats.counters import SimStats
from repro.workloads.spec import workload_preset

SCHEMA = "repro-perf/1"

#: the headline workload name (fast-forward speedup is measured on it)
HEADLINE = "fig1_su2cor_1T_L2=256"


def perf_specs(quick: bool = False) -> dict[str, RunSpec]:
    """The pinned workload set, name -> spec.

    ``quick`` halves budgets for CI smoke runs — small enough to keep the
    job fast, large enough that the headline speedup is not dominated by
    timing noise on a short measured region. Both modes pin ``scale=1.0``
    explicitly so ``REPRO_SCALE`` cannot skew a comparison against a
    committed baseline.
    """
    f = 0.5 if quick else 1.0
    s = lambda n: max(500, int(n * f))  # noqa: E731 - tiny local helper
    return {
        # headline: fig1 single-benchmark point, resources scaled with
        # latency, machine idle most cycles (decoupling degraded)
        HEADLINE: RunSpec.single(
            "su2cor", l2_latency=256, scale=1.0,
            commits=s(30_000), warmup=s(15_000),
        ),
        # a good decoupler at the same latency: busy pipeline, little idle
        "fig1_tomcatv_1T_L2=256": RunSpec.single(
            "tomcatv", l2_latency=256, scale=1.0,
            commits=s(30_000), warmup=s(15_000),
        ),
        # the Figure-3 regime: multithreaded, short latency, issue-bound
        "fig3_4T_L2=16": RunSpec.multiprogrammed(
            4, l2_latency=16, scale=1.0,
            commits_per_thread=s(15_000), warmup_per_thread=s(8_000),
        ),
        # non-decoupled long-latency machine: unified queues, idle-heavy
        "fig4_2T_L2=128_nondec": RunSpec.multiprogrammed(
            2, l2_latency=128, decoupled=False, scale=1.0,
            commits_per_thread=s(15_000), warmup_per_thread=s(8_000),
        ),
        # memory-bound regime (PR 5): four thrashing threads hammer the
        # composed hierarchy — the miss path, MSHR churn and bus
        # scheduling dominate, so facade-layer regressions show up here
        # first
        "mem_thrash4_L2=64": RunSpec.from_workload(
            workload_preset("thrash4"), l2_latency=64, scale=1.0,
            commits=s(10_000), warmup=s(4_000),
        ),
        # latency-dominated 4T machine (PR 10): four threads share four
        # MSHRs against 256-cycle misses, so ready loads spend most
        # cycles structurally *refused* — exactly the partial-idle
        # windows the binary all-idle fast-forward could never skip
        # (a ready head made the cycle ineligible) and the event-horizon
        # scheduler jumps wholesale
        "hilat_4T_L2=256": RunSpec.multiprogrammed(
            4, l2_latency=256, scale=1.0, mshrs=4,
            commits_per_thread=s(10_000), warmup_per_thread=s(5_000),
        ),
    }


def measure(
    spec: RunSpec, fast_forward: bool = True, repeats: int = 1
) -> tuple[SimStats, dict]:
    """Run one spec, timing the *measured region* only.

    Warm-up is simulated first, untimed; ``reset_stats()`` zeroes the
    fast-forward diagnostics with the statistics, so every reported
    number — wall clock, cycles, commits, throughput, skip counts —
    describes the same region. Workload construction and machine setup
    are likewise excluded.  ``repeats`` re-runs the whole measurement and
    keeps the *minimum* wall clock (simulations are deterministic, so the
    fastest run is the least-noise estimate of the same work); used for
    the headline speedup, which CI gates on.
    Returns ``(stats, measurement_dict)``.
    """
    wall = worst = None
    for _ in range(max(1, repeats)):
        proc, run_kwargs = spec.instantiate()
        warmup = run_kwargs.pop("warmup_commits", 0)
        if warmup:
            proc.run(max_commits=warmup, max_cycles=None,
                     fast_forward=fast_forward)
            proc.reset_stats()
        t0 = time.perf_counter()
        stats = proc.run(fast_forward=fast_forward, **run_kwargs)
        elapsed = time.perf_counter() - t0
        if wall is None or elapsed < wall:
            wall = elapsed
        if worst is None or elapsed > worst:
            worst = elapsed
    return stats, {
        "label": spec.label(),
        "wall_s": round(wall, 4),
        # best-to-worst scatter across the repeats: a noisy-machine
        # indicator (the run_perf caller warns above 10%)
        "wall_s_spread": round((worst - wall) / wall, 3) if wall > 0 else 0.0,
        "cycles": stats.cycles,
        "committed": stats.committed,
        "cycles_per_s": round(stats.cycles / wall, 1) if wall > 0 else 0.0,
        "commits_per_s": round(stats.committed / wall, 1) if wall > 0 else 0.0,
        "ff_jumps": proc.ff_jumps,
        "ff_cycles_skipped": proc.ff_cycles_skipped,
    }


def profile_workload(spec: RunSpec, top_n: int = 15) -> list[str]:
    """One cProfile'd run of ``spec``'s measured region; returns the
    ``tottime``-sorted top-``top_n`` report lines followed by a per-stage
    tick-time breakdown (cumulative seconds and share per pipeline
    stage), so a regression names the stage, not just the workload.

    Run *separately* from :func:`measure` — the profiler's tracing
    overhead would distort every wall-clock number it shared a run with.
    """
    proc, run_kwargs = spec.instantiate()
    warmup = run_kwargs.pop("warmup_commits", 0)
    if warmup:
        proc.run(max_commits=warmup, max_cycles=None)
        proc.reset_stats()
    profiler = cProfile.Profile()
    profiler.enable()
    proc.run(**run_kwargs)
    profiler.disable()
    buf = io.StringIO()
    ps = pstats.Stats(profiler, stream=buf)
    ps.sort_stats("tottime").print_stats(top_n)
    # keep the header + table rows, drop pstats' leading blank chatter
    lines = [ln.rstrip() for ln in buf.getvalue().splitlines()]
    out = [ln for ln in lines if ln][:top_n + 6]
    # per-stage breakdown: each stage's tick is its own code object, so
    # the raw pstats table (keyed by filename/lineno/name) resolves the
    # bound methods the run loop actually called back to stage names
    tick_of = {}
    for stage in proc.stages:
        code = stage.tick.__func__.__code__
        tick_of[(code.co_filename, code.co_firstlineno, code.co_name)] = (
            stage.name
        )
    rows = []
    total = 0.0
    for key, (_cc, nc, _tt, ct, _callers) in ps.stats.items():
        name = tick_of.get(key)
        if name is not None:
            rows.append((ct, nc, name))
            total += ct
    if rows:
        rows.sort(reverse=True)
        out.append("per-stage tick time (cumulative):")
        for ct, nc, name in rows:
            share = ct / total if total else 0.0
            out.append(
                f"  {name:<16} {ct:8.3f}s  {share * 100:5.1f}%  "
                f"({nc:,} ticks)"
            )
    return out


#: measured-commit budgets (pre-scale, per cell) of the forked-sweep grid
FORKED_COMMITS_AXIS = (1000, 1500, 2000, 2500)


def forked_sweep_specs(quick: bool = False) -> list[RunSpec]:
    """The forked-sweep benchmark grid: the fig1 headline regime
    (``su2cor`` at 1 thread, L2 = 256, resources scaled with latency)
    with a long shared warm-up and a small measured-budget axis.

    Warm-up dominates every cell, so the grid is the best case the
    ``fork_warmup`` scheduler path was built for — and the honest one:
    it is exactly the "re-sweep the measured budget over an
    already-characterized warm prefix" pattern of real use.  The
    workload pins ``seg_instrs`` explicitly because ``RunSpec.single``
    derives it from ``commits``, which would leak the measured budget
    into the warm-up prefix and break the sharing.
    """
    from repro.workloads.spec import WorkloadSpec

    f = 0.5 if quick else 1.0
    s = lambda n: max(500, int(n * f))  # noqa: E731 - tiny local helper
    wl = WorkloadSpec.single("su2cor", seg_instrs=20_000)
    return [
        RunSpec.from_workload(
            wl, l2_latency=256, scale_with_latency=True, scale=1.0,
            commits=s(c), warmup=s(20_000),
        )
        for c in FORKED_COMMITS_AXIS
    ]


def measure_forked_sweep(quick: bool = False, repeats: int = 1) -> dict:
    """Time the forked-sweep grid cold vs forked; returns the
    ``forked_sweep`` document section.

    Both passes run serially on a **fresh**, cache-less engine each
    repeat (the in-memory memo would otherwise serve the second repeat
    for free), so the comparison isolates exactly one variable: each
    cell simulating its own warm-up vs restoring the group snapshot.
    Per-cell results must be byte-identical — ``identical`` is part of
    the document and CI fails on ``false``.
    """
    from repro.engine.scheduler import Engine

    specs = forked_sweep_specs(quick=quick)
    cold_wall = forked_wall = None
    identical = True
    n_forked = cycles_saved = 0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        cold = Engine(workers=1).map(specs)
        elapsed = time.perf_counter() - t0
        if cold_wall is None or elapsed < cold_wall:
            cold_wall = elapsed
        t0 = time.perf_counter()
        forked = Engine(workers=1, fork_warmup=2).map(specs)
        elapsed = time.perf_counter() - t0
        if forked_wall is None or elapsed < forked_wall:
            forked_wall = elapsed
        n_forked = forked.n_forked
        cycles_saved = forked.warmup_cycles_saved
        identical = identical and all(
            forked[s].to_dict() == cold[s].to_dict() for s in specs
        )
    return {
        "n_cells": len(specs),
        "labels": [s.label() for s in specs],
        "wall_s_cold": round(cold_wall, 4),
        "wall_s_forked": round(forked_wall, 4),
        "speedup": (
            round(cold_wall / forked_wall, 2) if forked_wall > 0 else 0.0
        ),
        "n_forked": n_forked,
        "warmup_cycles_saved": cycles_saved,
        "identical": identical,
    }


def run_perf(
    quick: bool = False, progress=None, reps: int = 3,
    profile: bool = False, profile_top: int = 15,
) -> dict:
    """Measure the pinned workload set; returns the perf document.

    Every workload (and the headline's per-cycle stepping run) is
    measured ``reps`` times keeping the best wall clock, so committed
    baselines and the ``--check`` gate aren't single-sample noisy.  With
    ``profile=True`` each workload also gets one separate cProfile'd run
    whose top-``profile_top`` report lands in the document (CI uploads it
    as the perf-smoke artifact, so a regression comes with the profile
    that explains it).
    """
    say = progress or (lambda msg: None)
    doc: dict = {
        "schema": SCHEMA, "quick": quick, "reps": reps, "workloads": {},
    }
    specs = perf_specs(quick=quick)
    for name, spec in specs.items():
        stats, m = measure(spec, fast_forward=True, repeats=reps)
        doc["workloads"][name] = m
        say(f"{name}: {m['cycles_per_s']:,.0f} cycles/s "
            f"({m['wall_s']:.2f}s wall)")
        if reps > 1 and m["wall_s_spread"] > 0.10:
            say(f"WARNING {name}: best-of-{reps} wall times spread "
                f"{m['wall_s_spread'] * 100:.0f}% (>10%) — the machine "
                "looks noisy; treat throughput figures with suspicion")
        if profile:
            m["profile"] = profile_workload(spec, top_n=profile_top)
            say(f"{name}: profiled ({len(m['profile'])} report lines)")
        if name == HEADLINE:
            step_stats, step_m = measure(spec, fast_forward=False,
                                         repeats=reps)
            speedup = (
                step_m["wall_s"] / m["wall_s"] if m["wall_s"] > 0 else 0.0
            )
            doc["headline"] = {
                "workload": name,
                "wall_s_fast_forward": m["wall_s"],
                "wall_s_stepping": step_m["wall_s"],
                "speedup": round(speedup, 2),
                # architectural counters only: the scheduler's own
                # ff_jumps/ff_cycles_skipped differ between modes by design
                "bit_identical": (
                    stats.comparable_dict() == step_stats.comparable_dict()
                ),
            }
            say(f"{name}: fast-forward speedup {speedup:.2f}x "
                f"(bit-identical: {doc['headline']['bit_identical']})")
    fs = measure_forked_sweep(quick=quick, repeats=min(reps, 2))
    doc["forked_sweep"] = fs
    say(f"forked sweep ({fs['n_cells']} cells): {fs['speedup']:.2f}x vs "
        f"cold ({fs['wall_s_cold']:.2f}s -> {fs['wall_s_forked']:.2f}s, "
        f"identical: {fs['identical']})")
    return doc


def check_regression(
    doc: dict, baseline: dict, tolerance: float = 0.30,
    ratios_only: bool = False,
) -> list[str]:
    """Compare a perf document against a baseline.

    Returns a list of failure strings (empty = pass).  Checks, per
    workload present in both documents, that simulation throughput did not
    drop by more than ``tolerance``; that the headline speedup did not
    either; and that the headline runs stayed bit-identical.  Every
    failure names the offending workload and the tolerance it broke.

    ``ratios_only`` replaces the absolute-throughput comparison with a
    machine-independent one: each workload's cycles/s *normalized by the
    document's own geometric mean* is compared against the baseline's
    normalized figure.  A uniform hardware-speed difference cancels out
    of the normalization, while one workload regressing against the
    others (a facade-layer slowdown, a lost specialization) still fails —
    CI gates against the committed baseline this way.
    """
    failures: list[str] = []
    if bool(doc.get("quick")) != bool(baseline.get("quick")):
        # budget skew alone moves every metric; like-for-like or nothing
        return [
            "budget-mode mismatch: document is "
            f"{'quick' if doc.get('quick') else 'full'} but baseline is "
            f"{'quick' if baseline.get('quick') else 'full'} — gate a "
            "--quick run against a quick baseline (and vice versa)"
        ]
    floor = 1.0 - tolerance
    base_workloads = baseline.get("workloads", {})
    rates = {
        name: m.get("cycles_per_s") or 0.0
        for name, m in doc.get("workloads", {}).items()
    }
    base_rates = {
        name: (base_workloads.get(name) or {}).get("cycles_per_s") or 0.0
        for name in rates
    }
    common = [n for n in rates if rates[n] > 0 and base_rates[n] > 0]
    if ratios_only:
        # normalize each workload by its own document's geometric mean;
        # needs >= 2 workloads for the normalization to mean anything
        if len(common) >= 2:
            gm = math.exp(
                sum(math.log(rates[n]) for n in common) / len(common)
            )
            base_gm = math.exp(
                sum(math.log(base_rates[n]) for n in common) / len(common)
            )
            for name in common:
                rel = rates[name] / gm
                base_rel = base_rates[name] / base_gm
                if rel < base_rel * floor:
                    failures.append(
                        f"{name}: normalized throughput {rel:.3f} is "
                        f"{(1 - rel / base_rel) * 100:.0f}% below baseline "
                        f"{base_rel:.3f} (tolerance {tolerance * 100:.0f}%, "
                        "ratios-only: cycles/s relative to the run's own "
                        "geometric mean)"
                    )
    else:
        for name in common:
            rate, base_rate = rates[name], base_rates[name]
            if rate < base_rate * floor:
                failures.append(
                    f"{name}: {rate:,.0f} cycles/s is "
                    f"{(1 - rate / base_rate) * 100:.0f}% below baseline "
                    f"{base_rate:,.0f} (tolerance {tolerance * 100:.0f}%)"
                )
    head = doc.get("headline") or {}
    base_head = baseline.get("headline") or {}
    if not head.get("bit_identical", True):
        failures.append(
            "headline: fast-forward statistics diverged from per-cycle "
            "stepping (bit_identical=false)"
        )
    base_speedup = base_head.get("speedup") or 0.0
    speedup = head.get("speedup") or 0.0
    if base_speedup > 0 and speedup < base_speedup * floor:
        failures.append(
            f"headline speedup {speedup:.2f}x is more than "
            f"{tolerance * 100:.0f}% below baseline {base_speedup:.2f}x"
        )
    fs = doc.get("forked_sweep") or {}
    base_fs = baseline.get("forked_sweep") or {}
    if fs and not fs.get("identical", True):
        failures.append(
            "forked sweep: per-cell results diverged from cold runs "
            "(identical=false) — the snapshot restore is not bit-exact"
        )
    base_fs_speedup = base_fs.get("speedup") or 0.0
    fs_speedup = fs.get("speedup") or 0.0
    if base_fs_speedup > 0 and fs_speedup < base_fs_speedup * floor:
        failures.append(
            f"forked-sweep speedup {fs_speedup:.2f}x is more than "
            f"{tolerance * 100:.0f}% below baseline {base_fs_speedup:.2f}x"
        )
    return failures


def write_doc(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_doc(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
