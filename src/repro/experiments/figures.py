"""Per-figure experiment drivers.

Each ``figN()`` function describes the simulations behind one figure of
the paper as a batch of :class:`~repro.engine.spec.RunSpec`, submits the
whole batch to the experiment engine **once**, and assembles a plain-dict
data structure from the returned mapping; each ``render_figN()`` turns
that into the same rows/series the paper plots, as text tables. The CLI
(``repro-sim figure figN``) and the benchmark harness both call these.

Pass ``engine=`` to control parallelism and caching; the default is a
serial, cache-less engine so results are bit-for-bit reproducible in unit
tests. Result ordering never depends on completion order, so any worker
count renders identical tables.

Figure inventory (see DESIGN.md for the per-experiment index):

* Figure 1 (section 2, single-threaded, resources scaled with latency):
  a) average perceived FP-load miss latency vs L2 latency per benchmark,
  b) same for integer loads,
  c) load/store miss ratios at L2 = 256,
  d) % IPC loss relative to L2 = 1.
* Figure 3: issue-slot breakdown per unit for 1-6 threads at L2 = 16.
* Figure 4: perceived latency / % IPC loss / IPC for {1..4 threads} x
  {decoupled, non-decoupled} over L2 latencies 1-256.
* Figure 5: IPC vs thread count, decoupled vs non-decoupled, at L2 = 16
  (1-7 threads) and L2 = 64 (1-16 threads), plus bus utilization.
"""

from __future__ import annotations

from repro.engine import RunSpec, Sweep, submit
from repro.isa.opclass import Unit
from repro.stats.report import format_table
from repro.workloads.profiles import BENCH_ORDER

#: the paper's L2 latency sweep points
LATENCIES = (1, 16, 32, 64, 128, 256)


# --------------------------------------------------------------------- figure 1

def fig1(latencies=LATENCIES, benches=None, seed: int = 0, engine=None,
         backend: str = "cycle") -> dict:
    """Section-2 sweep: per-benchmark latency-hiding effectiveness."""
    benches = list(benches or BENCH_ORDER)
    specs = {
        (bench, lat): RunSpec.single(
            bench, l2_latency=lat, seed=seed, backend=backend
        )
        for bench in benches
        for lat in latencies
    }
    results = submit(Sweep(specs.values()), engine)
    out: dict = {"latencies": list(latencies), "benches": benches, "runs": {}}
    for bench in benches:
        per_lat = {}
        for lat in latencies:
            stats = results[specs[bench, lat]]
            per_lat[lat] = {
                "ipc": stats.ipc,
                "perceived_fp": stats.perceived_fp_latency,
                "perceived_int": stats.perceived_int_latency,
                "load_miss_ratio": stats.load_miss_ratio,
                "store_miss_ratio": stats.store_miss_ratio,
                "bus": stats.bus_utilization,
                "slip": stats.average_slip,
            }
        out["runs"][bench] = per_lat
    return out


def render_fig1(data: dict) -> str:
    lats = data["latencies"]
    blocks = []
    for key, title in (
        ("perceived_fp", "Figure 1-a: avg perceived FP-load miss latency (cycles)"),
        ("perceived_int", "Figure 1-b: avg perceived integer-load miss latency (cycles)"),
    ):
        rows = [
            [b] + [data["runs"][b][lat][key] for lat in lats]
            for b in data["benches"]
        ]
        blocks.append(
            format_table(["bench"] + [f"L2={lat}" for lat in lats], rows, title)
        )
    big = max(lats)
    rows = [
        [
            b,
            data["runs"][b][big]["load_miss_ratio"] * 100,
            data["runs"][b][big]["store_miss_ratio"] * 100,
        ]
        for b in data["benches"]
    ]
    blocks.append(
        format_table(
            ["bench", "load miss %", "store miss %"],
            rows,
            f"Figure 1-c: miss ratios at L2 = {big}",
        )
    )
    rows = []
    for b in data["benches"]:
        base = data["runs"][b][lats[0]]["ipc"]
        rows.append(
            [b]
            + [
                (data["runs"][b][lat]["ipc"] / base - 1.0) * 100 if base else 0.0
                for lat in lats
            ]
        )
    blocks.append(
        format_table(
            ["bench"] + [f"L2={lat}" for lat in lats],
            rows,
            "Figure 1-d: % IPC change relative to L2 = 1",
        )
    )
    return "\n\n".join(blocks)


# --------------------------------------------------------------------- figure 3

def fig3(thread_counts=(1, 2, 3, 4, 5, 6), seed: int = 0, engine=None,
         backend: str = "cycle") -> dict:
    """Issue-slot breakdown vs thread count (decoupled, L2 = 16)."""
    specs = {
        nt: RunSpec.multiprogrammed(
            nt, l2_latency=16, decoupled=True, seed=seed, backend=backend
        )
        for nt in thread_counts
    }
    results = submit(Sweep(specs.values()), engine)
    out: dict = {"threads": list(thread_counts), "runs": {}}
    for nt in thread_counts:
        stats = results[specs[nt]]
        out["runs"][nt] = {
            "ipc": stats.ipc,
            "ap": stats.slot_fractions(Unit.AP),
            "ep": stats.slot_fractions(Unit.EP),
            "bus": stats.bus_utilization,
            "load_miss_ratio": stats.load_miss_ratio,
        }
    return out


def render_fig3(data: dict) -> str:
    header = [
        "threads", "IPC",
        "AP useful%", "AP mem%", "AP fu%", "AP other%", "AP wp/idle%",
        "EP useful%", "EP mem%", "EP fu%", "EP other%", "EP wp/idle%",
    ]
    rows = []
    for nt in data["threads"]:
        r = data["runs"][nt]
        ap, ep = r["ap"], r["ep"]
        rows.append([
            nt, r["ipc"],
            ap["useful"] * 100, ap["wait_mem"] * 100, ap["wait_fu"] * 100,
            ap["other"] * 100, (ap["wrong_path"] + ap["idle"]) * 100,
            ep["useful"] * 100, ep["wait_mem"] * 100, ep["wait_fu"] * 100,
            ep["other"] * 100, (ep["wrong_path"] + ep["idle"]) * 100,
        ])
    return format_table(
        header, rows, "Figure 3: issue-slot breakdown (decoupled, L2 = 16)"
    )


# --------------------------------------------------------------------- figure 4

def fig4(
    latencies=LATENCIES, thread_counts=(1, 2, 3, 4), seed: int = 0,
    engine=None, backend: str = "cycle"
) -> dict:
    """Latency tolerance of the 8 configurations (sections 3.2)."""
    sweep = Sweep.grid(
        RunSpec.multiprogrammed,
        decoupled=(True, False),
        n_threads=thread_counts,
        l2_latency=latencies,
        seed=seed,
        backend=backend,
    )
    results = submit(sweep, engine)
    out: dict = {
        "latencies": list(latencies),
        "threads": list(thread_counts),
        "runs": {},
    }
    for spec in sweep:
        out["runs"].setdefault((spec.decoupled, spec.n_threads), {})[
            spec.l2_latency
        ] = {
            "ipc": results[spec].ipc,
            "perceived": results[spec].perceived_load_latency,
            "bus": results[spec].bus_utilization,
        }
    return out


def _fig4_rows(data: dict, value) -> list[list]:
    rows = []
    for decoupled in (False, True):
        for nt in data["threads"]:
            run = data["runs"][(decoupled, nt)]
            label = f"{nt}T {'dec' if decoupled else 'non-dec'}"
            rows.append([label] + [value(run, lat) for lat in data["latencies"]])
    return rows


def render_fig4(data: dict) -> str:
    lats = data["latencies"]
    headers = ["config"] + [f"L2={lat}" for lat in lats]
    blocks = [
        format_table(
            headers,
            _fig4_rows(data, lambda run, lat: run[lat]["perceived"]),
            "Figure 4-a: avg perceived load miss latency (cycles)",
        ),
        format_table(
            headers,
            _fig4_rows(
                data,
                lambda run, lat: (run[lat]["ipc"] / run[lats[0]]["ipc"] - 1) * 100
                if run[lats[0]]["ipc"] else 0.0,
            ),
            "Figure 4-b: % IPC change relative to L2 = 1",
        ),
        format_table(
            headers,
            _fig4_rows(data, lambda run, lat: run[lat]["ipc"]),
            "Figure 4-c: IPC",
        ),
    ]
    return "\n\n".join(blocks)


# --------------------------------------------------------------------- figure 5

def fig5(
    threads_16=tuple(range(1, 8)),
    threads_64=tuple(range(1, 17)),
    seed: int = 0,
    engine=None,
    backend: str = "cycle",
) -> dict:
    """Thread-count sweeps at L2 = 16 and L2 = 64 (section 3.3)."""
    series = {}
    sweep = Sweep()
    for lat, counts in ((16, threads_16), (64, threads_64)):
        for decoupled in (True, False):
            label = f"L2={lat} {'dec' if decoupled else 'non-dec'}"
            series[label] = {
                nt: RunSpec.multiprogrammed(
                    nt, l2_latency=lat, decoupled=decoupled, seed=seed,
                    backend=backend,
                )
                for nt in counts
            }
            sweep = sweep + Sweep(series[label].values())
    results = submit(sweep, engine)
    out: dict = {"series": {}}
    for label, specs in series.items():
        out["series"][label] = {
            nt: {
                "ipc": results[spec].ipc,
                "bus": results[spec].bus_utilization,
            }
            for nt, spec in specs.items()
        }
    return out


def render_fig5(data: dict) -> str:
    blocks = []
    for label, pts in data["series"].items():
        rows = [
            [nt, p["ipc"], p["bus"] * 100] for nt, p in sorted(pts.items())
        ]
        blocks.append(
            format_table(
                ["threads", "IPC", "bus util %"],
                rows,
                f"Figure 5 series: {label}",
            )
        )
    return "\n\n".join(blocks)


FIGURES = {
    "fig1": (fig1, render_fig1),
    "fig3": (fig3, render_fig3),
    "fig4": (fig4, render_fig4),
    "fig5": (fig5, render_fig5),
}
