"""Differential conformance: the analytic backend vs the cycle backend.

Runs both backends over the paper's Figure-4 grid — {1..4 threads} x
{decoupled, non-decoupled} x L2 latencies — and reports per-cell and
aggregate error on the three headline metrics:

* **IPC** — relative error; the gating aggregate is the *mean absolute
  relative error*, which must stay within :data:`TOLERANCE_IPC`.
* **Perceived load-miss latency** — relative error with a
  :data:`PERCEIVED_FLOOR`-cycle floor in the denominator (relative error
  against a near-zero latency is noise, not signal).
* **Bus utilization** — absolute error (the metric is already a
  fraction).

The driver also measures wall-clock: the cycle grid through the engine
(cache-aware — per-run cost is only reported when something actually
simulated) and a :data:`TIMING_SPECS`-point analytic sweep executed
directly, from which the headline ``sweep speedup`` is derived. The CLI
(``repro-sim conformance``) exits non-zero when the IPC tolerance is
exceeded, which is what the CI conformance smoke step gates on.
"""

from __future__ import annotations

import time

from repro.engine import RunSpec, Sweep, submit
from repro.memory.spec import mem_preset
from repro.router.errmodel import features_of

#: gating tolerance: mean absolute relative IPC error over the grid
TOLERANCE_IPC = 0.15
#: perceived-latency denominators are floored here (cycles)
PERCEIVED_FLOOR = 5.0
#: size of the analytic timing sweep (the "1000-spec sweep" headline)
TIMING_SPECS = 1000

#: the Figure-4 grid (full) and the CI smoke subset (quick)
FULL_THREADS = (1, 2, 3, 4)
FULL_LATENCIES = (1, 16, 32, 64, 128, 256)
QUICK_THREADS = (1, 4)
QUICK_LATENCIES = (16, 64, 256)

#: the finite-L2 extension: threads coupled through a shared finite
#: cache (the non-classic hierarchy the model must track, not ignore)
FINITE_THREADS = (1, 4)
FINITE_LATENCIES = (16, 64, 256)
QUICK_FINITE_LATENCIES = (64,)


def conformance_grid(quick: bool = False, seed: int = 0) -> Sweep:
    """The cycle-backend specs of the conformance grid: the paper's
    Figure-4 cells plus finite-L2 cells exercising the composable
    hierarchy on both backends."""
    classic = Sweep.grid(
        RunSpec.multiprogrammed,
        decoupled=(True, False),
        n_threads=QUICK_THREADS if quick else FULL_THREADS,
        l2_latency=QUICK_LATENCIES if quick else FULL_LATENCIES,
        seed=seed,
    )
    finite = Sweep.grid(
        RunSpec.multiprogrammed,
        decoupled=(True,) if quick else (True, False),
        n_threads=FINITE_THREADS,
        l2_latency=QUICK_FINITE_LATENCIES if quick else FINITE_LATENCIES,
        mem=mem_preset("l2_finite"),
        seed=seed,
    )
    return classic + finite


def _timing_sweep(n: int, seed: int) -> list[RunSpec]:
    """``n`` distinct analytic specs spanning the model's input space.

    Latency varies fastest so the whole sweep shares a handful of
    characterization walks — the regime the fast model is built for.
    """
    specs: list[RunSpec] = []
    lat = 1
    while len(specs) < n:
        for decoupled in (True, False):
            for nt in FULL_THREADS:
                if len(specs) >= n:
                    break
                specs.append(
                    RunSpec.multiprogrammed(
                        nt, l2_latency=lat, decoupled=decoupled,
                        seed=seed, backend="analytic",
                    )
                )
        lat += 1
    return specs


def run_conformance(
    quick: bool = False,
    seed: int = 0,
    engine=None,
    tolerance: float = TOLERANCE_IPC,
    timing_specs: int = TIMING_SPECS,
    progress=None,
) -> dict:
    """Run the differential suite; returns a JSON-safe document."""
    say = progress or (lambda msg: None)
    grid = conformance_grid(quick=quick, seed=seed)

    say(f"cycle backend: {len(grid)} runs")
    t0 = time.perf_counter()
    cycle_results = submit(grid, engine)
    cycle_wall = time.perf_counter() - t0

    say("analytic backend: same grid")
    t0 = time.perf_counter()
    analytic = {
        spec: spec.with_backend("analytic").execute() for spec in grid
    }
    analytic_grid_wall = time.perf_counter() - t0

    cells = []
    ipc_errs, perc_errs, bus_errs = [], [], []
    for spec in grid:
        c = cycle_results[spec]
        a = analytic[spec]
        if c.ipc:
            ipc_err = abs(a.ipc - c.ipc) / c.ipc
        else:
            # a dead reference cell is maximal disagreement, never a
            # free pass (unless the model also predicts zero)
            ipc_err = 0.0 if a.ipc == 0 else 1.0
        perc_err = abs(
            a.perceived_load_latency - c.perceived_load_latency
        ) / max(c.perceived_load_latency, PERCEIVED_FLOOR)
        bus_err = abs(a.bus_utilization - c.bus_utilization)
        ipc_errs.append(ipc_err)
        perc_errs.append(perc_err)
        bus_errs.append(bus_err)
        cells.append(
            {
                "label": spec.label(),
                # the error-model features (repro.router.errmodel) ride
                # along so a corpus distilled from this document trains
                # without re-deriving them from labels
                "features": features_of(spec),
                "cycle": {
                    "ipc": c.ipc,
                    "perceived": c.perceived_load_latency,
                    "bus": c.bus_utilization,
                    "load_miss_ratio": c.load_miss_ratio,
                },
                "analytic": {
                    "ipc": a.ipc,
                    "perceived": a.perceived_load_latency,
                    "bus": a.bus_utilization,
                    "load_miss_ratio": a.load_miss_ratio,
                },
                "ipc_err": ipc_err,
                "perceived_err": perc_err,
                "bus_abs_err": bus_err,
            }
        )

    n = len(cells)
    mean_ipc_err = sum(ipc_errs) / n
    doc: dict = {
        "schema": "repro-conformance/1",
        "quick": quick,
        "seed": seed,
        "n_cells": n,
        "tolerance_ipc": tolerance,
        "mean_abs_ipc_err": mean_ipc_err,
        "max_abs_ipc_err": max(ipc_errs),
        "mean_perceived_err": sum(perc_errs) / n,
        "mean_bus_abs_err": sum(bus_errs) / n,
        "passed": mean_ipc_err <= tolerance,
        "cells": cells,
    }

    # -- wall-clock comparison ---------------------------------------------
    n_executed = cycle_results.n_executed
    timing: dict = {
        "cycle_grid_wall_s": round(cycle_wall, 3),
        "cycle_runs_executed": n_executed,
        "cycle_runs_cached": cycle_results.n_cached,
        "analytic_grid_wall_s": round(analytic_grid_wall, 3),
    }
    if timing_specs:
        say(f"analytic timing sweep: {timing_specs} specs")
        sweep = _timing_sweep(timing_specs, seed)
        t0 = time.perf_counter()
        for spec in sweep:
            spec.execute()
        # floor guards against clock granularity on fast machines
        analytic_wall = max(time.perf_counter() - t0, 1e-9)
        timing["analytic_sweep_specs"] = len(sweep)
        timing["analytic_sweep_wall_s"] = round(analytic_wall, 3)
        timing["analytic_specs_per_s"] = round(len(sweep) / analytic_wall, 1)
        if n_executed:
            per_cycle_run = cycle_wall / n_executed
            projected = per_cycle_run * len(sweep)
            timing["cycle_per_run_s"] = round(per_cycle_run, 3)
            timing["sweep_speedup"] = round(projected / analytic_wall, 1)
    doc["timing"] = timing
    return doc


def render_conformance(doc: dict) -> str:
    """Text report for one conformance document."""
    from repro.stats.report import format_table

    rows = [
        [
            cell["label"],
            cell["cycle"]["ipc"],
            cell["analytic"]["ipc"],
            cell["ipc_err"] * 100,
            cell["cycle"]["perceived"],
            cell["analytic"]["perceived"],
            cell["cycle"]["bus"],
            cell["analytic"]["bus"],
        ]
        for cell in doc["cells"]
    ]
    out = [
        format_table(
            ["config", "IPC cyc", "IPC ana", "err%",
             "perc cyc", "perc ana", "bus cyc", "bus ana"],
            rows,
            "Conformance: analytic vs cycle backend (Figure-4 grid)",
        )
    ]
    verdict = "PASS" if doc["passed"] else "FAIL"
    out.append(
        f"mean |IPC err| {doc['mean_abs_ipc_err'] * 100:.2f}% "
        f"(tolerance {doc['tolerance_ipc'] * 100:.0f}%; "
        f"max {doc['max_abs_ipc_err'] * 100:.1f}%)  "
        f"perceived {doc['mean_perceived_err'] * 100:.1f}%  "
        f"bus +-{doc['mean_bus_abs_err']:.3f}  -> {verdict}"
    )
    t = doc.get("timing", {})
    if "analytic_specs_per_s" in t:
        line = (
            f"analytic: {t['analytic_sweep_specs']} specs in "
            f"{t['analytic_sweep_wall_s']}s "
            f"({t['analytic_specs_per_s']} specs/s)"
        )
        if "sweep_speedup" in t:
            line += (
                f"; cycle backend {t['cycle_per_run_s']}s/run -> "
                f"sweep speedup {t['sweep_speedup']}x"
            )
        else:
            line += "; cycle grid fully cached (no live timing baseline)"
        out.append(line)
    return "\n\n".join(out)
