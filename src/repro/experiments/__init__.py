"""Experiment harness: per-figure drivers, ablations and runners."""

from repro.experiments.ablations import ABLATIONS
from repro.experiments.figures import FIGURES, LATENCIES, fig1, fig3, fig4, fig5
from repro.experiments.runner import (
    run_multiprogrammed,
    run_single_benchmark,
    scale_factor,
)

__all__ = [
    "FIGURES",
    "ABLATIONS",
    "LATENCIES",
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "run_multiprogrammed",
    "run_single_benchmark",
    "scale_factor",
]
