"""Ablation studies beyond the paper's figures.

These quantify design choices the paper mentions but does not evaluate
(see DESIGN.md, ``abl-*`` rows of the per-experiment index):

* ``unit_width`` — the paper notes a 15 % effective-peak loss from AP/EP
  load imbalance and says asymmetric issue widths are "beyond the scope of
  this study"; we sweep the split.
* ``fetch_policy`` — ICOUNT-style selection vs pure round-robin.
* ``mshr`` — the paper's fixed 16 MSHRs vs the latency-scaled file this
  reproduction uses by default for large latencies (see DESIGN.md).
* ``iq_depth`` — the instruction-queue depth that bounds AP/EP slip.
* ``rob`` — sensitivity to the ROB size Figure 2 leaves unspecified.
* ``l2_finite`` — the paper's infinite L2 vs finite shared capacities
  (threads coupled through a shared cache; misses past the L2 pay the
  backing-store latency).
* ``prefetch`` — next-line and stream prefetching on the classic
  machine: coverage vs the bus traffic the speculation costs.
* ``bus_width`` — the L1-L2 interconnect width (and the contention-free
  ``ideal`` policy), isolating how much IPC the shared bus eats.

Like the figure drivers, each ablation describes its runs as specs,
submits the batch to the engine once, and assembles its table from the
returned mapping; pass ``engine=`` for parallelism and caching.
"""

from __future__ import annotations

from repro.engine import RunSpec, Sweep, submit
from repro.memory.spec import (
    KB,
    MB,
    InterconnectSpec,
    LevelSpec,
    MemSpec,
    PrefetchSpec,
)
from repro.stats.report import format_table


def unit_width(total: int = 8, n_threads: int = 4, seed: int = 0, engine=None) -> dict:
    """Sweep the AP/EP issue-width split at a fixed total width."""
    specs = {
        (ap, total - ap): RunSpec.multiprogrammed(
            n_threads, seed=seed, ap_width=ap, ep_width=total - ap
        )
        for ap in range(2, total - 1)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        split: {
            "ipc": results[spec].ipc,
            "ap_util": results[spec].unit_utilization(0),
            "ep_util": results[spec].unit_utilization(1),
        }
        for split, spec in specs.items()
    }


def render_unit_width(data: dict) -> str:
    rows = [
        [f"{ap}+{ep}", r["ipc"], r["ap_util"] * 100, r["ep_util"] * 100]
        for (ap, ep), r in sorted(data.items())
    ]
    return format_table(
        ["AP+EP", "IPC", "AP util %", "EP util %"],
        rows,
        "Ablation: issue-width split (4 threads, L2 = 16)",
    )


def fetch_policy(n_threads: int = 4, seed: int = 0, engine=None) -> dict:
    """ICOUNT vs round-robin fetch thread selection."""
    specs = {
        policy: RunSpec.multiprogrammed(n_threads, seed=seed, fetch_policy=policy)
        for policy in ("icount", "rr")
    }
    results = submit(Sweep(specs.values()), engine)
    return {policy: {"ipc": results[spec].ipc} for policy, spec in specs.items()}


def render_fetch_policy(data: dict) -> str:
    rows = [[p, r["ipc"]] for p, r in data.items()]
    return format_table(
        ["policy", "IPC"], rows, "Ablation: fetch policy (4 threads)"
    )


def mshr(n_threads: int = 4, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """MSHR count at high latency: the paper's fixed 16 vs scaled."""
    specs = {
        count: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, mshrs=count
        )
        for count in (8, 16, 32, 64, 128)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        count: {
            "ipc": results[spec].ipc,
            "alloc_failures": results[spec].mshr_alloc_failures,
        }
        for count, spec in specs.items()
    }


def render_mshr(data: dict) -> str:
    rows = [[n, r["ipc"], r["alloc_failures"]] for n, r in sorted(data.items())]
    return format_table(
        ["MSHRs", "IPC", "alloc failures"],
        rows,
        "Ablation: MSHR count (4 threads, L2 = 64)",
    )


def iq_depth(n_threads: int = 1, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """Instruction-queue depth: the slip ceiling of decoupling."""
    specs = {
        size: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed,
            iq_size=size, aq_size=size,
        )
        for size in (8, 16, 32, 48, 96, 192)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        size: {"ipc": results[spec].ipc, "slip": results[spec].average_slip}
        for size, spec in specs.items()
    }


def render_iq_depth(data: dict) -> str:
    rows = [[n, r["ipc"], r["slip"]] for n, r in sorted(data.items())]
    return format_table(
        ["IQ entries", "IPC", "avg slip"],
        rows,
        "Ablation: instruction-queue depth (1 thread, L2 = 64)",
    )


def rob(n_threads: int = 4, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """ROB size sensitivity (the paper does not list a size)."""
    specs = {
        size: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, rob_size=size
        )
        for size in (64, 128, 256, 512)
    }
    results = submit(Sweep(specs.values()), engine)
    return {size: {"ipc": results[spec].ipc} for size, spec in specs.items()}


def render_rob(data: dict) -> str:
    rows = [[n, r["ipc"]] for n, r in sorted(data.items())]
    return format_table(
        ["ROB entries", "IPC"],
        rows,
        "Ablation: ROB size (4 threads, L2 = 64)",
    )


def l2_finite(n_threads: int = 4, l2_latency: int = 32, seed: int = 0,
              engine=None) -> dict:
    """Finite shared L2 capacities vs the paper's infinite L2."""
    def spec_for(capacity):
        if capacity is None:
            return RunSpec.multiprogrammed(
                n_threads, l2_latency=l2_latency, seed=seed
            )
        mem = MemSpec(
            name=f"l2={capacity // KB}K",
            levels=(
                LevelSpec(name="L1"),
                LevelSpec(name="L2", capacity_bytes=capacity, assoc=8),
            ),
        )
        return RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, mem=mem
        )

    specs = {
        cap: spec_for(cap)
        for cap in (None, 4 * MB, MB, 256 * KB, 64 * KB)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        ("inf" if cap is None else cap // KB): {
            "ipc": results[spec].ipc,
            "l2_miss_rate": results[spec].level_miss_rate("L2"),
            "bus_util": results[spec].bus_utilization,
        }
        for cap, spec in specs.items()
    }


def render_l2_finite(data: dict) -> str:
    rows = [
        [f"{cap}K" if cap != "inf" else "inf", r["ipc"],
         r["l2_miss_rate"] * 100, r["bus_util"] * 100]
        for cap, r in data.items()
    ]
    return format_table(
        ["L2 capacity", "IPC", "L2 miss %", "bus util %"],
        rows,
        "Ablation: finite shared L2 (4 threads, L2 = 32)",
    )


def prefetch(n_threads: int = 2, l2_latency: int = 64, seed: int = 0,
             engine=None) -> dict:
    """Prefetch policy: coverage bought vs bus bandwidth spent."""
    def mem_for(kind, degree):
        if kind == "none":
            return None
        return MemSpec(
            name=f"{kind}x{degree}",
            prefetch=PrefetchSpec(kind=kind, degree=degree),
        )

    points = [("none", 0), ("nextline", 1), ("nextline", 2), ("stream", 2)]
    specs = {
        (kind, degree): RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed,
            mem=mem_for(kind, degree),
        )
        for kind, degree in points
    }
    results = submit(Sweep(specs.values()), engine)
    out = {}
    for (kind, degree), spec in specs.items():
        s = results[spec]
        out[kind, degree] = {
            "ipc": s.ipc,
            "coverage": s.prefetch_coverage,
            "prefetch_fills": s.prefetch_fills,
            "load_miss_ratio": s.load_miss_ratio,
            "bus_util": s.bus_utilization,
        }
    return out


def render_prefetch(data: dict) -> str:
    rows = [
        [
            kind if not degree else f"{kind} x{degree}",
            r["ipc"], r["coverage"] * 100, r["prefetch_fills"],
            r["load_miss_ratio"] * 100, r["bus_util"] * 100,
        ]
        for (kind, degree), r in data.items()
    ]
    return format_table(
        ["prefetcher", "IPC", "coverage %", "pf fills", "ld miss %",
         "bus util %"],
        rows,
        "Ablation: L1 prefetching (2 threads, L2 = 64)",
    )


def bus_width(n_threads: int = 4, l2_latency: int = 16, seed: int = 0,
              engine=None) -> dict:
    """Interconnect width (plus the contention-free ideal crossbar)."""
    def spec_for(width, policy="fifo"):
        mem = MemSpec(
            name=f"bus{width}{'' if policy == 'fifo' else '-' + policy}",
            interconnect=InterconnectSpec(
                bytes_per_cycle=width, policy=policy
            ),
        )
        return RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, mem=mem
        )

    specs = {(w, "fifo"): spec_for(w) for w in (4, 8, 16, 32)}
    specs[16, "ideal"] = spec_for(16, policy="ideal")
    results = submit(Sweep(specs.values()), engine)
    return {
        key: {
            "ipc": results[spec].ipc,
            "bus_util": results[spec].bus_utilization,
        }
        for key, spec in specs.items()
    }


def render_bus_width(data: dict) -> str:
    rows = [
        [f"{w} B/cy ({policy})", r["ipc"], r["bus_util"] * 100]
        for (w, policy), r in data.items()
    ]
    return format_table(
        ["interconnect", "IPC", "bus util %"],
        rows,
        "Ablation: L1-L2 interconnect (4 threads, L2 = 16)",
    )


ABLATIONS = {
    "unit_width": (unit_width, render_unit_width),
    "fetch_policy": (fetch_policy, render_fetch_policy),
    "mshr": (mshr, render_mshr),
    "iq_depth": (iq_depth, render_iq_depth),
    "rob": (rob, render_rob),
    "l2_finite": (l2_finite, render_l2_finite),
    "prefetch": (prefetch, render_prefetch),
    "bus_width": (bus_width, render_bus_width),
}
