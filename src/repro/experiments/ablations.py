"""Ablation studies beyond the paper's figures.

These quantify design choices the paper mentions but does not evaluate:

* ``unit_width`` — the paper notes a 15 % effective-peak loss from AP/EP
  load imbalance and says asymmetric issue widths are "beyond the scope of
  this study"; we sweep the split.
* ``fetch_policy`` — ICOUNT-style selection vs pure round-robin.
* ``mshr`` — the paper's fixed 16 MSHRs vs the latency-scaled file this
  reproduction uses by default for large latencies (see DESIGN.md).
* ``iq_depth`` — the instruction-queue depth that bounds AP/EP slip.
* ``rob`` — sensitivity to the ROB size Figure 2 leaves unspecified.
"""

from __future__ import annotations

from repro.experiments.runner import run_multiprogrammed
from repro.stats.report import format_table


def unit_width(total: int = 8, n_threads: int = 4, seed: int = 0) -> dict:
    """Sweep the AP/EP issue-width split at a fixed total width."""
    out = {}
    for ap in range(2, total - 1):
        ep = total - ap
        stats = run_multiprogrammed(
            n_threads, seed=seed, ap_width=ap, ep_width=ep
        )
        out[(ap, ep)] = {
            "ipc": stats.ipc,
            "ap_util": stats.unit_utilization(0),
            "ep_util": stats.unit_utilization(1),
        }
    return out


def render_unit_width(data: dict) -> str:
    rows = [
        [f"{ap}+{ep}", r["ipc"], r["ap_util"] * 100, r["ep_util"] * 100]
        for (ap, ep), r in sorted(data.items())
    ]
    return format_table(
        ["AP+EP", "IPC", "AP util %", "EP util %"],
        rows,
        "Ablation: issue-width split (4 threads, L2 = 16)",
    )


def fetch_policy(n_threads: int = 4, seed: int = 0) -> dict:
    """ICOUNT vs round-robin fetch thread selection."""
    out = {}
    for policy in ("icount", "rr"):
        stats = run_multiprogrammed(n_threads, seed=seed, fetch_policy=policy)
        out[policy] = {"ipc": stats.ipc}
    return out


def render_fetch_policy(data: dict) -> str:
    rows = [[p, r["ipc"]] for p, r in data.items()]
    return format_table(
        ["policy", "IPC"], rows, "Ablation: fetch policy (4 threads)"
    )


def mshr(n_threads: int = 4, l2_latency: int = 64, seed: int = 0) -> dict:
    """MSHR count at high latency: the paper's fixed 16 vs scaled."""
    out = {}
    for count in (8, 16, 32, 64, 128):
        stats = run_multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, mshrs=count
        )
        out[count] = {
            "ipc": stats.ipc,
            "alloc_failures": stats.mshr_alloc_failures,
        }
    return out


def render_mshr(data: dict) -> str:
    rows = [[n, r["ipc"], r["alloc_failures"]] for n, r in sorted(data.items())]
    return format_table(
        ["MSHRs", "IPC", "alloc failures"],
        rows,
        "Ablation: MSHR count (4 threads, L2 = 64)",
    )


def iq_depth(n_threads: int = 1, l2_latency: int = 64, seed: int = 0) -> dict:
    """Instruction-queue depth: the slip ceiling of decoupling."""
    out = {}
    for size in (8, 16, 32, 48, 96, 192):
        stats = run_multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed,
            iq_size=size, aq_size=size,
        )
        out[size] = {"ipc": stats.ipc, "slip": stats.average_slip}
    return out


def render_iq_depth(data: dict) -> str:
    rows = [[n, r["ipc"], r["slip"]] for n, r in sorted(data.items())]
    return format_table(
        ["IQ entries", "IPC", "avg slip"],
        rows,
        "Ablation: instruction-queue depth (1 thread, L2 = 64)",
    )


def rob(n_threads: int = 4, l2_latency: int = 64, seed: int = 0) -> dict:
    """ROB size sensitivity (the paper does not list a size)."""
    out = {}
    for size in (64, 128, 256, 512):
        stats = run_multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, rob_size=size
        )
        out[size] = {"ipc": stats.ipc}
    return out


def render_rob(data: dict) -> str:
    rows = [[n, r["ipc"]] for n, r in sorted(data.items())]
    return format_table(
        ["ROB entries", "IPC"],
        rows,
        "Ablation: ROB size (4 threads, L2 = 64)",
    )


ABLATIONS = {
    "unit_width": (unit_width, render_unit_width),
    "fetch_policy": (fetch_policy, render_fetch_policy),
    "mshr": (mshr, render_mshr),
    "iq_depth": (iq_depth, render_iq_depth),
    "rob": (rob, render_rob),
}
