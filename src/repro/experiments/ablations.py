"""Ablation studies beyond the paper's figures.

These quantify design choices the paper mentions but does not evaluate
(see DESIGN.md, ``abl-*`` rows of the per-experiment index):

* ``unit_width`` — the paper notes a 15 % effective-peak loss from AP/EP
  load imbalance and says asymmetric issue widths are "beyond the scope of
  this study"; we sweep the split.
* ``fetch_policy`` — ICOUNT-style selection vs pure round-robin.
* ``mshr`` — the paper's fixed 16 MSHRs vs the latency-scaled file this
  reproduction uses by default for large latencies (see DESIGN.md).
* ``iq_depth`` — the instruction-queue depth that bounds AP/EP slip.
* ``rob`` — sensitivity to the ROB size Figure 2 leaves unspecified.

Like the figure drivers, each ablation describes its runs as specs,
submits the batch to the engine once, and assembles its table from the
returned mapping; pass ``engine=`` for parallelism and caching.
"""

from __future__ import annotations

from repro.engine import RunSpec, Sweep, submit
from repro.stats.report import format_table


def unit_width(total: int = 8, n_threads: int = 4, seed: int = 0, engine=None) -> dict:
    """Sweep the AP/EP issue-width split at a fixed total width."""
    specs = {
        (ap, total - ap): RunSpec.multiprogrammed(
            n_threads, seed=seed, ap_width=ap, ep_width=total - ap
        )
        for ap in range(2, total - 1)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        split: {
            "ipc": results[spec].ipc,
            "ap_util": results[spec].unit_utilization(0),
            "ep_util": results[spec].unit_utilization(1),
        }
        for split, spec in specs.items()
    }


def render_unit_width(data: dict) -> str:
    rows = [
        [f"{ap}+{ep}", r["ipc"], r["ap_util"] * 100, r["ep_util"] * 100]
        for (ap, ep), r in sorted(data.items())
    ]
    return format_table(
        ["AP+EP", "IPC", "AP util %", "EP util %"],
        rows,
        "Ablation: issue-width split (4 threads, L2 = 16)",
    )


def fetch_policy(n_threads: int = 4, seed: int = 0, engine=None) -> dict:
    """ICOUNT vs round-robin fetch thread selection."""
    specs = {
        policy: RunSpec.multiprogrammed(n_threads, seed=seed, fetch_policy=policy)
        for policy in ("icount", "rr")
    }
    results = submit(Sweep(specs.values()), engine)
    return {policy: {"ipc": results[spec].ipc} for policy, spec in specs.items()}


def render_fetch_policy(data: dict) -> str:
    rows = [[p, r["ipc"]] for p, r in data.items()]
    return format_table(
        ["policy", "IPC"], rows, "Ablation: fetch policy (4 threads)"
    )


def mshr(n_threads: int = 4, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """MSHR count at high latency: the paper's fixed 16 vs scaled."""
    specs = {
        count: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, mshrs=count
        )
        for count in (8, 16, 32, 64, 128)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        count: {
            "ipc": results[spec].ipc,
            "alloc_failures": results[spec].mshr_alloc_failures,
        }
        for count, spec in specs.items()
    }


def render_mshr(data: dict) -> str:
    rows = [[n, r["ipc"], r["alloc_failures"]] for n, r in sorted(data.items())]
    return format_table(
        ["MSHRs", "IPC", "alloc failures"],
        rows,
        "Ablation: MSHR count (4 threads, L2 = 64)",
    )


def iq_depth(n_threads: int = 1, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """Instruction-queue depth: the slip ceiling of decoupling."""
    specs = {
        size: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed,
            iq_size=size, aq_size=size,
        )
        for size in (8, 16, 32, 48, 96, 192)
    }
    results = submit(Sweep(specs.values()), engine)
    return {
        size: {"ipc": results[spec].ipc, "slip": results[spec].average_slip}
        for size, spec in specs.items()
    }


def render_iq_depth(data: dict) -> str:
    rows = [[n, r["ipc"], r["slip"]] for n, r in sorted(data.items())]
    return format_table(
        ["IQ entries", "IPC", "avg slip"],
        rows,
        "Ablation: instruction-queue depth (1 thread, L2 = 64)",
    )


def rob(n_threads: int = 4, l2_latency: int = 64, seed: int = 0, engine=None) -> dict:
    """ROB size sensitivity (the paper does not list a size)."""
    specs = {
        size: RunSpec.multiprogrammed(
            n_threads, l2_latency=l2_latency, seed=seed, rob_size=size
        )
        for size in (64, 128, 256, 512)
    }
    results = submit(Sweep(specs.values()), engine)
    return {size: {"ipc": results[spec].ipc} for size, spec in specs.items()}


def render_rob(data: dict) -> str:
    rows = [[n, r["ipc"]] for n, r in sorted(data.items())]
    return format_table(
        ["ROB entries", "IPC"],
        rows,
        "Ablation: ROB size (4 threads, L2 = 64)",
    )


ABLATIONS = {
    "unit_width": (unit_width, render_unit_width),
    "fetch_policy": (fetch_policy, render_fetch_policy),
    "mshr": (mshr, render_mshr),
    "iq_depth": (iq_depth, render_iq_depth),
    "rob": (rob, render_rob),
}
