"""Router configuration: the declarative half of the hybrid backend.

A :class:`RouterSpec` rides inside :class:`~repro.engine.spec.RunSpec`
(the ``router`` field), so a hybrid run is cache-addressable like any
other spec: two sweeps with different promotion budgets or corpora are
different specs with different content hashes.  Like
:class:`~repro.memory.spec.MemSpec` it is frozen, hashable and
JSON-round-trippable; unlike results, routing *decisions* are never
persisted — they are recomputed from the (cached) analytic results and
the error model on every sweep, which is what makes warm and cold runs
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: promotion policies the router knows; ``RouterSpec.policies`` is an
#: ordered subset ("budget" is not in here: the promote budget is a hard
#: cap applied after every policy has nominated its candidates)
POLICIES = ("extrema", "boundary")


@dataclass(frozen=True)
class RouterSpec:
    """How the hybrid backend screens and promotes one grid.

    ``policies`` — which nominators run (see :mod:`repro.router.policies`).
    ``promote_budget`` — hard cap on cycle-backend promotions: a float in
    ``(0, 1]`` is a fraction of the grid (floored, but at least one cell),
    an int ``>= 1`` an absolute cell count.
    ``error_budget`` — optional relative half-width tolerance: any cell
    whose error bar is wider than this fraction of its analytic IPC
    becomes a promotion candidate regardless of the other policies.
    ``quantile`` — coverage target of the fitted error bars (the model
    stores this quantile of the conformance corpus' |IPC error|).
    ``corpus`` — the error model's training data: ``"default"`` is the
    committed ``benchmarks/conformance/corpus.json``, anything else a
    path to a corpus written by ``repro-sim conformance --out``.
    """

    policies: tuple[str, ...] = POLICIES
    promote_budget: float = 0.15
    error_budget: float | None = None
    quantile: float = 0.95
    corpus: str = "default"

    def __post_init__(self):
        object.__setattr__(self, "policies", tuple(self.policies))
        unknown = [p for p in self.policies if p not in POLICIES]
        if unknown:
            raise ValueError(
                f"unknown router policies {unknown}; known: {POLICIES}"
            )
        budget = self.promote_budget
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise ValueError("promote_budget must be a number")
        if isinstance(budget, float) and not 0.0 < budget <= 1.0:
            raise ValueError(
                "a fractional promote_budget must be in (0, 1] "
                f"(got {budget}); use an int for an absolute cell count"
            )
        if isinstance(budget, int) and budget < 1:
            raise ValueError(f"promote_budget must be >= 1 (got {budget})")
        if self.error_budget is not None and self.error_budget <= 0:
            raise ValueError("error_budget must be positive")
        if not 0.5 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0.5, 1.0)")
        if not self.corpus or not isinstance(self.corpus, str):
            raise ValueError("corpus must be a non-empty string")

    def promote_cap(self, n_cells: int) -> int:
        """The hard promotion cap for an ``n_cells`` grid (at least 1:
        a router that may promote nothing could never verify anything)."""
        if isinstance(self.promote_budget, int):
            return max(1, min(self.promote_budget, n_cells))
        return max(1, min(int(self.promote_budget * n_cells), n_cells))

    def to_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "promote_budget": self.promote_budget,
            "error_budget": self.error_budget,
            "quantile": self.quantile,
            "corpus": self.corpus,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RouterSpec":
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        if "policies" in kw:
            kw["policies"] = tuple(kw["policies"])
        return cls(**kw)
