"""The ``"hybrid"`` backend: route a grid across two fidelities.

:func:`route_grid` is the subsystem's engine-side entry point, called by
:meth:`Engine.map <repro.engine.scheduler.Engine.map>` for every spec
whose backend :attr:`routes_grids`:

1. the whole grid runs on the **analytic** backend (in-process,
   microseconds per cell, results cached under the analytic specs' own
   keys);
2. the fitted :class:`~repro.router.errmodel.ErrorModel` attaches a
   calibrated IPC interval to every cell;
3. the promotion policies (:mod:`repro.router.policies`) pick the subset
   worth cycle fidelity, capped by the promote budget;
4. the promoted cells run on the **cycle** backend through the very same
   engine — process pool, ``fork_warmup``, result cache all apply — and
   their stats pass through *untouched*, so a promoted cell is
   byte-identical to a pure-cycle run of the same spec.

Screened cells return the analytic stats annotated with
``fidelity="analytic"`` and the interval (``ipc_lo``/``ipc_hi``).
Hybrid results are deliberately **not** cached under the hybrid spec's
key: both underlying fidelities already are, routing is recomputed from
them in microseconds, and recomputing is what keeps warm and cold sweeps
byte-identical even when the promote budget changes between runs.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.engine.backends import Backend, register_backend
from repro.router.errmodel import features_of, load_model
from repro.router.policies import ScreenedCell, select_promotions
from repro.router.spec import RouterSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import Engine
    from repro.engine.spec import RunSpec


def _retarget(spec: "RunSpec", backend: str) -> "RunSpec":
    """The underlying single-fidelity spec of one hybrid cell.  The
    router config is stripped so the sub-result shares its cache entry
    with plain runs of the same spec on that backend."""
    return replace(spec, backend=backend, router=None)


def route_grid(
    specs: list["RunSpec"], engine: "Engine", done: dict
) -> dict:
    """Route one batch of hybrid specs; fills ``done[spec]`` per spec.

    Returns the routing counters and provenance::

        {"n_screened", "n_promoted", "cycle_cells_saved",
         "n_cached", "n_executed", "n_forked", "warmup_cycles_saved",
         "provenance": {spec: {"fidelity", "reason", "ipc_lo", "ipc_hi",
                               "model": <error-model content key>}}}

    Specs may mix router configs (each config group is routed — and
    budget-capped — independently); results and counters pool.
    """
    counts = {
        "n_screened": 0, "n_promoted": 0, "cycle_cells_saved": 0,
        "n_cached": 0, "n_executed": 0, "n_forked": 0,
        "warmup_cycles_saved": 0, "provenance": {},
    }
    groups: dict[RouterSpec, list["RunSpec"]] = {}
    for spec in specs:
        groups.setdefault(spec.router or RouterSpec(), []).append(spec)
    for rspec, members in groups.items():
        _route_group(rspec, members, engine, done, counts)
    return counts


def _absorb(counts: dict, sweep) -> None:
    for name in ("n_cached", "n_executed", "n_forked",
                 "warmup_cycles_saved"):
        counts[name] += getattr(sweep, name)


def _route_group(
    rspec: RouterSpec,
    specs: list["RunSpec"],
    engine: "Engine",
    done: dict,
    counts: dict,
) -> None:
    model = load_model(rspec.corpus, rspec.quantile)

    # 1-2: analytic screen + fitted interval per cell
    analytic = {spec: _retarget(spec, "analytic") for spec in specs}
    a_res = engine.map(list(analytic.values()))
    _absorb(counts, a_res)
    cells = []
    for spec in specs:
        stats = a_res[analytic[spec]]
        feats = features_of(spec)
        lo, hi = model.interval(feats, stats.ipc)
        cells.append(ScreenedCell(
            spec=spec, ipc=stats.ipc, lo=lo, hi=hi,
            hw_rel=model.half_width_rel(feats),
        ))

    # 3: promotion set (deterministic, budget-capped)
    promoted = dict(select_promotions(cells, rspec))

    # 4: promoted cells at cycle fidelity, through the ordinary engine
    # machinery (pool, fork_warmup, cache); stats pass through untouched
    cycle = {spec: _retarget(spec, "cycle") for spec in promoted}
    c_res = engine.map(list(cycle.values())) if cycle else {}
    if cycle:
        _absorb(counts, c_res)

    by_cell = {cell.spec: cell for cell in cells}
    for spec in specs:
        cell = by_cell[spec]
        if spec in promoted:
            done[spec] = c_res[cycle[spec]]
            prov = {"fidelity": "cycle", "reason": promoted[spec]}
            engine._emit("promoted", spec)
        else:
            # an isolated copy per hybrid cell: two router configs can
            # screen the same analytic spec, and annotations must not
            # alias across them (or corrupt the engine's memo)
            stats = copy.deepcopy(a_res[analytic[spec]])
            stats.fidelity = "analytic"
            stats.ipc_lo, stats.ipc_hi = cell.lo, cell.hi
            done[spec] = stats
            prov = {"fidelity": "analytic", "reason": "screened"}
            engine._emit("screened", spec)
        prov["ipc_lo"], prov["ipc_hi"] = cell.lo, cell.hi
        prov["model"] = model.key()
        counts["provenance"][spec] = prov
    counts["n_promoted"] += len(promoted)
    counts["n_screened"] += len(specs) - len(promoted)
    counts["cycle_cells_saved"] += len(specs) - len(promoted)


class HybridBackend(Backend):
    """Multi-fidelity router (see module docstring).  A single spec run
    directly (``spec.execute()`` / ``Engine.run``) is a one-cell grid:
    the extrema policy promotes it, so the result is the cycle result —
    the safe reading of "verify what matters" when there is only one
    cell.  Routing gains come from grids."""

    name = "hybrid"
    process_pool_worthwhile = False
    routes_grids = True

    def run(self, spec: "RunSpec"):
        from repro.engine.scheduler import Engine

        done: dict = {}
        route_grid([spec], Engine.serial(), done)
        return done[spec]


register_backend(HybridBackend())
