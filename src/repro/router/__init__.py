"""Multi-fidelity sweep router: analytic screens, cycle verifies.

The ``"hybrid"`` backend (:mod:`repro.router.hybrid`) runs a whole grid
through the analytic fast model, attaches calibrated per-cell error bars
(:mod:`repro.router.errmodel`, fitted from the committed conformance
corpus), and promotes only the cells that matter — figure extrema,
decision boundaries whose ranking flips within the error bar, cells over
an explicit error budget — to the cycle backend
(:mod:`repro.router.policies`), through the ordinary engine machinery
(process pool, ``--fork-warmup``, the content-addressed cache).

This module deliberately imports neither the engine nor the pipeline:
:class:`RouterSpec` rides inside :class:`~repro.engine.spec.RunSpec`, so
the spec layer must be able to import it without dragging the router's
execution half (``repro.router.hybrid``) in.
"""

from repro.router.errmodel import (
    CORPUS_SCHEMA,
    ErrorModel,
    corpus_from_conformance,
    default_corpus_path,
    features_of,
    load_corpus,
    load_model,
    split_cells,
)
from repro.router.policies import ScreenedCell, select_promotions
from repro.router.spec import POLICIES, RouterSpec

__all__ = [
    "CORPUS_SCHEMA",
    "POLICIES",
    "ErrorModel",
    "RouterSpec",
    "ScreenedCell",
    "corpus_from_conformance",
    "default_corpus_path",
    "features_of",
    "load_corpus",
    "load_model",
    "select_promotions",
    "split_cells",
]
