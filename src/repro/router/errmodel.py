"""Calibrated error model: per-cell IPC error bars for the fast model.

The conformance suite (``repro-sim conformance``) measures, per grid
cell, how far the analytic backend's IPC lands from the cycle backend's.
Those measurements — persisted as a committed corpus by ``conformance
--out`` (``benchmarks/conformance/corpus.json``) — are the training data
here: cells are grouped into **config regions** (mode x thread count x
latency band x memory hierarchy), and each region gets a signed bias
(median relative error) and a half-width (the :attr:`ErrorModel.quantile`
quantile of the bias-corrected |error|).  At routing time the model turns
one analytic IPC into an interval ``[lo, hi]`` expected to cover the true
cycle IPC with roughly ``quantile`` probability — the error bar the
hybrid backend attaches to every screened cell and feeds to its
promotion policies.

Regions with too few samples fall back to a coarser region (latency band
dropped), then to the global pool, and every half-width is inflated by
:data:`INFLATE` and floored at :data:`HW_FLOOR` — calibration is checked
against a held-out corpus slice (:func:`split_cells` +
:meth:`ErrorModel.coverage`), which ``conformance --fit`` and the CI
drift gate keep above 90%.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

CORPUS_SCHEMA = "repro-conformance-corpus/1"

#: a region needs at least this many training cells to stand on its own;
#: below it the model falls back to the coarser region, then the globe
MIN_SAMPLES = 5

#: fitted half-widths are multiplied by this before use: the corpus is a
#: finite sample and the router would rather over-cover than mis-rank
INFLATE = 1.3

#: and never fall below this relative half-width (quantization noise on
#: short runs alone exceeds it)
HW_FLOOR = 0.01

#: the calibration gate: the fitted intervals must cover at least this
#: fraction of a held-out corpus slice (``conformance --fit`` and the CI
#: drift gate both enforce it)
COVERAGE_MIN = 0.90

#: L2-latency bands used as the finest region axis
_LAT_BANDS = ((32, "low"), (128, "mid"))

_EPS = 1e-12


def _lat_band(latency: int) -> str:
    for bound, name in _LAT_BANDS:
        if latency < bound:
            return name
    return "high"


def features_of(spec) -> dict:
    """The error-model features of one :class:`RunSpec` — everything the
    conformance data showed the analytic error actually varies with."""
    return {
        "mode": "dec" if spec.decoupled else "non",
        "threads": min(spec.workload.n_threads, 4),
        "lat": _lat_band(spec.l2_latency),
        "mem": spec.mem.name if spec.mem is not None else "classic",
    }


def _region(features: dict) -> str:
    return (
        f"{features['mode']}|t{features['threads']}"
        f"|{features['lat']}|{features['mem']}"
    )


def _coarse_region(features: dict) -> str:
    return f"{features['mode']}|t{features['threads']}|{features['mem']}"


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending list (numpy-free so
    the router never depends on the optional accelerator stack)."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _fit_pool(errors: list[float], quantile: float) -> dict:
    """Bias + half-width of one sample pool of signed relative errors."""
    ordered = sorted(errors)
    bias = _quantile(ordered, 0.5)
    spread = sorted(abs(e - bias) for e in errors)
    # small pools use their max deviation: a quantile of 4 points is
    # mostly interpolation noise, and under-covering is the costly error
    if len(spread) < MIN_SAMPLES:
        hw = spread[-1] if spread else 0.0
    else:
        hw = _quantile(spread, quantile)
    return {"n": len(errors), "bias": bias, "hw": hw}


@dataclass
class ErrorModel:
    """Fitted per-region IPC error statistics; see the module docstring.

    ``regions`` maps a region key (fine or coarse) to
    ``{"n", "bias", "hw"}``; ``global_pool`` is the all-cells fallback.
    """

    quantile: float = 0.95
    regions: dict[str, dict] = field(default_factory=dict)
    global_pool: dict = field(
        default_factory=lambda: {"n": 0, "bias": 0.0, "hw": 0.25}
    )

    @classmethod
    def fit(cls, cells: list[dict], quantile: float = 0.95) -> "ErrorModel":
        """Fit from corpus cells (``features`` + ``cycle_ipc`` +
        ``analytic_ipc`` each); cells with a dead analytic IPC carry no
        usable relative error and are skipped."""
        pools: dict[str, list[float]] = {}
        everything: list[float] = []
        for cell in cells:
            a = cell["analytic_ipc"]
            if a <= _EPS:
                continue
            err = (cell["cycle_ipc"] - a) / a
            everything.append(err)
            for key in (_region(cell["features"]),
                        _coarse_region(cell["features"])):
                pools.setdefault(key, []).append(err)
        model = cls(quantile=quantile)
        if everything:
            model.global_pool = _fit_pool(everything, quantile)
        model.regions = {
            key: _fit_pool(errs, quantile) for key, errs in pools.items()
        }
        return model

    def _stats_for(self, features: dict) -> dict:
        for key in (_region(features), _coarse_region(features)):
            stats = self.regions.get(key)
            if stats is not None and stats["n"] >= MIN_SAMPLES:
                return stats
        return self.global_pool

    def interval(self, features: dict, analytic_ipc: float) -> tuple[float, float]:
        """``(lo, hi)`` expected to cover the true cycle IPC.

        The analytic prediction is re-centered by the region's bias and
        widened by its (inflated, floored) half-width.  A dead analytic
        IPC yields a degenerate ``(0, 0)`` interval — the router promotes
        such cells unconditionally rather than trusting a zero.
        """
        if analytic_ipc <= _EPS:
            return (0.0, 0.0)
        stats = self._stats_for(features)
        hw = max(stats["hw"] * INFLATE, HW_FLOOR)
        center = analytic_ipc * (1.0 + stats["bias"])
        return (
            max(0.0, center - analytic_ipc * hw),
            center + analytic_ipc * hw,
        )

    def half_width_rel(self, features: dict) -> float:
        """The relative half-width used for ``features`` (the
        ``--error-budget`` comparand)."""
        return max(self._stats_for(features)["hw"] * INFLATE, HW_FLOOR)

    def coverage(self, cells: list[dict]) -> float:
        """Fraction of ``cells`` whose cycle IPC the intervals cover
        (1.0 on an empty list: nothing failed to be covered)."""
        if not cells:
            return 1.0
        hit = 0
        for cell in cells:
            lo, hi = self.interval(cell["features"], cell["analytic_ipc"])
            if cell["analytic_ipc"] <= _EPS or lo <= cell["cycle_ipc"] <= hi:
                # dead-analytic cells are always promoted, so the bar is
                # never *reported* for them — count them covered
                hit += 1
        return hit / len(cells)

    def to_dict(self) -> dict:
        return {
            "schema": "repro-errmodel/1",
            "quantile": self.quantile,
            "global": dict(self.global_pool),
            "regions": {k: dict(v) for k, v in sorted(self.regions.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ErrorModel":
        return cls(
            quantile=d["quantile"],
            regions={k: dict(v) for k, v in d.get("regions", {}).items()},
            global_pool=dict(d["global"]),
        )

    def key(self) -> str:
        """Stable content hash (provenance for sweep documents)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- the corpus ------------------------------------------------------------------


def default_corpus_path() -> Path:
    """The committed corpus, anchored to the repository root (mirrors
    :func:`repro.experiments.golden.default_root`); falls back to a
    cwd-relative path for installed-package layouts."""
    repo_root = Path(__file__).resolve().parents[3]
    anchored = repo_root / "benchmarks" / "conformance" / "corpus.json"
    if anchored.parent.parent.is_dir():
        return anchored
    return Path("benchmarks/conformance/corpus.json")


def corpus_from_conformance(doc: dict) -> dict:
    """Distill one ``run_conformance`` document into a corpus document
    (only what the error model trains on, plus provenance)."""
    return {
        "schema": CORPUS_SCHEMA,
        "quick": doc.get("quick"),
        "seed": doc.get("seed"),
        "n_cells": len(doc["cells"]),
        "cells": [
            {
                "label": cell["label"],
                "features": dict(cell["features"]),
                "cycle_ipc": cell["cycle"]["ipc"],
                "analytic_ipc": cell["analytic"]["ipc"],
            }
            for cell in doc["cells"]
        ],
    }


def load_corpus(path: str | Path) -> list[dict]:
    """The cells of one corpus file (schema-checked)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path} is not a conformance corpus (schema "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r}; "
            f"expected {CORPUS_SCHEMA!r}) — write one with "
            "'repro-sim conformance --out'"
        )
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError(f"{path}: corpus has no cells")
    return cells


def split_cells(cells: list[dict], k: int = 3) -> tuple[list[dict], list[dict]]:
    """Deterministic train/holdout split: every ``k``-th cell (by corpus
    order) is held out.  Used by ``conformance --fit`` and the calibration
    tests so the coverage number is always out-of-sample."""
    train = [c for i, c in enumerate(cells) if i % k != 0]
    holdout = [c for i, c in enumerate(cells) if i % k == 0]
    return train, holdout


_MODEL_CACHE: dict[tuple[str, float], ErrorModel] = {}


def load_model(corpus: str, quantile: float) -> ErrorModel:
    """The fitted model for a :class:`RouterSpec`'s corpus reference
    (``"default"`` or a path), memoized per (path, quantile)."""
    path = default_corpus_path() if corpus == "default" else Path(corpus)
    cache_key = (str(path), quantile)
    model = _MODEL_CACHE.get(cache_key)
    if model is None:
        try:
            cells = load_corpus(path)
        except FileNotFoundError:
            raise FileNotFoundError(
                f"conformance corpus not found: {path} — write one with "
                "'repro-sim conformance --out <path>' (the repo commits "
                "the default at benchmarks/conformance/corpus.json)"
            ) from None
        model = ErrorModel.fit(cells, quantile=quantile)
        _MODEL_CACHE[cache_key] = model
    return model
