"""Promotion policies: which screened cells earn a cycle-backend run.

Each policy nominates candidates with a score; the promote budget is a
hard cap applied to the pooled, score-ranked nominations.  Everything is
deterministic — scores are pure arithmetic over the analytic results and
fitted intervals, and every ordering tie-breaks on the spec's content
hash — so the same grid with the same error model always yields the
byte-identical promotion set, serial or parallel, warm or cold cache
(the determinism suite in ``tests/test_router.py`` gates this).

Policies:

* ``extrema`` — each figure group's best and worst cells (by analytic
  IPC).  Figures lead with their extremes, so those cells are always
  worth full fidelity.  A group is a curve in the usual figure sense:
  the cells sharing everything but the swept L2 latency.
* ``boundary`` — decision boundaries, two kinds: (a) mode boundaries —
  a decoupled / non-decoupled pair whose intervals overlap, i.e. the
  paper's central "is decoupling worth it here?" question flips inside
  the error bar; (b) ranking boundaries — latency-adjacent cells in one
  group whose intervals overlap, so their order along the curve is not
  resolved analytically.  Scored by overlap depth: the most ambiguous
  pairs are promoted first.
* cells whose relative half-width exceeds ``RouterSpec.error_budget``
  (when set) are nominated regardless, scored by the excess.
* cells with a dead analytic IPC are promoted unconditionally — a zero
  from the fast model is a screening failure, not a prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

_EPS = 1e-12

#: score strata: unconditional > extrema > error-budget > boundary; the
#: fractional part within a stratum orders by ambiguity/excess
_SCORE_DEAD = 4.0
_SCORE_EXTREMA = 3.0
_SCORE_ERROR_BUDGET = 2.0
_SCORE_BOUNDARY = 1.0


@dataclass
class ScreenedCell:
    """One grid cell after the analytic pass: spec + prediction + bar."""

    spec: object           # the hybrid RunSpec (router config attached)
    ipc: float             # analytic IPC
    lo: float              # fitted interval
    hi: float
    hw_rel: float          # relative half-width the interval used


def _group_key(spec):
    """Cells sharing a figure curve: everything but the swept latency
    (and the router plumbing, which is identical across the grid)."""
    return replace(spec, l2_latency=0)


def _mode_key(spec):
    """Cells that are the same point in every axis except mode."""
    return replace(spec, decoupled=True)


def _overlap_score(a: ScreenedCell, b: ScreenedCell) -> float | None:
    """Ambiguity of a pair: overlap depth over combined width (``None``
    when the intervals are disjoint — the ranking is analytic-certain)."""
    overlap = min(a.hi, b.hi) - max(a.lo, b.lo)
    if overlap <= 0:
        return None
    span = max(a.hi, b.hi) - min(a.lo, b.lo)
    return overlap / max(span, _EPS)


def _nominate(scores: dict, spec, score: float, reason: str) -> None:
    """Keep the strongest nomination per cell."""
    held = scores.get(spec)
    if held is None or score > held[0]:
        scores[spec] = (score, reason)


def select_promotions(
    cells: list[ScreenedCell], rspec
) -> list[tuple[object, str]]:
    """The promotion set for one routed grid, budget-capped and ranked.

    Returns ``[(spec, reason), ...]`` in promotion-priority order; its
    length never exceeds ``rspec.promote_cap(len(cells))``.
    """
    scores: dict[object, tuple[float, str]] = {}

    for cell in cells:
        if cell.ipc <= _EPS:
            _nominate(scores, cell.spec, _SCORE_DEAD, "dead-analytic")
        elif (
            rspec.error_budget is not None
            and cell.hw_rel > rspec.error_budget
        ):
            excess = min(cell.hw_rel / rspec.error_budget - 1.0, 0.999)
            _nominate(
                scores, cell.spec,
                _SCORE_ERROR_BUDGET + excess, "error-budget",
            )

    groups: dict[object, list[ScreenedCell]] = {}
    for cell in cells:
        groups.setdefault(_group_key(cell.spec), []).append(cell)

    if "extrema" in rspec.policies:
        for members in groups.values():
            ordered = sorted(
                members, key=lambda c: (c.ipc, c.spec.key())
            )
            for cell in (ordered[0], ordered[-1]):
                _nominate(scores, cell.spec, _SCORE_EXTREMA, "extrema")

    if "boundary" in rspec.policies:
        # (a) mode boundaries: decoupled vs non-decoupled twins
        by_mode_key: dict[object, list[ScreenedCell]] = {}
        for cell in cells:
            by_mode_key.setdefault(_mode_key(cell.spec), []).append(cell)
        for twins in by_mode_key.values():
            if len(twins) == 2:
                depth = _overlap_score(twins[0], twins[1])
                if depth is not None:
                    for cell in twins:
                        _nominate(
                            scores, cell.spec,
                            _SCORE_BOUNDARY + depth * 0.999,
                            "mode-boundary",
                        )
        # (b) ranking boundaries: latency-adjacent cells within a curve
        for members in groups.values():
            curve = sorted(
                members, key=lambda c: (c.spec.l2_latency, c.spec.key())
            )
            for a, b in zip(curve, curve[1:]):
                depth = _overlap_score(a, b)
                if depth is not None:
                    for cell in (a, b):
                        _nominate(
                            scores, cell.spec,
                            _SCORE_BOUNDARY + depth * 0.999,
                            "rank-boundary",
                        )

    ranked = sorted(
        scores.items(), key=lambda item: (-item[1][0], item[0].key())
    )
    cap = rspec.promote_cap(len(cells))
    return [(spec, reason) for spec, (_score, reason) in ranked[:cap]]
