"""Reproduction of *The Synergy of Multithreading and Access/Execute
Decoupling* (Parcerisa & González, HPCA 1999).

A cycle-accurate simulator of a simultaneous-multithreaded decoupled
access/execute processor, plus the synthetic SPEC FP95-like workloads and
experiment harnesses that regenerate every figure of the paper.

Quickstart::

    from repro import paper_config, Processor, multiprogram

    cfg = paper_config(n_threads=4, l2_latency=16)
    proc = Processor(cfg, multiprogram(4, seg_instrs=10_000))
    stats = proc.run(max_commits=50_000, warmup_commits=5_000)
    print(f"IPC = {stats.ipc:.2f}")
"""

from repro.core.config import MachineConfig, PAPER_BASELINE, paper_config
from repro.core.processor import Processor, SimulationError
from repro.engine import Engine, ResultCache, RunSpec, Sweep
from repro.isa.opclass import OpClass, Unit
from repro.stats.counters import SimStats
from repro.stats.report import format_run, format_table
from repro.workloads.multiprogram import (
    benchmark_trace,
    multiprogram,
    single_program,
)
from repro.workloads.profiles import (
    BENCH_ORDER,
    SPECFP95,
    BenchProfile,
    get_profile,
    load_profiles,
    register_profile,
)
from repro.workloads.spec import (
    WorkloadEntry,
    WorkloadSpec,
    load_workload,
    register_preset,
    workload_preset,
)

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "PAPER_BASELINE",
    "paper_config",
    "Processor",
    "SimulationError",
    "Engine",
    "ResultCache",
    "RunSpec",
    "Sweep",
    "SimStats",
    "OpClass",
    "Unit",
    "BenchProfile",
    "SPECFP95",
    "BENCH_ORDER",
    "WorkloadEntry",
    "WorkloadSpec",
    "get_profile",
    "register_profile",
    "load_profiles",
    "load_workload",
    "workload_preset",
    "register_preset",
    "multiprogram",
    "single_program",
    "benchmark_trace",
    "format_run",
    "format_table",
    "__version__",
]
