"""The cycle-accurate multithreaded decoupled access/execute machine.

One :class:`Processor` models the whole machine of the paper's Figure 2:
replicated per-thread front ends and queues
(:class:`~repro.core.context.ThreadContext`), shared issue slots and
functional units (4 AP + 4 EP), and a shared memory system.

Since the staged-kernel refactor the ``Processor`` is a thin *scheduler*:
all machine state lives in an explicit
:class:`~repro.core.state.MachineState` and each per-cycle phase is a
:class:`~repro.core.stages.Stage` object; the stage list is composed from
the :class:`~repro.core.config.MachineConfig` (decoupled vs. unified issue
are two stage variants, not branches).  Per-cycle phase order — later
phases see earlier phases' effects in the same cycle, which models the
natural pipeline flow:

1. **writeback** — functional-unit and memory completions set scoreboard
   bits; branches resolve, mispredictions squash (walk-back recovery);
2. **commit** — per-thread in-order graduation from the ROB;
3. **issue** — in-order per-unit issue, all threads competing round-robin
   for the 4+4 slots (the paper's "full simultaneous issue"); issue-slot
   breakdown and perceived-latency accounting happen here;
4. **store drain** — committed stores perform their cache writes;
5. **dispatch** — steer, rename, allocate queue/ROB/SAQ entries;
6. **fetch** — two threads per cycle (I-COUNT policy), up to 8 instructions
   each, stopping at a predicted-taken branch; mispredicted branches switch
   the thread onto a synthetic wrong path until they resolve.

**Event-horizon fast-forward.**  Under long L2 latencies the machine
spends most cycles stalled: issue-queue heads wait on in-flight memory or
functional-unit events, or retry against a structurally refusing memory
system, and no fetch, dispatch, commit or store drain can make progress.
``run()`` computes the **event horizon** of such a window — the minimum
over every stage's :meth:`~repro.core.stages.Stage.next_wake_cycle`, the
next completion event and the deadlock/cycle-limit caps — and jumps
``cycle`` straight to it, bulk-replaying the skipped empty issue slots,
perceived-latency stalls and memory-refusal retries.  Because each stage
reports its *own* earliest wake (rather than a binary all-idle vote), the
jump also fires in partially idle windows: all issue heads blocked on
in-flight misses while a store head retries against a pinned set, or one
thread sleeping through another's structural stall.  The resulting
statistics are *bit-identical* to the cycle-by-cycle walk — enforced by a
differential test over the Figure-3 grid and randomized partial-idle
scenarios — because a window is only entered when each skipped cycle is
provably a pure function of its round-robin phase.  ``step()`` always
advances exactly one cycle, so cycle-granular tooling (e.g.
:class:`~repro.stats.tracing.Tracer`) is unaffected; pass
``fast_forward=False`` to ``run()`` to force the per-cycle walk
everywhere.
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.core.state import MachineState
from repro.core.stages import build_stages
from repro.isa.trace import Trace
from repro.stats.counters import SimStats


#: jumps shorter than this are declined — the wake scan costs about as
#: much as walking a couple of cycles, so tiny windows aren't worth it
#: (purely a throughput heuristic: walking is bit-identical to jumping)
_MIN_JUMP = 8


class SimulationError(RuntimeError):
    """Raised when the pipeline stops making forward progress."""


class Processor:
    """Thin scheduler over a stage list and a shared machine state."""

    def __init__(
        self,
        cfg: MachineConfig,
        playlists: list[list[Trace]],
        seed: int = 0,
        wrap: bool = True,
    ):
        self.cfg = cfg
        self.state = MachineState(cfg, playlists, seed=seed, wrap=wrap)
        self.stages = build_stages(cfg)
        self._finish_init()

    def _finish_init(self) -> None:
        """Shared tail of ``__init__`` and :meth:`from_state`."""
        # bound tick methods in pipeline order, resolved once at build
        # time — run()'s inlined cycle loop calls these directly instead
        # of re-resolving six .tick attributes per simulated cycle
        self._ticks = tuple(s.tick for s in self.stages)
        self._wakes = tuple(s.next_wake_cycle for s in self.stages)
        self._skips = tuple(s.skip for s in self.stages)

    @classmethod
    def from_state(cls, state: MachineState) -> "Processor":
        """Adopt an existing (e.g. snapshot-restored) machine state.

        The stage list is rebuilt from ``state.cfg`` — stages are
        stateless by construction (round-robin pointers and all other
        dynamic state live in the :class:`MachineState`), so a processor
        adopted mid-run continues exactly where the state left off.
        """
        proc = cls.__new__(cls)
        proc.cfg = state.cfg
        proc.state = state
        proc.stages = build_stages(state.cfg)
        proc._finish_init()
        return proc

    # -- state passthroughs (the public reading surface predates the
    # -- staged kernel; tests, examples and the tracer all use these) ----------

    @property
    def mem(self):
        return self.state.mem

    @property
    def threads(self):
        return self.state.threads

    @property
    def stats(self) -> SimStats:
        return self.state.stats

    @property
    def cycle(self) -> int:
        return self.state.cycle

    @property
    def total_committed(self) -> int:
        return self.state.total_committed

    @property
    def ff_jumps(self) -> int:
        """Event-horizon jumps taken in the current measured region (lives
        in :class:`SimStats`, so it resets, pickles and forks with the
        rest of the statistics)."""
        return self.state.stats.ff_jumps

    @property
    def ff_cycles_skipped(self) -> int:
        """Cycles bulk-jumped (rather than walked) in the current region."""
        return self.state.stats.ff_cycles_skipped

    @property
    def deadlock_cycles(self) -> int:
        """Cycles without a commit before declaring deadlock (defaults to
        ``cfg.deadlock_cycles``; assignable per instance)."""
        return self.state.deadlock_cycles

    @deadlock_cycles.setter
    def deadlock_cycles(self, value: int) -> None:
        self.state.deadlock_cycles = value

    # ---------------------------------------------------------------- main loop

    def step(self) -> None:
        """Advance the machine by exactly one cycle."""
        st = self.state
        st.mem.begin_cycle()
        for stage in self.stages:
            stage.tick(st)
        st.cycle += 1
        st.stats.cycles += 1
        if st.cycle - st.last_commit_cycle > st.deadlock_cycles:
            self._raise_deadlock()

    def _raise_deadlock(self) -> None:
        st = self.state
        raise SimulationError(
            f"no commits for {st.deadlock_cycles} cycles at cycle "
            f"{st.cycle}; pipeline state is wedged"
        )

    def _fast_forward(self, cycle_limit: int | None) -> int:
        """Attempt one event-horizon jump; returns the cycles skipped (0
        when some stage could act this very cycle).

        The horizon is the minimum of every stage's ``next_wake_cycle``,
        the next completion event, the caller's cycle limit and the
        deadlock horizon.  Skipped cycles count toward the deadlock
        watchdog: reaching its horizon raises exactly the
        :class:`SimulationError` the per-cycle walk would have raised, at
        the same cycle, with the same statistics attributed.

        A jump shorter than ``_MIN_JUMP`` cycles is declined before the
        stage scan: the wake probes (which touch cache tags and MSHR
        files) cost about as much as walking a couple of cycles, so on
        event-dense workloads — short latencies, many threads with
        staggered in-flight misses — the O(1) heap peek alone rejects
        the attempt and the walk proceeds untaxed.  Walking and jumping
        are bit-identical by contract, so this threshold is purely a
        throughput heuristic.
        """
        st = self.state
        now = st.cycle
        floor = now + _MIN_JUMP
        target = st.last_commit_cycle + st.deadlock_cycles + 1
        events = st.events
        if events:
            # inlined next_event_cycle(): one O(1) heap peek per jump
            # attempt (the heap root is the minimum by the heap invariant;
            # no rescan of the event list)
            nxt = events[0][0]
            if nxt <= now:
                return 0  # a due event means writeback work this cycle
            if nxt < target:
                target = nxt
        if cycle_limit is not None and cycle_limit < target:
            target = cycle_limit
        if target < floor:
            return 0
        for wake in self._wakes:
            w = wake(st)
            if w is None:
                continue
            if w < floor:
                return 0
            if w < target:
                target = w
        k = target - now
        for skip in self._skips:
            skip(st, k)
        st.cycle = target
        stats = st.stats
        stats.cycles += k
        stats.ff_jumps += 1
        stats.ff_cycles_skipped += k
        if target - st.last_commit_cycle > st.deadlock_cycles:
            self._raise_deadlock()
        return k

    def _progress_mark(self) -> int:
        """Cheap monotone counter that changes whenever a cycle moved any
        instruction through the pipeline; used to gate fast-forward
        attempts so busy cycles pay one integer sum, not a full scan."""
        s = self.state.stats
        return s.fetched + s.dispatched + s.issued + s.committed + s.stores

    def finished(self) -> bool:
        """True when a finite (non-wrapping) run has fully drained."""
        st = self.state
        if st.events:
            return False
        decoupled = self.cfg.decoupled
        for t in st.threads:
            if not t.exhausted or t.wrong_path:
                return False
            if t.rob or t.fetch_buf:
                return False
            if decoupled:
                if t.aq.q or t.iq.q:
                    return False
            elif t.uq.q:
                return False
            if t.saq.q:
                return False
        return True

    def reset_stats(self) -> None:
        """Zero every statistic (used at the warm-up boundary)."""
        st = self.state
        st.stats = SimStats()
        st.mem.reset_stats()
        for t in st.threads:
            t.committed = 0
        st.last_commit_cycle = st.cycle

    def run(
        self,
        max_commits: int | None = None,
        max_cycles: int | None = 2_000_000,
        warmup_commits: int = 0,
        fast_forward: bool = True,
    ) -> SimStats:
        """Run the machine and return the (finalised) statistics.

        Args:
            max_commits: stop after this many post-warm-up commits.
            max_cycles: hard cycle bound (post warm-up).
            warmup_commits: commits to execute (and discard) before the
                measured region starts.
            fast_forward: jump over provably idle windows (statistics are
                bit-identical either way; disable only to measure or to
                differentially test the per-cycle walk).
        """
        if max_commits is None and max_cycles is None:
            raise ValueError("need at least one stop condition")
        st = self.state
        # a tick-driven prefetcher mutates memory state on a clock the
        # skip() contract cannot replay; fall back to the per-cycle walk
        fast_forward = fast_forward and st.mem.fast_forward_safe
        if warmup_commits:
            # the warm-up loop intentionally ignores finite-drain: a
            # finite program too short for its warm-up budget hits the
            # deadlock horizon, exactly like the pre-inlined loop did
            self._run_region(
                st.total_committed + warmup_commits, None, fast_forward,
                finite=False,
            )
            self.reset_stats()
        commit_target = (
            st.total_committed + max_commits if max_commits else None
        )
        cycle_limit = st.cycle + max_cycles if max_cycles else None
        self._run_region(
            commit_target, cycle_limit, fast_forward, finite=st.finite
        )
        return self.snapshot()

    def _run_region(
        self,
        commit_target: int | None,
        cycle_limit: int | None,
        fast_forward: bool,
        finite: bool,
    ) -> None:
        """The hot cycle loop of one region (warm-up or measured).

        Semantically ``while not done: step()`` plus idle-window jumps,
        with ``step()`` and ``_progress_mark()`` inlined: per simulated
        cycle the factored version paid two method calls, twelve stats
        attribute reads and six ``.tick`` attribute resolutions — all
        loop-invariant. ``step()`` stays the reference single-cycle
        entry point for tracers and tests.
        """
        st = self.state
        mem = st.mem
        fast = self._fast_forward
        t0, t1, t2, t3, t4, t5 = self._ticks
        idle_hint = False
        while True:
            if (
                commit_target is not None
                and st.total_committed >= commit_target
            ):
                break
            if cycle_limit is not None and st.cycle >= cycle_limit:
                break
            if finite and self.finished():
                break
            if idle_hint and fast_forward and fast(cycle_limit):
                idle_hint = False
                continue
            stats = st.stats
            before = (
                stats.fetched + stats.dispatched + stats.issued
                + stats.committed + stats.stores
            )
            # -- inlined step() --
            mem._ports_used = 0
            t0(st)
            t1(st)
            t2(st)
            t3(st)
            t4(st)
            t5(st)
            st.cycle += 1
            stats.cycles += 1
            if st.cycle - st.last_commit_cycle > st.deadlock_cycles:
                self._raise_deadlock()
            idle_hint = before == (
                stats.fetched + stats.dispatched + stats.issued
                + stats.committed + stats.stores
            )

    def snapshot(self) -> SimStats:
        """Finalise and return the statistics object."""
        st = self.state
        stats = st.stats
        stats.bus_utilization = st.mem.bus_utilization(stats.cycles)
        stats.line_fills = st.mem.fills
        stats.writebacks = st.mem.writebacks
        stats.mshr_alloc_failures = st.mem.mshrs.alloc_failures
        stats.blocked_requests = st.mem.blocked_requests
        stats.level_stats = st.mem.level_stats()
        stats.prefetch_fills = st.mem.prefetch_fills
        stats.prefetch_hits = st.mem.prefetch_hits
        stats.prefetch_dropped = st.mem.prefetch_dropped
        stats.committed_per_thread = {
            t.tid: t.committed for t in st.threads
        }
        return stats

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural invariants (used by the property tests)."""
        for t in self.state.threads:
            t.rename.check_invariants()
            seqs = [d.seq for d in t.rob]
            assert seqs == sorted(seqs), "ROB out of program order"
            for q in (t.aq.q, t.iq.q, t.uq.q, t.saq.q):
                s = [d.seq for d in q]
                assert s == sorted(s), "queue out of program order"
