"""The cycle-accurate multithreaded decoupled access/execute pipeline.

One :class:`Processor` instance models the whole machine of the paper's
Figure 2: replicated per-thread front ends and queues
(:class:`~repro.core.context.ThreadContext`), shared issue slots and
functional units (4 AP + 4 EP), and a shared memory system.

Per-cycle phase order (later phases see earlier phases' effects in the same
cycle, which models the natural pipeline flow):

1. **writeback** — functional-unit and memory completions set scoreboard
   bits; branches resolve, mispredictions squash (walk-back recovery);
2. **commit** — per-thread in-order graduation from the ROB;
3. **issue** — in-order per-unit issue, all threads competing round-robin
   for the 4+4 slots (the paper's "full simultaneous issue"); issue-slot
   breakdown and perceived-latency accounting happen here;
4. **store drain** — committed stores perform their cache writes;
5. **dispatch** — steer, rename, allocate queue/ROB/SAQ entries;
6. **fetch** — two threads per cycle (I-COUNT policy), up to 8 instructions
   each, stopping at a predicted-taken branch; mispredicted branches switch
   the thread onto a synthetic wrong path until they resolve.
"""

from __future__ import annotations

import heapq

from repro.core.config import MachineConfig
from repro.core.context import ThreadContext
from repro.isa.instruction import (
    DynInst,
    ST_COMPLETED,
    ST_DISPATCHED,
    ST_ISSUED,
    ST_SQUASHED,
)
from repro.isa.opclass import OpClass, Unit
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemorySystem, S_BLOCKED, S_HIT, S_MISS
from repro.stats.counters import (
    SLOT_IDLE,
    SLOT_OTHER,
    SLOT_USEFUL,
    SLOT_WAIT_FU,
    SLOT_WAIT_MEM,
    SLOT_WRONG_PATH,
    SimStats,
)

_OP_BRANCH = OpClass.BRANCH
_OP_LOAD_F = OpClass.LOAD_F
_OP_LOAD_I = OpClass.LOAD_I
_OP_STORE_F = OpClass.STORE_F
_OP_STORE_I = OpClass.STORE_I
_UNIT_AP = Unit.AP
_UNIT_EP = Unit.EP


class SimulationError(RuntimeError):
    """Raised when the pipeline stops making forward progress."""


class Processor:
    """The multithreaded decoupled processor (paper Figure 2)."""

    def __init__(
        self,
        cfg: MachineConfig,
        playlists: list[list[Trace]],
        seed: int = 0,
        wrap: bool = True,
    ):
        if len(playlists) != cfg.n_threads:
            raise ValueError(
                f"config asks for {cfg.n_threads} threads but "
                f"{len(playlists)} playlists were provided"
            )
        self.cfg = cfg
        self.mem = MemorySystem(
            l1_bytes=cfg.l1_bytes,
            line_bytes=cfg.line_bytes,
            l1_ports=cfg.l1_ports,
            mshrs=cfg.mshrs,
            l2_latency=cfg.l2_latency,
            bus_bytes_per_cycle=cfg.bus_bytes_per_cycle,
            l1_hit_latency=cfg.l1_hit_latency,
        )
        self.threads = [
            ThreadContext(t, cfg, playlists[t], seed=seed, wrap=wrap)
            for t in range(cfg.n_threads)
        ]
        self._finite = not wrap
        self.stats = SimStats()
        self.cycle = 0
        self.total_committed = 0
        self._events: list[tuple[int, int, DynInst]] = []
        self._evseq = 0
        self._rr_issue = 0
        self._rr_dispatch = 0
        self._last_commit_cycle = 0
        #: cycles without a commit before declaring deadlock
        self.deadlock_cycles = 100_000

    # ------------------------------------------------------------------ events

    def _complete_later(self, inst: DynInst, cycle: int) -> None:
        self._evseq += 1
        heapq.heappush(self._events, (cycle, self._evseq, inst))

    # --------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        events = self._events
        now = self.cycle
        threads = self.threads
        while events and events[0][0] <= now:
            inst = heapq.heappop(events)[2]
            t = threads[inst.thread]
            if inst.state == ST_SQUASHED:
                # zombie: squashed while in flight; reclaim its register
                t.rename.free(inst.pdest)
                continue
            inst.state = ST_COMPLETED
            inst.complete_cycle = now
            p = inst.pdest
            if p >= 0:
                t.rename.ready[p] = 1
            if inst.static.op == _OP_BRANCH and not inst.wrong_path:
                t.unresolved_branches -= 1
                if inst.pred_taken != inst.static.taken:
                    self._squash(t, inst)

    def _squash(self, t: ThreadContext, branch: DynInst) -> None:
        """Walk-back recovery from a mispredicted branch."""
        stats = self.stats
        stats.squashes += 1
        seq = branch.seq
        t.fetch_buf.clear()
        t.resume_from(seq)
        if self.cfg.decoupled:
            t.aq.squash_tail(seq)
            t.iq.squash_tail(seq)
        else:
            t.uq.squash_tail(seq)
        t.saq.squash_tail(seq)
        rob = t.rob
        rename = t.rename
        while rob and rob[-1].seq > seq:
            d = rob.pop()
            stats.squashed_instructions += 1
            if d.static.op == _OP_BRANCH:
                t.unresolved_branches -= 1
                t.branch_resume.pop(d.seq, None)
            if d.pdest >= 0:
                rename.undo_rename(d.static.dest, d.pdest, d.old_pdest)
                if d.state != ST_ISSUED:
                    # not in flight: reclaim now; in-flight registers are
                    # reclaimed when their completion event drains
                    rename.free(d.pdest)
            d.state = ST_SQUASHED

    # ------------------------------------------------------------------- commit

    def _commit(self) -> None:
        stats = self.stats
        width = self.cfg.commit_width
        any_commit = False
        for t in self.threads:
            n = width
            rob = t.rob
            rename = t.rename
            ready = rename.ready
            while n and rob:
                d = rob[0]
                if d.state != ST_COMPLETED:
                    break
                if d.pdata >= 0 and not ready[d.pdata]:
                    break  # store whose data is not yet available
                if d.static.is_store:
                    d.store_ready = True
                rob.popleft()
                if d.old_pdest >= 0:
                    rename.free(d.old_pdest)
                t.committed += 1
                stats.committed += 1
                self.total_committed += 1
                any_commit = True
                n -= 1
        if any_commit:
            self._last_commit_cycle = self.cycle

    # -------------------------------------------------------------------- issue

    def _try_issue(self, t: ThreadContext, d: DynInst, now: int):
        """Attempt to issue one instruction.

        Returns ``None`` on success, else ``(slot_category, load, consumer)``
        describing why the queue head is blocked.
        """
        rename = t.rename
        ready = rename.ready
        for p in d.psrcs:
            if not ready[p]:
                prod = rename.producer[p]
                if prod is not None and prod.load_miss and prod.state == ST_ISSUED:
                    return (SLOT_WAIT_MEM, prod, d)
                return (SLOT_WAIT_FU, None, d)
        op = d.static.op
        cfg = self.cfg
        stats = self.stats
        if op == _OP_LOAD_F or op == _OP_LOAD_I:
            mem = self.mem
            fwd = t.saq.find_older_match(d.static.addr, d.seq)
            if fwd is not None:
                if fwd.pdata >= 0 and not ready[fwd.pdata]:
                    return (SLOT_OTHER, None, d)
                # store-to-load forwarding: completes like a hit
                self._complete_later(d, now + 1 + mem.hit_latency)
                if not d.wrong_path:
                    if op == _OP_LOAD_F:
                        stats.loads_fp += 1
                    else:
                        stats.loads_int += 1
            else:
                if not mem.port_available():
                    return (SLOT_OTHER, None, d)
                status, when = mem.load(t.salted(d.static.addr), now)
                if status == S_BLOCKED:
                    return (SLOT_OTHER, None, d)
                mem.claim_port()
                self._complete_later(d, when + 1)  # +1: address generation
                if status != S_HIT:
                    d.load_miss = True
                if not d.wrong_path:
                    if op == _OP_LOAD_F:
                        stats.loads_fp += 1
                        if status == S_MISS:
                            stats.load_misses_fp += 1
                        elif status != S_HIT:
                            stats.load_merged_fp += 1
                    else:
                        stats.loads_int += 1
                        if status == S_MISS:
                            stats.load_misses_int += 1
                        elif status != S_HIT:
                            stats.load_merged_int += 1
        elif d.unit == _UNIT_AP:
            # IALU, BRANCH, ITOF, store address generation
            self._complete_later(d, now + cfg.ap_latency)
        else:
            # FALU, FTOI
            self._complete_later(d, now + cfg.ep_latency)
        d.state = ST_ISSUED
        d.issue_cycle = now
        stats.issued += 1
        unit = int(d.unit)
        if d.wrong_path:
            stats.issued_wrong_path += 1
            stats.slot_counts[unit][SLOT_WRONG_PATH] += 1
        else:
            stats.slot_counts[unit][SLOT_USEFUL] += 1
            if unit == 1:
                # slip: how far the AP's issue point runs ahead of the EP's
                slip = t.last_ap_seq - d.seq
                if slip > 0:
                    stats.slip_total += slip
                stats.slip_samples += 1
            elif d.seq > t.last_ap_seq:
                t.last_ap_seq = d.seq
        return None

    def _account_slots(self, unit: int, free: int, blocked: list) -> None:
        """Attribute empty issue slots and perceived-latency stall cycles."""
        stats = self.stats
        if free <= 0:
            return
        counts = stats.slot_counts[unit]
        if blocked:
            k = len(blocked)
            for s in range(free):
                counts[blocked[s % k][0]] += 1
        else:
            counts[SLOT_IDLE] += free
        # Perceived latency: one stall cycle per consumer blocked on an
        # outstanding load miss while a free slot exists (paper section 3.2),
        # bounded by the number of free slots.
        attributed = 0
        for reason, load, consumer in blocked:
            if attributed >= free:
                break
            if (
                reason == SLOT_WAIT_MEM
                and load is not None
                and not load.wrong_path
                and not consumer.wrong_path
            ):
                if load.static.op == _OP_LOAD_F:
                    stats.perceived_stall_fp += 1
                else:
                    stats.perceived_stall_int += 1
                attributed += 1

    def _issue(self) -> None:
        cfg = self.cfg
        now = self.cycle
        threads = self.threads
        n = len(threads)
        start = self._rr_issue
        self._rr_issue = (start + 1) % n
        if cfg.decoupled:
            ap_free = cfg.ap_width
            ap_blocked: list = []
            for i in range(n):
                if not ap_free:
                    break
                t = threads[(start + i) % n]
                q = t.aq.q
                while ap_free and q:
                    res = self._try_issue(t, q[0], now)
                    if res is None:
                        q.popleft()
                        ap_free -= 1
                    else:
                        ap_blocked.append(res)
                        break
            ep_free = cfg.ep_width
            ep_blocked: list = []
            for i in range(n):
                if not ep_free:
                    break
                t = threads[(start + i) % n]
                q = t.iq.q
                while ep_free and q:
                    res = self._try_issue(t, q[0], now)
                    if res is None:
                        q.popleft()
                        ep_free -= 1
                    else:
                        ep_blocked.append(res)
                        break
            self._account_slots(0, ap_free, ap_blocked)
            self._account_slots(1, ep_free, ep_blocked)
        else:
            ap_free = cfg.ap_width
            ep_free = cfg.ep_width
            ap_blocked = []
            ep_blocked = []
            for i in range(n):
                if not ap_free and not ep_free:
                    break
                t = threads[(start + i) % n]
                q = t.uq.q
                while q:
                    d = q[0]
                    if d.unit == _UNIT_AP:
                        if not ap_free:
                            break
                    elif not ep_free:
                        break
                    res = self._try_issue(t, d, now)
                    if res is None:
                        q.popleft()
                        if d.unit == _UNIT_AP:
                            ap_free -= 1
                        else:
                            ep_free -= 1
                    else:
                        if d.unit == _UNIT_AP:
                            ap_blocked.append(res)
                        else:
                            ep_blocked.append(res)
                        break
            self._account_slots(0, ap_free, ap_blocked)
            self._account_slots(1, ep_free, ep_blocked)

    # -------------------------------------------------------------- store drain

    def _drain_stores(self) -> None:
        mem = self.mem
        now = self.cycle
        stats = self.stats
        for t in self.threads:
            saq = t.saq
            while saq.q:
                d = saq.q[0]
                if not d.store_ready or d.mem_done:
                    break
                if not mem.port_available():
                    return
                status, _when = mem.store(t.salted(d.static.addr), now)
                if status == S_BLOCKED:
                    break
                mem.claim_port()
                d.mem_done = True
                saq.release_head()
                stats.stores += 1
                if status == S_MISS:
                    stats.store_misses += 1
                elif status != S_HIT:
                    stats.store_merged += 1

    # ----------------------------------------------------------------- dispatch

    def _can_dispatch(self, t: ThreadContext, d: DynInst) -> bool:
        cfg = self.cfg
        if len(t.rob) >= cfg.rob_size:
            return False
        s = d.static
        op = s.op
        if op == _OP_BRANCH and t.unresolved_branches >= cfg.max_unresolved_branches:
            return False
        if (op == _OP_STORE_F or op == _OP_STORE_I) and t.saq.full:
            return False
        if cfg.decoupled:
            q = t.iq if d.unit == _UNIT_EP else t.aq
        else:
            q = t.uq
        if q.full:
            return False
        dest = s.dest
        if dest is not None and not t.rename.can_rename_dest(dest):
            return False
        return True

    def _do_dispatch(self, t: ThreadContext, d: DynInst) -> None:
        rename = t.rename
        s = d.static
        op = s.op
        if op == _OP_STORE_F or op == _OP_STORE_I:
            srcs = s.srcs
            d.psrcs = rename.srcs_of(srcs[:1])
            if len(srcs) > 1:
                data = srcs[1]
                if data != 31 and data != 63:  # hardwired zeros
                    d.pdata = rename.map[data]
            t.saq.push(d)
        else:
            d.psrcs = rename.srcs_of(s.srcs)
        dest = s.dest
        if dest is not None:
            d.pdest, d.old_pdest = rename.rename_dest(dest)
            if d.pdest >= 0:
                rename.set_producer(d.pdest, d)
        if op == _OP_BRANCH:
            t.unresolved_branches += 1
        if self.cfg.decoupled:
            (t.iq if d.unit == _UNIT_EP else t.aq).push(d)
        else:
            t.uq.push(d)
        t.rob.append(d)
        self.stats.dispatched += 1

    def _dispatch(self) -> None:
        budget = self.cfg.dispatch_width
        threads = self.threads
        n = len(threads)
        start = self._rr_dispatch
        self._rr_dispatch = (start + 1) % n
        for i in range(n):
            if not budget:
                break
            t = threads[(start + i) % n]
            buf = t.fetch_buf
            while budget and buf:
                d = buf[0]
                if not self._can_dispatch(t, d):
                    break
                buf.popleft()
                self._do_dispatch(t, d)
                budget -= 1

    # -------------------------------------------------------------------- fetch

    def _fetch_thread(self, t: ThreadContext) -> None:
        cfg = self.cfg
        stats = self.stats
        n = min(cfg.fetch_width, cfg.fetch_buffer - len(t.fetch_buf))
        now = self.cycle
        buf = t.fetch_buf
        while n > 0:
            if t.exhausted and not t.wrong_path:
                break
            if t.wrong_path:
                s = t.next_wp_inst()
                d = DynInst(s, t.tid, t.seq, True)
                t.seq += 1
                d.fetch_cycle = now
                buf.append(d)
                stats.fetched += 1
                stats.fetched_wrong_path += 1
                n -= 1
                continue
            s = t.cur_static()
            d = DynInst(s, t.tid, t.seq, False)
            t.seq += 1
            d.fetch_cycle = now
            t.advance()
            buf.append(d)
            stats.fetched += 1
            n -= 1
            if s.op == _OP_BRANCH:
                pred = t.bht.predict_and_update(s.pc, s.taken)
                d.pred_taken = pred
                stats.branches += 1
                if pred != s.taken:
                    stats.branch_mispredicts += 1
                    t.wrong_path = True
                    t.mark_resume(d.seq)
                if pred:
                    break  # a predicted-taken branch ends the fetch group

    def _fetch(self) -> None:
        cfg = self.cfg
        threads = self.threads
        n = len(threads)
        cands = [t for t in threads if len(t.fetch_buf) < cfg.fetch_buffer]
        if not cands:
            return
        start = self.cycle % n
        if cfg.fetch_policy == "icount":
            cands.sort(key=lambda t: (len(t.fetch_buf), (t.tid - start) % n))
        else:
            cands.sort(key=lambda t: (t.tid - start) % n)
        for t in cands[: cfg.fetch_threads]:
            self._fetch_thread(t)

    # ---------------------------------------------------------------- main loop

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.mem.begin_cycle()
        self._writeback()
        self._commit()
        self._issue()
        self._drain_stores()
        self._dispatch()
        self._fetch()
        self.cycle += 1
        self.stats.cycles += 1
        if self.cycle - self._last_commit_cycle > self.deadlock_cycles:
            raise SimulationError(
                f"no commits for {self.deadlock_cycles} cycles at cycle "
                f"{self.cycle}; pipeline state is wedged"
            )

    def finished(self) -> bool:
        """True when a finite (non-wrapping) run has fully drained."""
        if self._events:
            return False
        for t in self.threads:
            if not t.exhausted or t.wrong_path:
                return False
            if t.rob or t.fetch_buf:
                return False
            if t.aq.q or t.iq.q or t.uq.q or t.saq.q:
                return False
        return True

    def reset_stats(self) -> None:
        """Zero every statistic (used at the warm-up boundary)."""
        self.stats = SimStats()
        self.mem.reset_stats()
        for t in self.threads:
            t.committed = 0
        self._last_commit_cycle = self.cycle

    def run(
        self,
        max_commits: int | None = None,
        max_cycles: int | None = 2_000_000,
        warmup_commits: int = 0,
    ) -> SimStats:
        """Run the machine and return the (finalised) statistics.

        Args:
            max_commits: stop after this many post-warm-up commits.
            max_cycles: hard cycle bound (post warm-up).
            warmup_commits: commits to execute (and discard) before the
                measured region starts.
        """
        if max_commits is None and max_cycles is None:
            raise ValueError("need at least one stop condition")
        if warmup_commits:
            target = self.total_committed + warmup_commits
            while self.total_committed < target:
                self.step()
            self.reset_stats()
        commit_target = (
            self.total_committed + max_commits if max_commits else None
        )
        cycle_limit = self.cycle + max_cycles if max_cycles else None
        while True:
            if commit_target is not None and self.total_committed >= commit_target:
                break
            if cycle_limit is not None and self.cycle >= cycle_limit:
                break
            if self._finite and self.finished():
                break
            self.step()
        return self.snapshot()

    def snapshot(self) -> SimStats:
        """Finalise and return the statistics object."""
        stats = self.stats
        stats.bus_utilization = self.mem.bus_utilization(stats.cycles)
        stats.line_fills = self.mem.fills
        stats.writebacks = self.mem.writebacks
        stats.mshr_alloc_failures = self.mem.mshrs.alloc_failures
        stats.committed_per_thread = {
            t.tid: t.committed for t in self.threads
        }
        return stats

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural invariants (used by the property tests)."""
        for t in self.threads:
            t.rename.check_invariants()
            seqs = [d.seq for d in t.rob]
            assert seqs == sorted(seqs), "ROB out of program order"
            for q in (t.aq.q, t.iq.q, t.uq.q, t.saq.q):
                s = [d.seq for d in q]
                assert s == sorted(s), "queue out of program order"
