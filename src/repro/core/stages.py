"""Composable pipeline stages.

Each phase of the old monolithic ``Processor.step()`` is one :class:`Stage`
operating on a shared :class:`~repro.core.state.MachineState`.  The
scheduler ticks the stages in pipeline order (writeback, commit, issue,
store drain, dispatch, fetch — later stages see earlier stages' effects in
the same cycle, modelling the natural pipeline flow), and the decoupled
vs. unified machines differ only in which issue-stage variant the list
contains — not in branches inside a monolith.

Every stage also answers two questions for the event-horizon fast-forward:

* :meth:`Stage.next_wake_cycle` — the earliest future cycle at which this
  stage's tick could possibly change machine state, ``None`` meaning "only
  a completion event (or another stage acting first) can wake me", and the
  current cycle meaning "I might act right now — do not skip".  The
  contract is conservative: a stage may only report a future wake when
  every tick before it would provably be a pure no-op **except** for
  per-cycle statistics that :meth:`Stage.skip` knows how to bulk-replay.
  Operand-wait stalls report ``None`` (the producer's completion event
  bounds the window); structural memory refusals — a load or store head
  retrying against a pinned L1 set or exhausted MSHR file — report the
  refusal's own wake cycle from
  :meth:`~repro.memory.hierarchy.MemorySystem.refusal_wake`, which is what
  lets the horizon fire in *partially* idle windows.
* :meth:`Stage.skip` — replay the stage's per-cycle side effects for ``k``
  skipped cycles in bulk.  For most stages that is nothing; the issue
  stages bulk-attribute empty issue slots and perceived-latency stalls per
  round-robin phase, issue/dispatch advance their round-robin pointers by
  ``k``, and issue/store-drain bulk-replay the refusal counters their
  blocked memory accesses would have incremented every cycle.  ``skip``
  must leave the machine bit-identical to ``k`` individual ticks
  (enforced by ``tests/test_fast_forward.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.state import MachineState
from repro.core.context import ThreadContext
from repro.isa.instruction import (
    DynInst,
    ST_COMPLETED,
    ST_ISSUED,
    ST_SQUASHED,
)
from repro.isa.opclass import OpClass, Unit
from repro.memory.hierarchy import S_BLOCKED, S_HIT, S_MISS
from repro.stats.counters import (
    SLOT_IDLE,
    SLOT_OTHER,
    SLOT_USEFUL,
    SLOT_WAIT_FU,
    SLOT_WAIT_MEM,
    SLOT_WRONG_PATH,
)

_OP_BRANCH = OpClass.BRANCH
_OP_LOAD_F = OpClass.LOAD_F
_OP_LOAD_I = OpClass.LOAD_I
_OP_STORE_F = OpClass.STORE_F
_OP_STORE_I = OpClass.STORE_I
_UNIT_AP = Unit.AP
_UNIT_EP = Unit.EP


class Stage:
    """One pipeline phase; stateless — all machine state lives in the
    :class:`MachineState` passed to every call."""

    __slots__ = ()
    name = "stage"

    def tick(self, st: MachineState) -> None:
        """Advance this stage by one cycle."""
        raise NotImplementedError

    def next_wake_cycle(self, st: MachineState):
        """Earliest future cycle at which ticking could change machine
        state: ``None`` = only an event can wake this stage, ``st.cycle``
        = it might act right now (the conservative default)."""
        return st.cycle

    def skip(self, st: MachineState, k: int) -> None:
        """Bulk-replay the side effects of ``k`` skipped ticks."""


# ------------------------------------------------------------------- writeback


class WritebackStage(Stage):
    """Drain due completion events: scoreboard updates, branch resolution
    and (on mispredictions) walk-back squash recovery."""

    __slots__ = ()
    name = "writeback"

    def tick(self, st: MachineState) -> None:
        events = st.events
        now = st.cycle
        threads = st.threads
        while events and events[0][0] <= now:
            inst = heappop(events)[2]
            t = threads[inst.thread]
            if inst.state == ST_SQUASHED:
                # zombie: squashed while in flight; reclaim its register
                t.rename.free(inst.pdest)
                continue
            inst.state = ST_COMPLETED
            inst.complete_cycle = now
            p = inst.pdest
            if p >= 0:
                t.rename.ready[p] = 1
            if inst.static.op == _OP_BRANCH and not inst.wrong_path:
                t.unresolved_branches -= 1
                if inst.pred_taken != inst.static.taken:
                    self._squash(st, t, inst)

    def _squash(self, st: MachineState, t: ThreadContext, branch: DynInst) -> None:
        """Walk-back recovery from a mispredicted branch."""
        stats = st.stats
        stats.squashes += 1
        seq = branch.seq
        t.fetch_buf.clear()
        t.resume_from(seq)
        if st.cfg.decoupled:
            t.aq.squash_tail(seq)
            t.iq.squash_tail(seq)
        else:
            t.uq.squash_tail(seq)
        t.saq.squash_tail(seq)
        rob = t.rob
        rename = t.rename
        while rob and rob[-1].seq > seq:
            d = rob.pop()
            stats.squashed_instructions += 1
            if d.static.op == _OP_BRANCH:
                t.unresolved_branches -= 1
                t.branch_resume.pop(d.seq, None)
            if d.pdest >= 0:
                rename.undo_rename(d.static.dest, d.pdest, d.old_pdest)
                if d.state != ST_ISSUED:
                    # not in flight: reclaim now; in-flight registers are
                    # reclaimed when their completion event drains
                    rename.free(d.pdest)
            d.state = ST_SQUASHED

    def next_wake_cycle(self, st: MachineState):
        # a due event means work this very cycle; future events are the
        # horizon's own cap, so there is nothing to report beyond that
        events = st.events
        return st.cycle if events and events[0][0] <= st.cycle else None


# ---------------------------------------------------------------------- commit


class CommitStage(Stage):
    """Per-thread in-order graduation from the ROB."""

    __slots__ = ()
    name = "commit"

    def tick(self, st: MachineState) -> None:
        stats = st.stats
        width = st.cfg.commit_width
        total = 0
        for t in st.threads:
            n = width
            rob = t.rob
            if not rob:
                continue
            rename = t.rename
            ready = rename.ready
            ap_regs = rename.ap_regs
            free_ap = rename.free_ap
            free_ep = rename.free_ep
            committed = 0
            while n and rob:
                d = rob[0]
                if d.state != ST_COMPLETED:
                    break
                if d.pdata >= 0 and not ready[d.pdata]:
                    break  # store whose data is not yet available
                if d.static.is_store:
                    d.store_ready = True
                rob.popleft()
                old = d.old_pdest
                if old >= 0:
                    (free_ep if old >= ap_regs else free_ap).append(old)
                committed += 1
                n -= 1
            if committed:
                t.committed += committed
                total += committed
        if total:
            stats.committed += total
            st.total_committed += total
            st.last_commit_cycle = st.cycle

    def next_wake_cycle(self, st: MachineState):
        # a ROB head becomes committable only through a completion event
        # (instruction completion or a store's data register turning
        # ready), so commit either acts now or sleeps until an event
        for t in st.threads:
            rob = t.rob
            if not rob:
                continue
            d = rob[0]
            if d.state == ST_COMPLETED and (
                d.pdata < 0 or t.rename.ready[d.pdata]
            ):
                return st.cycle
        return None


# ----------------------------------------------------------------------- issue


def _blocked_reason(t: ThreadContext, d: DynInst):
    """Why a queue head cannot issue for operand reasons, or ``None``.

    Returns ``(slot_category, load, consumer)`` when some renamed source is
    not ready — the only blocking class that is a pure function of machine
    state (structural blocks touch the memory system and mutate counters).
    """
    rename = t.rename
    ready = rename.ready
    for p in d.psrcs:
        if not ready[p]:
            prod = rename.producer[p]
            if prod is not None and prod.load_miss and prod.state == ST_ISSUED:
                return (SLOT_WAIT_MEM, prod, d)
            return (SLOT_WAIT_FU, None, d)
    return None


#: Sentinel wake value: the head could act (or mutate memory state) this
#: very cycle, so the issue stage must not be skipped over.
_ACT = -1


def _issue_head_wake(st: MachineState, t: ThreadContext, d: DynInst):
    """How long the issue stage can provably ignore queue head ``d``.

    Returns ``None`` when only a completion event can unblock it (operand
    waits, store-to-load forwarding waiting on the store's data register),
    :data:`_ACT` when ticking could issue it or otherwise mutate memory
    state, or ``(wake_cycle, mshr_file)`` — the result of
    :meth:`~repro.memory.hierarchy.MemorySystem.refusal_wake` — when the
    head is a load the memory system structurally refuses until at least
    ``wake_cycle`` (each skipped retry is replayed by :meth:`_IssueStage.skip`).
    """
    if _blocked_reason(t, d) is not None:
        return None
    s = d.static
    op = s.op
    if op != _OP_LOAD_F and op != _OP_LOAD_I:
        return _ACT
    fwd = t.saq.find_older_match(s.addr, d.seq)
    if fwd is not None:
        if fwd.pdata >= 0 and not t.rename.ready[fwd.pdata]:
            return None  # the store's data arrives with an event
        return _ACT      # forwarding would succeed: the load issues
    return st.mem.refusal_wake(t.salted(s.addr), st.cycle, t.tid) or _ACT


def _try_issue(st: MachineState, t: ThreadContext, d: DynInst, now: int):
    """Attempt to issue one instruction.

    Returns ``None`` on success, else ``(slot_category, load, consumer)``
    describing why the queue head is blocked.
    """
    # operand scan: inlined copy of _blocked_reason (the hottest call site;
    # the fast-forward differential test enforces the two stay in lockstep)
    rename = t.rename
    ready = rename.ready
    for p in d.psrcs:
        if not ready[p]:
            prod = rename.producer[p]
            if prod is not None and prod.load_miss and prod.state == ST_ISSUED:
                return (SLOT_WAIT_MEM, prod, d)
            return (SLOT_WAIT_FU, None, d)
    s = d.static
    op = s.op
    stats = st.stats
    # completion scheduling (MachineState.complete_later) is inlined at
    # each site below: one method call per issued instruction adds up
    if op == _OP_LOAD_F or op == _OP_LOAD_I:
        mem = st.mem
        fwd = t.saq.find_older_match(s.addr, d.seq)
        if fwd is not None:
            if fwd.pdata >= 0 and not ready[fwd.pdata]:
                return (SLOT_OTHER, None, d)
            # store-to-load forwarding: completes like a hit
            when = now + 1 + mem.hit_latency
            if not d.wrong_path:
                if op == _OP_LOAD_F:
                    stats.loads_fp += 1
                else:
                    stats.loads_int += 1
        else:
            if mem._ports_used >= mem.ports:
                return (SLOT_OTHER, None, d)
            status, when = mem.load(t.salted(s.addr), now, t.tid)
            if status == S_BLOCKED:
                return (SLOT_OTHER, None, d)
            mem._ports_used += 1
            when += 1  # +1: address generation
            if status != S_HIT:
                d.load_miss = True
            if not d.wrong_path:
                if op == _OP_LOAD_F:
                    stats.loads_fp += 1
                    if status == S_MISS:
                        stats.load_misses_fp += 1
                    elif status != S_HIT:
                        stats.load_merged_fp += 1
                else:
                    stats.loads_int += 1
                    if status == S_MISS:
                        stats.load_misses_int += 1
                    elif status != S_HIT:
                        stats.load_merged_int += 1
    elif d.unit == _UNIT_AP:
        # IALU, BRANCH, ITOF, store address generation
        when = now + st.cfg.ap_latency
    else:
        # FALU, FTOI
        when = now + st.cfg.ep_latency
    evseq = st.evseq + 1
    st.evseq = evseq
    heappush(st.events, (when, evseq, d))
    d.state = ST_ISSUED
    d.issue_cycle = now
    stats.issued += 1
    unit = int(d.unit)
    if d.wrong_path:
        stats.issued_wrong_path += 1
        stats.slot_counts[unit][SLOT_WRONG_PATH] += 1
    else:
        stats.slot_counts[unit][SLOT_USEFUL] += 1
        if unit == 1:
            # slip: how far the AP's issue point runs ahead of the EP's
            slip = t.last_ap_seq - d.seq
            if slip > 0:
                stats.slip_total += slip
            stats.slip_samples += 1
        elif d.seq > t.last_ap_seq:
            t.last_ap_seq = d.seq
    return None


def _account_slots(
    st: MachineState, unit: int, free: int, blocked: list, times: int = 1
) -> None:
    """Attribute empty issue slots and perceived-latency stall cycles.

    ``times`` repeats the identical per-cycle attribution — used by the
    fast-forward to bulk-account a run of cycles that share one blocked
    snapshot and round-robin phase.
    """
    stats = st.stats
    if free <= 0:
        return
    counts = stats.slot_counts[unit]
    if blocked:
        k = len(blocked)
        for s in range(free):
            counts[blocked[s % k][0]] += times
    else:
        counts[SLOT_IDLE] += free * times
    # Perceived latency: one stall cycle per consumer blocked on an
    # outstanding load miss while a free slot exists (paper section 3.2),
    # bounded by the number of free slots.
    attributed = 0
    for reason, load, consumer in blocked:
        if attributed >= free:
            break
        if (
            reason == SLOT_WAIT_MEM
            and load is not None
            and not load.wrong_path
            and not consumer.wrong_path
        ):
            if load.static.op == _OP_LOAD_F:
                stats.perceived_stall_fp += times
            else:
                stats.perceived_stall_int += times
            attributed += 1


class _IssueStage(Stage):
    """Shared skeleton of the two issue variants: round-robin rotation,
    wake computation (the earliest cycle any width-gated queue head could
    issue or change shape) and bulk slot/refusal accounting over a
    fast-forward window."""

    __slots__ = ()

    def _wake_heads(self, st: MachineState, t: ThreadContext):
        """Yield the width-gated queue heads of one thread — exactly the
        instructions :meth:`tick` would evaluate first per queue."""
        raise NotImplementedError

    def next_wake_cycle(self, st: MachineState):
        wake = None
        for t in st.threads:
            for d in self._wake_heads(st, t):
                w = _issue_head_wake(st, t, d)
                if w is None:
                    continue
                if w is _ACT:
                    return st.cycle
                c = w[0]
                if wake is None or c < wake:
                    wake = c
        return wake

    def _probe(self, st: MachineState, start: int) -> tuple[list, list]:
        """Blocked-head snapshot per unit for one round-robin phase,
        mirroring the visiting order of :meth:`tick` when nothing can
        issue (the fast-forward eligibility condition)."""
        raise NotImplementedError

    def skip(self, st: MachineState, k: int) -> None:
        n = len(st.threads)
        start = st.rr_issue
        cfg = st.cfg
        # phase i (cycles start+i, start+i+n, ...) recurs ceil((k-i)/n) times
        for i in range(min(n, k)):
            times = (k - i + n - 1) // n
            ap_blocked, ep_blocked = self._probe(st, (start + i) % n)
            _account_slots(st, 0, cfg.ap_width, ap_blocked, times)
            _account_slots(st, 1, cfg.ep_width, ep_blocked, times)
        st.rr_issue = (start + k) % n
        # Structurally refused loads re-probed the memory system once per
        # cycle per head (issue widths never exhaust inside a window, so
        # every thread's gated heads were visited every cycle regardless
        # of round-robin phase): replay those k refusals per head.
        mem = st.mem
        for t in st.threads:
            for d in self._wake_heads(st, t):
                w = _issue_head_wake(st, t, d)
                if w is not None and w is not _ACT:
                    mem.replay_refusals(w[1], k)


class DecoupledIssueStage(_IssueStage):
    """In-order issue from the per-thread AP/EP queue pair — the paper's
    decoupling mechanism; all threads compete round-robin for the slots."""

    __slots__ = ()
    name = "issue/decoupled"

    def _wake_heads(self, st: MachineState, t: ThreadContext):
        cfg = st.cfg
        if cfg.ap_width and t.aq.q:
            yield t.aq.q[0]
        if cfg.ep_width and t.iq.q:
            yield t.iq.q[0]

    def tick(self, st: MachineState) -> None:
        cfg = st.cfg
        now = st.cycle
        threads = st.threads
        n = len(threads)
        start = st.rr_issue
        st.rr_issue = (start + 1) % n
        ap_free = cfg.ap_width
        ap_blocked: list = []
        for i in range(n):
            if not ap_free:
                break
            t = threads[(start + i) % n]
            q = t.aq.q
            while ap_free and q:
                res = _try_issue(st, t, q[0], now)
                if res is None:
                    q.popleft()
                    ap_free -= 1
                else:
                    ap_blocked.append(res)
                    break
        ep_free = cfg.ep_width
        ep_blocked: list = []
        for i in range(n):
            if not ep_free:
                break
            t = threads[(start + i) % n]
            q = t.iq.q
            while ep_free and q:
                res = _try_issue(st, t, q[0], now)
                if res is None:
                    q.popleft()
                    ep_free -= 1
                else:
                    ep_blocked.append(res)
                    break
        _account_slots(st, 0, ap_free, ap_blocked)
        _account_slots(st, 1, ep_free, ep_blocked)

    def _probe(self, st: MachineState, start: int) -> tuple[list, list]:
        threads = st.threads
        n = len(threads)
        cfg = st.cfg
        ap_blocked: list = []
        ep_blocked: list = []
        # a head with all operands ready inside a window is a structurally
        # refused (or forwarding-data-blocked) load; tick records it as
        # (SLOT_OTHER, None, head), exactly what _try_issue returns
        if cfg.ap_width:
            for i in range(n):
                t = threads[(start + i) % n]
                q = t.aq.q
                if q:
                    d = q[0]
                    r = _blocked_reason(t, d)
                    ap_blocked.append(r if r is not None else (SLOT_OTHER, None, d))
        if cfg.ep_width:
            for i in range(n):
                t = threads[(start + i) % n]
                q = t.iq.q
                if q:
                    d = q[0]
                    r = _blocked_reason(t, d)
                    ep_blocked.append(r if r is not None else (SLOT_OTHER, None, d))
        return ap_blocked, ep_blocked


class UnifiedIssueStage(_IssueStage):
    """The paper's degenerate baseline: one unified in-order queue per
    thread feeds both units, so a stalled head blocks everything younger."""

    __slots__ = ()
    name = "issue/unified"

    def _wake_heads(self, st: MachineState, t: ThreadContext):
        q = t.uq.q
        if q:
            d = q[0]
            cfg = st.cfg
            if cfg.ap_width if d.unit == _UNIT_AP else cfg.ep_width:
                yield d

    def tick(self, st: MachineState) -> None:
        cfg = st.cfg
        now = st.cycle
        threads = st.threads
        n = len(threads)
        start = st.rr_issue
        st.rr_issue = (start + 1) % n
        ap_free = cfg.ap_width
        ep_free = cfg.ep_width
        ap_blocked: list = []
        ep_blocked: list = []
        for i in range(n):
            if not ap_free and not ep_free:
                break
            t = threads[(start + i) % n]
            q = t.uq.q
            while q:
                d = q[0]
                if d.unit == _UNIT_AP:
                    if not ap_free:
                        break
                elif not ep_free:
                    break
                res = _try_issue(st, t, d, now)
                if res is None:
                    q.popleft()
                    if d.unit == _UNIT_AP:
                        ap_free -= 1
                    else:
                        ep_free -= 1
                else:
                    if d.unit == _UNIT_AP:
                        ap_blocked.append(res)
                    else:
                        ep_blocked.append(res)
                    break
        _account_slots(st, 0, ap_free, ap_blocked)
        _account_slots(st, 1, ep_free, ep_blocked)

    def _probe(self, st: MachineState, start: int) -> tuple[list, list]:
        threads = st.threads
        n = len(threads)
        cfg = st.cfg
        ap_blocked: list = []
        ep_blocked: list = []
        if cfg.ap_width or cfg.ep_width:
            for i in range(n):
                t = threads[(start + i) % n]
                q = t.uq.q
                if not q:
                    continue
                d = q[0]
                if d.unit == _UNIT_AP:
                    if cfg.ap_width:
                        r = _blocked_reason(t, d)
                        ap_blocked.append(
                            r if r is not None else (SLOT_OTHER, None, d)
                        )
                elif cfg.ep_width:
                    r = _blocked_reason(t, d)
                    ep_blocked.append(
                        r if r is not None else (SLOT_OTHER, None, d)
                    )
        return ap_blocked, ep_blocked


# ----------------------------------------------------------------- store drain


class StoreDrainStage(Stage):
    """Committed stores perform their cache writes in SAQ order."""

    __slots__ = ()
    name = "store-drain"

    def tick(self, st: MachineState) -> None:
        mem = st.mem
        now = st.cycle
        stats = st.stats
        for t in st.threads:
            saq = t.saq
            while saq.q:
                d = saq.q[0]
                if not d.store_ready or d.mem_done:
                    break
                if not mem.port_available():
                    return
                status, _when = mem.store(t.salted(d.static.addr), now, t.tid)
                if status == S_BLOCKED:
                    break
                mem.claim_port()
                d.mem_done = True
                saq.release_head()
                stats.stores += 1
                if status == S_MISS:
                    stats.store_misses += 1
                elif status != S_HIT:
                    stats.store_merged += 1

    def next_wake_cycle(self, st: MachineState):
        # A drainable head whose write would be *performed* pins the stage
        # to the current cycle; one the memory system structurally refuses
        # only wakes it at the refusal's own horizon — the per-cycle retry
        # counters are bulk-replayed by skip(). A head that is not yet
        # drainable sleeps until commit marks it ready (another stage).
        wake = None
        now = st.cycle
        mem = st.mem
        for t in st.threads:
            q = t.saq.q
            if not q:
                continue
            d = q[0]
            if not d.store_ready or d.mem_done:
                continue
            r = mem.refusal_wake(t.salted(d.static.addr), now, t.tid)
            if r is None:
                return now
            c = r[0]
            if wake is None or c < wake:
                wake = c
        return wake

    def skip(self, st: MachineState, k: int) -> None:
        # every refused drainable head retried once per cycle (ports are
        # never exhausted inside a window, so tick reached every thread)
        mem = st.mem
        now = st.cycle
        for t in st.threads:
            q = t.saq.q
            if not q:
                continue
            d = q[0]
            if not d.store_ready or d.mem_done:
                continue
            r = mem.refusal_wake(t.salted(d.static.addr), now, t.tid)
            if r is not None:
                mem.replay_refusals(r[1], k)


# -------------------------------------------------------------------- dispatch


class DispatchStage(Stage):
    """Steer, rename and allocate queue/ROB/SAQ entries, round-robin
    across threads within the shared dispatch bandwidth."""

    __slots__ = ()
    name = "dispatch"

    @staticmethod
    def can_dispatch(st: MachineState, t: ThreadContext, d: DynInst) -> bool:
        cfg = st.cfg
        if len(t.rob) >= cfg.rob_size:
            return False
        s = d.static
        op = s.op
        if op == _OP_BRANCH and t.unresolved_branches >= cfg.max_unresolved_branches:
            return False
        if op == _OP_STORE_F or op == _OP_STORE_I:
            saq = t.saq
            if len(saq.q) >= saq.capacity:
                return False
        if cfg.decoupled:
            q = t.iq if d.unit == _UNIT_EP else t.aq
        else:
            q = t.uq
        if len(q.q) >= q.capacity:
            return False
        dest = s.dest
        if dest is not None and not t.rename.can_rename_dest(dest):
            return False
        return True

    @staticmethod
    def _do_dispatch(st: MachineState, t: ThreadContext, d: DynInst) -> None:
        rename = t.rename
        s = d.static
        op = s.op
        if op == _OP_STORE_F or op == _OP_STORE_I:
            srcs = s.srcs
            d.psrcs = rename.srcs_of(srcs[:1])
            if len(srcs) > 1:
                data = srcs[1]
                if data != 31 and data != 63:  # hardwired zeros
                    d.pdata = rename.map[data]
            t.saq.push(d)
        else:
            d.psrcs = rename.srcs_of(s.srcs)
        dest = s.dest
        if dest is not None:
            pdest, d.old_pdest = rename.rename_dest(dest)
            d.pdest = pdest
            if pdest >= 0:
                rename.producer[pdest] = d
        if op == _OP_BRANCH:
            t.unresolved_branches += 1
        # capacity was checked by can_dispatch; append directly
        if st.cfg.decoupled:
            (t.iq if d.unit == _UNIT_EP else t.aq).q.append(d)
        else:
            t.uq.q.append(d)
        t.rob.append(d)

    def tick(self, st: MachineState) -> None:
        # Inlined merge of can_dispatch + _do_dispatch with the per-tick
        # config hoisted into locals: this is the hottest stage on busy
        # workloads, and the split version re-derived static fields and
        # re-selected the target queue once per check and once per commit.
        # The split methods stay authoritative for quiescent(); the
        # fast-forward differential suite keeps the copies in lockstep.
        cfg = st.cfg
        budget = cfg.dispatch_width
        threads = st.threads
        n = len(threads)
        start = st.rr_dispatch
        st.rr_dispatch = (start + 1) % n
        rob_size = cfg.rob_size
        max_branches = cfg.max_unresolved_branches
        decoupled = cfg.decoupled
        dispatched = 0
        for i in range(n):
            if not budget:
                break
            t = threads[(start + i) % n]
            buf = t.fetch_buf
            if not buf:
                continue
            rob = t.rob
            rename = t.rename
            saq = t.saq
            while budget and buf:
                d = buf[0]
                if len(rob) >= rob_size:
                    break
                s = d.static
                op = s.op
                is_store = op == _OP_STORE_F or op == _OP_STORE_I
                if (
                    op == _OP_BRANCH
                    and t.unresolved_branches >= max_branches
                ):
                    break
                if is_store and len(saq.q) >= saq.capacity:
                    break
                if decoupled:
                    q = t.iq if d.unit == _UNIT_EP else t.aq
                else:
                    q = t.uq
                if len(q.q) >= q.capacity:
                    break
                dest = s.dest
                if dest is not None and not rename.can_rename_dest(dest):
                    break
                buf.popleft()
                if is_store:
                    srcs = s.srcs
                    d.psrcs = rename.srcs_of(srcs[:1])
                    if len(srcs) > 1:
                        data = srcs[1]
                        if data != 31 and data != 63:  # hardwired zeros
                            d.pdata = rename.map[data]
                    saq.push(d)
                else:
                    d.psrcs = rename.srcs_of(s.srcs)
                if dest is not None:
                    pdest, d.old_pdest = rename.rename_dest(dest)
                    d.pdest = pdest
                    if pdest >= 0:
                        rename.producer[pdest] = d
                if op == _OP_BRANCH:
                    t.unresolved_branches += 1
                q.q.append(d)
                rob.append(d)
                dispatched += 1
                budget -= 1
        if dispatched:
            st.stats.dispatched += dispatched

    def next_wake_cycle(self, st: MachineState):
        # every dispatch obstacle (full ROB/queue/SAQ, branch limit,
        # rename pressure, empty fetch buffer) clears only through
        # another stage acting, so dispatch either acts now or sleeps
        for t in st.threads:
            buf = t.fetch_buf
            if buf and self.can_dispatch(st, t, buf[0]):
                return st.cycle
        return None

    def skip(self, st: MachineState, k: int) -> None:
        # the round-robin pointer rotates every cycle, progress or not
        st.rr_dispatch = (st.rr_dispatch + k) % len(st.threads)


# ----------------------------------------------------------------------- fetch


class FetchStage(Stage):
    """I-COUNT thread selection, up to ``fetch_threads`` per cycle, each
    fetching up to ``fetch_width`` instructions and stopping at a
    predicted-taken branch; mispredicted branches switch the thread onto a
    synthetic wrong path until they resolve."""

    __slots__ = ()
    name = "fetch"

    @staticmethod
    def _fetch_thread(st: MachineState, t: ThreadContext) -> None:
        # The trace walk is inlined (ThreadContext.advance stays the
        # reference implementation): per fetched instruction the split
        # version paid a __getitem__, a __len__ and an advance() call.
        cfg = st.cfg
        stats = st.stats
        buf = t.fetch_buf
        buf_append = buf.append
        n = min(cfg.fetch_width, cfg.fetch_buffer - len(buf))
        now = st.cycle
        tid = t.tid
        fetched = 0
        wp_fetched = 0
        trace = t.trace
        insts = trace._insts
        tlen = len(insts)
        playlist = t.playlist
        wrap = t.wrap
        bht = t.bht
        seq = t.seq
        pos = t.pos
        while n > 0:
            if t.wrong_path:
                s = t.next_wp_inst()
                d = DynInst(s, tid, seq, True)
                seq += 1
                d.fetch_cycle = now
                buf_append(d)
                fetched += 1
                wp_fetched += 1
                n -= 1
                continue
            if pos >= tlen:  # exhausted (finite program)
                break
            s = insts[pos]
            d = DynInst(s, tid, seq, False)
            seq += 1
            d.fetch_cycle = now
            pos += 1
            if pos >= tlen and (wrap or t.play_idx + 1 < len(playlist)):
                play_idx = (t.play_idx + 1) % len(playlist)
                t.play_idx = play_idx
                trace = playlist[play_idx]
                t.trace = trace
                insts = trace._insts
                tlen = len(insts)
                pos = 0
            buf_append(d)
            fetched += 1
            n -= 1
            if s.op == _OP_BRANCH:
                pred = bht.predict_and_update(s.pc, s.taken)
                d.pred_taken = pred
                stats.branches += 1
                if pred != s.taken:
                    stats.branch_mispredicts += 1
                    t.wrong_path = True
                    # mark_resume, from the already-advanced locals
                    t.branch_resume[d.seq] = (t.play_idx, pos)
                if pred:
                    break  # a predicted-taken branch ends the fetch group
        t.pos = pos
        t.seq = seq
        if fetched:
            stats.fetched += fetched
            if wp_fetched:
                stats.fetched_wrong_path += wp_fetched

    def tick(self, st: MachineState) -> None:
        cfg = st.cfg
        threads = st.threads
        n = len(threads)
        buffer = cfg.fetch_buffer
        if n == 1 and cfg.fetch_threads > 0:
            # no competition: skip candidate selection entirely
            t = threads[0]
            if len(t.fetch_buf) < buffer:
                self._fetch_thread(st, t)
            return
        cands = [t for t in threads if len(t.fetch_buf) < buffer]
        if not cands:
            return
        start = st.cycle % n
        if cfg.fetch_policy == "icount":
            cands.sort(key=lambda t: (len(t.fetch_buf), (t.tid - start) % n))
        else:
            cands.sort(key=lambda t: (t.tid - start) % n)
        for t in cands[: cfg.fetch_threads]:
            self._fetch_thread(st, t)

    def next_wake_cycle(self, st: MachineState):
        # buffer space opens only when dispatch drains it; a thread with
        # room always fetches at least one instruction, so fetch either
        # acts now or sleeps until another stage moves
        buffer = st.cfg.fetch_buffer
        for t in st.threads:
            if len(t.fetch_buf) < buffer and (t.wrong_path or not t.exhausted):
                return st.cycle
        return None


# ----------------------------------------------------------------- composition


def build_stages(cfg) -> tuple[Stage, ...]:
    """The stage list for one machine configuration, in pipeline order."""
    issue: _IssueStage = (
        DecoupledIssueStage() if cfg.decoupled else UnifiedIssueStage()
    )
    return (
        WritebackStage(),
        CommitStage(),
        issue,
        StoreDrainStage(),
        DispatchStage(),
        FetchStage(),
    )


__all__ = [
    "Stage",
    "WritebackStage",
    "CommitStage",
    "DecoupledIssueStage",
    "UnifiedIssueStage",
    "StoreDrainStage",
    "DispatchStage",
    "FetchStage",
    "build_stages",
]
