"""The SMT + decoupled access/execute core model."""

from repro.core.config import MachineConfig, PAPER_BASELINE, paper_config
from repro.core.context import ThreadContext
from repro.core.predictor import BimodalBHT
from repro.core.processor import Processor, SimulationError
from repro.core.queues import InstQueue, StoreAddressQueue
from repro.core.rename import RenameFile
from repro.core.stages import Stage, build_stages
from repro.core.state import MachineState

__all__ = [
    "MachineConfig",
    "PAPER_BASELINE",
    "paper_config",
    "Processor",
    "SimulationError",
    "MachineState",
    "Stage",
    "build_stages",
    "ThreadContext",
    "BimodalBHT",
    "RenameFile",
    "InstQueue",
    "StoreAddressQueue",
]
