"""Machine configuration.

Defaults reproduce the paper's Figure 2 parameter table. Two derived
configurations cover the paper's experimental variants:

* :meth:`MachineConfig.scaled_for_latency` — section 2 scales "the sizes of
  all the architectural queues and physical register files ... up
  proportionally to the L2 latency"; we use factor ``max(1, lat/16)`` so the
  Figure-2 values hold at the default 16-cycle latency. MSHRs scale with the
  same factor: the paper's fixed 16 MSHRs cannot sustain the memory-level
  parallelism its own Figure 4 results imply at 256-cycle latency (16
  outstanding misses over a ~258-cycle round trip caps miss bandwidth at
  0.062 lines/cycle), so we treat the MSHR file as one of the scaled
  resources and quantify the difference in the ``abl-mshr`` ablation.
* ``decoupled=False`` — the "degenerated version ... where the instruction
  queues are disabled": both units drain one unified in-order queue per
  thread, so a stalled instruction blocks everything younger, exactly a
  conventional in-order SMT.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.memory.spec import MemSpec


@dataclass(frozen=True)
class MachineConfig:
    """Microarchitecture parameters (paper Figure 2 defaults)."""

    # -- contexts / mode --------------------------------------------------------
    n_threads: int = 1
    decoupled: bool = True

    # -- functional units / issue ------------------------------------------------
    ap_width: int = 4          # AP issue slots == AP functional units
    ep_width: int = 4          # EP issue slots == EP functional units
    ap_latency: int = 1
    ep_latency: int = 4

    # -- front end -----------------------------------------------------------------
    fetch_threads: int = 2     # I-cache ports (threads fetching per cycle)
    fetch_width: int = 8       # instructions per thread per cycle
    fetch_buffer: int = 16     # per-thread fetched-not-dispatched capacity
    fetch_policy: str = "icount"  # "icount" | "rr"
    dispatch_width: int = 8    # total rename/dispatch bandwidth
    max_unresolved_branches: int = 4
    bht_entries: int = 2048    # per-thread, 2-bit counters

    # -- queues / registers (per thread) ------------------------------------------
    iq_size: int = 48          # EP instruction queue (the decoupling queue)
    aq_size: int = 48          # AP-side queue (same depth; paper leaves
                               # it unnamed — the AP must buffer its own
                               # dispatched instructions to slip ahead)
    saq_size: int = 32         # store address queue
    rob_size: int = 256        # not listed in Figure 2; see DESIGN.md
    ap_regs: int = 64          # AP physical registers
    ep_regs: int = 96          # EP physical registers
    commit_width: int = 8      # per-thread graduation bandwidth

    # -- simulation safety net ---------------------------------------------------
    #: cycles without a commit before the simulator declares the pipeline
    #: wedged and raises. Long-latency sweeps (L2 >= 256 with many threads)
    #: can legitimately go tens of thousands of cycles without graduating;
    #: tune this upward rather than patching the processor.
    deadlock_cycles: int = 100_000

    # -- memory system ---------------------------------------------------------------
    l1_bytes: int = 64 * 1024
    line_bytes: int = 32
    l1_ports: int = 4
    l1_hit_latency: int = 1
    mshrs: int = 16
    l2_latency: int = 16
    bus_bytes_per_cycle: int = 16
    #: declarative memory hierarchy (:class:`~repro.memory.spec.MemSpec`).
    #: ``None`` builds the classic machine from the scalars above; a custom
    #: spec may still inherit any scalar through its ``AUTO`` fields (so
    #: e.g. the ``l2_latency`` sweep axis keeps working for finite-L2
    #: machines). Resolve via :meth:`memory`.
    mem: MemSpec | None = None

    # -- workload plumbing --------------------------------------------------------------
    #: Per-thread data-address salts (region-aware). Each salt's 64 MB
    #: component keeps thread address spaces disjoint (no accidental line
    #: sharing); the small component shifts cache-*set* placement per thread.
    #: Hot regions shift by 2816 B and store regions by 4 KB so that four
    #: threads tile the L1's set space; beyond that, regions wrap onto each
    #: other and thrash — reproducing "miss ratios increase progressively
    #: [with threads]" (paper section 3.1). Streams get a small decorrelating
    #: shift.
    salt_stream_bytes: int = (1 << 26) + 1664
    salt_store_bytes: int = (1 << 26) + 4096
    salt_hot_bytes: int = (1 << 26) + 2816

    def __post_init__(self):
        if self.n_threads < 1:
            raise ValueError("need at least one hardware context")
        if self.ap_regs < 33 or self.ep_regs < 33:
            raise ValueError(
                "physical register files must exceed the 32 architectural "
                "registers they rename"
            )
        if self.l2_latency < 1:
            raise ValueError("L2 latency must be >= 1")
        if self.deadlock_cycles < 1:
            raise ValueError("deadlock_cycles must be >= 1")
        if self.fetch_policy not in ("icount", "rr"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")
        if self.mem is not None and not isinstance(self.mem, MemSpec):
            raise ValueError(
                f"mem must be a MemSpec or None, got "
                f"{type(self.mem).__name__}"
            )

    # -- derived configurations ---------------------------------------------------------

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def memory(self) -> MemSpec:
        """The fully-resolved memory hierarchy this machine runs on:
        :attr:`mem` (or the classic default spec) with every ``AUTO``
        field bound to this config's scalars."""
        return (self.mem or MemSpec()).resolve(self)

    def scaled_for_latency(self, l2_latency: int) -> "MachineConfig":
        """Scale latency-hiding resources proportionally to the L2 latency
        (paper section 2), anchored at the Figure-2 values for 16 cycles."""
        factor = max(1.0, l2_latency / 16.0)
        return self.with_overrides(
            l2_latency=l2_latency,
            iq_size=int(round(self.iq_size * factor)),
            aq_size=int(round(self.aq_size * factor)),
            saq_size=int(round(self.saq_size * factor)),
            rob_size=int(round(self.rob_size * factor)),
            ap_regs=32 + int(round((self.ap_regs - 32) * factor)),
            ep_regs=32 + int(round((self.ep_regs - 32) * factor)),
            mshrs=int(round(self.mshrs * factor)),
        )

    def non_decoupled(self) -> "MachineConfig":
        """The paper's degenerate baseline: instruction queues disabled."""
        return self.with_overrides(decoupled=False)


#: The exact Figure-2 machine (single thread).
PAPER_BASELINE = MachineConfig()


def paper_config(
    n_threads: int = 1,
    decoupled: bool = True,
    l2_latency: int = 16,
    scale_with_latency: bool = False,
    **overrides,
) -> MachineConfig:
    """Convenience constructor used by the experiment drivers."""
    cfg = PAPER_BASELINE.with_overrides(
        n_threads=n_threads, decoupled=decoupled
    )
    if scale_with_latency:
        cfg = cfg.scaled_for_latency(l2_latency)
    else:
        factor = max(1.0, l2_latency / 16.0)
        cfg = cfg.with_overrides(
            l2_latency=l2_latency,
            mshrs=int(round(cfg.mshrs * factor)),
        )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg
