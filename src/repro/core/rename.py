"""Register renaming with walk-back squash recovery.

Each thread owns two physical register files (paper Figure 2: 64 AP + 96 EP
registers per thread). We use a flat per-thread physical id space — AP
physical registers are ids ``0 .. ap_regs-1`` and EP physical registers are
``ap_regs .. ap_regs+ep_regs-1`` — so the scoreboard is a single bytearray.

Precise recovery does not snapshot map tables: squashed instructions are
walked youngest-first and each one's rename is undone
(``map[arch] = old_pdest``), which is exact because renames are recorded in
program order in the ROB.
"""

from __future__ import annotations

from collections import deque

from repro.isa.registers import FP_BASE, INT_ZERO, FP_ZERO, NUM_ARCH


class RenameFile:
    """Per-thread rename state: map table, free lists, scoreboard."""

    __slots__ = ("ap_regs", "ep_regs", "map", "free_ap", "free_ep",
                 "ready", "producer")

    def __init__(self, ap_regs: int, ep_regs: int):
        self.ap_regs = ap_regs
        self.ep_regs = ep_regs
        n = ap_regs + ep_regs
        # identity initial mapping: int arch a -> a, fp arch f -> ap_regs + f
        self.map = [a if a < FP_BASE else ap_regs + (a - FP_BASE)
                    for a in range(NUM_ARCH)]
        self.free_ap: deque[int] = deque(range(FP_BASE, ap_regs))
        self.free_ep: deque[int] = deque(range(ap_regs + FP_BASE, n))
        self.ready = bytearray([1]) * n
        self.producer: list = [None] * n

    # -- queries -------------------------------------------------------------

    def can_rename_dest(self, arch: int) -> bool:
        """True when a physical register is free for destination ``arch``."""
        if arch == INT_ZERO or arch == FP_ZERO:
            return True
        free = self.free_ep if arch >= FP_BASE else self.free_ap
        return bool(free)

    def lookup(self, arch: int) -> int:
        """Current physical mapping of architectural register ``arch``."""
        return self.map[arch]

    def srcs_of(self, srcs: tuple[int, ...]) -> tuple[int, ...]:
        """Rename a source list, dropping hardwired-zero registers.

        Unrolled for the 0/1/2-source shapes every trace instruction has;
        dispatch calls this once per instruction.
        """
        m = self.map
        n = len(srcs)
        if n == 1:
            s0 = srcs[0]
            if s0 == INT_ZERO or s0 == FP_ZERO:
                return ()
            return (m[s0],)
        if n == 2:
            s0, s1 = srcs
            if s0 == INT_ZERO or s0 == FP_ZERO:
                if s1 == INT_ZERO or s1 == FP_ZERO:
                    return ()
                return (m[s1],)
            if s1 == INT_ZERO or s1 == FP_ZERO:
                return (m[s0],)
            return (m[s0], m[s1])
        return tuple(
            m[s] for s in srcs if s != INT_ZERO and s != FP_ZERO
        )

    # -- rename / undo / free ---------------------------------------------------

    def rename_dest(self, arch: int) -> tuple[int, int]:
        """Allocate a new physical register for ``arch``.

        Returns ``(pdest, old_pdest)``; for zero registers returns
        ``(-1, -1)`` (writes are discarded). The caller must have checked
        :meth:`can_rename_dest`.
        """
        if arch == INT_ZERO or arch == FP_ZERO:
            return -1, -1
        free = self.free_ep if arch >= FP_BASE else self.free_ap
        p = free.popleft()
        old = self.map[arch]
        self.map[arch] = p
        self.ready[p] = 0
        return p, old

    def undo_rename(self, arch: int, pdest: int, old_pdest: int) -> None:
        """Reverse one rename during walk-back recovery (does not free
        ``pdest``; callers free it immediately or at in-flight completion)."""
        if pdest >= 0:
            self.map[arch] = old_pdest

    def free(self, p: int) -> None:
        """Return physical register ``p`` to its free list."""
        if p < 0:
            return
        if p >= self.ap_regs:
            self.free_ep.append(p)
        else:
            self.free_ap.append(p)

    def mark_ready(self, p: int, producer_done=None) -> None:
        if p >= 0:
            self.ready[p] = 1

    def set_producer(self, p: int, inst) -> None:
        if p >= 0:
            self.producer[p] = inst

    def fingerprint(self) -> tuple:
        """Complete rename state for snapshot bit-identity checks.

        Free-list *order* is part of the fingerprint: allocation order
        determines which physical ids future renames hand out, so two
        machines with equal sets but different orderings would diverge.
        Producers reduce to instruction seq ids (object identity is a
        process-local accident; seq is the stable name).
        """
        return (
            self.ap_regs, self.ep_regs, tuple(self.map),
            tuple(self.free_ap), tuple(self.free_ep), bytes(self.ready),
            tuple(d.seq if d is not None else None for d in self.producer),
        )

    # -- invariant checks (used by tests) ------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when the rename state is inconsistent."""
        mapped = set(self.map)
        free = set(self.free_ap) | set(self.free_ep)
        overlap = mapped & free
        assert not overlap, f"mapped registers on the free list: {overlap}"
        assert len(set(self.free_ap)) == len(self.free_ap), "duplicate AP frees"
        assert len(set(self.free_ep)) == len(self.free_ep), "duplicate EP frees"
        for p in self.free_ap:
            assert p < self.ap_regs
        for p in self.free_ep:
            assert self.ap_regs <= p < self.ap_regs + self.ep_regs
