"""Per-thread hardware context.

The paper replicates, per context: fetch and dispatch state (including the
branch predictor and the register map tables), the register files and all
architectural queues. The issue logic, functional units and caches are
shared and live in :class:`repro.core.processor.Processor`.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import MachineConfig
from repro.core.predictor import BimodalBHT
from repro.core.queues import InstQueue, StoreAddressQueue
from repro.core.rename import RenameFile
from repro.isa.instruction import DynInst
from repro.isa.trace import Trace
from repro.workloads.wrongpath import WrongPathGenerator


def region_salts(cfg: MachineConfig, tid: int) -> tuple[int, dict[int, int]]:
    """One thread's region-aware address salts: ``(default, by_region)``.

    The data layout puts each region class in its own 64 MB space, so a
    region is the address's 26-bit-shifted prefix. Store regions (prefix
    22) and the hot region (prefix 23) get their own set-tiling strides;
    gather tables (prefix 20) tile like stores; everything else uses the
    stream salt. Shared by the cycle backend (:class:`ThreadContext`) and
    the analytic model's characterization walk, so the two can never
    disagree about where a thread's data lives.
    """
    return tid * cfg.salt_stream_bytes, {
        20: tid * cfg.salt_store_bytes,
        22: tid * cfg.salt_store_bytes,
        23: tid * cfg.salt_hot_bytes,
    }


class ThreadContext:
    """All replicated per-context state of the multithreaded machine."""

    __slots__ = (
        "tid", "wrap", "cfg", "playlist", "play_idx", "trace", "pos",
        "salt", "_salt_by_region", "bht", "fetch_buf", "wrong_path",
        "wp_gen", "wp_queue", "branch_resume", "rename", "rob",
        "aq", "iq", "uq", "saq", "unresolved_branches",
        "seq", "committed", "last_ap_seq",
    )

    def __init__(
        self,
        tid: int,
        cfg: MachineConfig,
        playlist: list[Trace],
        seed: int = 0,
        wrap: bool = True,
    ):
        if not playlist or any(len(tr) == 0 for tr in playlist):
            raise ValueError("thread playlist must contain non-empty traces")
        self.tid = tid
        self.wrap = wrap
        self.cfg = cfg
        self.playlist = playlist
        self.play_idx = 0
        self.trace = playlist[0]
        self.pos = 0
        # see region_salts() above (and MachineConfig for the rationale)
        self.salt, self._salt_by_region = region_salts(cfg, tid)

        # front end
        self.bht = BimodalBHT(cfg.bht_entries)
        self.fetch_buf: deque[DynInst] = deque()
        self.wrong_path = False
        self.wp_gen = WrongPathGenerator(seed=(seed * 1031 + tid) & 0x7FFFFFFF)
        self.wp_queue: deque = deque()
        #: seq of mispredicted branch -> (play_idx, pos) of the correct path
        self.branch_resume: dict[int, tuple[int, int]] = {}

        # rename + windows
        self.rename = RenameFile(cfg.ap_regs, cfg.ep_regs)
        self.rob: deque[DynInst] = deque()
        self.aq = InstQueue(cfg.aq_size)          # AP-side queue (decoupled)
        self.iq = InstQueue(cfg.iq_size)          # EP instruction queue
        self.uq = InstQueue(cfg.iq_size)          # unified queue (non-dec.)
        self.saq = StoreAddressQueue(cfg.saq_size)
        self.unresolved_branches = 0

        # bookkeeping
        self.seq = 0
        self.committed = 0
        #: seq of the youngest AP instruction issued so far (slip metric)
        self.last_ap_seq = 0

    def salted(self, addr: int) -> int:
        """Apply this thread's region-aware address salt."""
        return addr + self._salt_by_region.get(addr >> 26, self.salt)

    # -- snapshot support ----------------------------------------------------------

    #: slots excluded from pickles: trace playlists are large but fully
    #: deterministic in ``(workload, seed)``, so snapshots keep only the
    #: cursors (``play_idx``/``pos``) and :meth:`rebind` re-attaches the
    #: spec-rebuilt playlist after restore.
    _PICKLE_SKIP = ("playlist", "trace")

    def __getstate__(self) -> dict:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in self._PICKLE_SKIP
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        # playlist/trace stay unbound until rebind(); touching the context
        # before then is a bug and fails loudly with AttributeError

    def rebind(self, playlist: list[Trace]) -> None:
        """Re-attach the (deterministically rebuilt) trace playlist after a
        snapshot restore; the pickled cursors pick up where capture left."""
        if len(playlist) <= self.play_idx:
            raise ValueError(
                f"thread {self.tid}: restored cursor points at playlist "
                f"entry {self.play_idx} but the rebuilt playlist has only "
                f"{len(playlist)} traces"
            )
        self.playlist = playlist
        self.trace = playlist[self.play_idx]

    def fingerprint(self) -> tuple:
        """Stable structural summary of this context's dynamic state.

        Used by the snapshot bit-identity suite to compare *final machine
        state* — not just statistics — between an unbroken run and a
        restored one. Instruction identity is reduced to ``(seq, state)``
        pairs, which pins pipeline occupancy exactly.
        """
        insts = lambda q: tuple((d.seq, d.state) for d in q)  # noqa: E731
        return (
            self.tid, self.play_idx, self.pos, self.seq, self.committed,
            self.last_ap_seq, self.wrong_path, self.unresolved_branches,
            self.wp_gen.seed, self.wp_gen._pos, len(self.wp_queue),
            tuple(sorted(self.branch_resume.items())),
            insts(self.fetch_buf), insts(self.rob),
            self.aq.fingerprint(), self.iq.fingerprint(),
            self.uq.fingerprint(), self.saq.fingerprint(),
            self.rename.fingerprint(), self.bht.fingerprint(),
        )

    # -- trace walking -------------------------------------------------------------

    def cur_static(self):
        return self.trace[self.pos]

    def advance(self) -> None:
        """Move to the next correct-path instruction (wrapping the playlist
        unless this context runs a finite program)."""
        self.pos += 1
        if self.pos >= len(self.trace):
            if self.wrap or self.play_idx + 1 < len(self.playlist):
                self.play_idx = (self.play_idx + 1) % len(self.playlist)
                self.trace = self.playlist[self.play_idx]
                self.pos = 0
            # else: exhausted; pos stays just past the end

    @property
    def exhausted(self) -> bool:
        """True when a finite (non-wrapping) program has been fully fetched."""
        return self.pos >= len(self.trace)

    def mark_resume(self, seq: int) -> None:
        """Record the correct-path resume point for a mispredicted branch."""
        self.branch_resume[seq] = (self.play_idx, self.pos)

    def resume_from(self, seq: int) -> None:
        """Restore the correct-path fetch position after a squash."""
        self.play_idx, self.pos = self.branch_resume.pop(seq)
        self.trace = self.playlist[self.play_idx]
        self.wrong_path = False
        self.wp_queue.clear()

    # -- derived state ----------------------------------------------------------------

    @property
    def icount(self) -> int:
        """Instructions pending dispatch (the paper's I-COUNT fetch metric)."""
        return len(self.fetch_buf)

    def rob_full(self) -> bool:
        return len(self.rob) >= self.cfg.rob_size

    def in_flight(self) -> int:
        return len(self.rob)

    def next_wp_inst(self):
        """Next synthetic wrong-path static instruction."""
        if not self.wp_queue:
            self.wp_queue.extend(self.wp_gen.next_block(16))
        return self.wp_queue.popleft()
