"""Bounded in-order instruction queues.

Three queue kinds, all per thread:

* the EP **Instruction Queue** — the paper's decoupling mechanism: it buffers
  dispatched-but-unissued EP instructions so the AP can slip ahead;
* the AP queue — the symmetric buffer on the AP side (the paper leaves it
  unnamed; dispatch stalls when it fills);
* the **Store Address Queue** — holds every store from dispatch until its
  cache write completes; loads search it to bypass (or forward from) older
  stores.

In the non-decoupled baseline, a single unified queue of ``iq`` capacity
replaces the AP/EP pair, coupling the two units back together.
"""

from __future__ import annotations

from collections import deque

from repro.isa.instruction import DynInst


class InstQueue:
    """A bounded FIFO of dispatched, unissued instructions."""

    __slots__ = ("capacity", "q")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.q: deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self.q)

    def __bool__(self) -> bool:
        return bool(self.q)

    @property
    def full(self) -> bool:
        return len(self.q) >= self.capacity

    def head(self) -> DynInst:
        return self.q[0]

    def push(self, inst: DynInst) -> None:
        if len(self.q) >= self.capacity:
            raise OverflowError("push to full queue (dispatch must check)")
        self.q.append(inst)

    def pop_head(self) -> DynInst:
        return self.q.popleft()

    def squash_tail(self, seq: int) -> int:
        """Drop every instruction younger than ``seq``; returns the count."""
        n = 0
        q = self.q
        while q and q[-1].seq > seq:
            q.pop()
            n += 1
        return n

    def fingerprint(self) -> tuple:
        """Occupancy summary for snapshot bit-identity checks."""
        return (self.capacity, tuple((d.seq, d.state) for d in self.q))


class StoreAddressQueue:
    """The per-thread SAQ with an address membership index.

    The membership counter makes the common case — a load that matches no
    pending store — O(1); only actual address matches walk the queue to find
    the youngest older store.
    """

    __slots__ = ("capacity", "q", "_addr_count")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("SAQ capacity must be >= 1")
        self.capacity = capacity
        self.q: deque[DynInst] = deque()
        self._addr_count: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.q)

    @property
    def full(self) -> bool:
        return len(self.q) >= self.capacity

    def push(self, inst: DynInst) -> None:
        if len(self.q) >= self.capacity:
            raise OverflowError("push to full SAQ (dispatch must check)")
        self.q.append(inst)
        a = inst.static.addr
        self._addr_count[a] = self._addr_count.get(a, 0) + 1

    def _forget(self, inst: DynInst) -> None:
        a = inst.static.addr
        c = self._addr_count[a] - 1
        if c:
            self._addr_count[a] = c
        else:
            del self._addr_count[a]

    def release_head(self) -> DynInst:
        """Remove the oldest store (its cache write completed)."""
        inst = self.q.popleft()
        self._forget(inst)
        return inst

    def head(self) -> DynInst:
        return self.q[0]

    def squash_tail(self, seq: int) -> int:
        n = 0
        q = self.q
        while q and q[-1].seq > seq:
            self._forget(q.pop())
            n += 1
        return n

    def fingerprint(self) -> tuple:
        """Occupancy + membership-index summary for snapshot checks."""
        return (
            self.capacity,
            tuple((d.seq, d.state, d.static.addr) for d in self.q),
            tuple(sorted(self._addr_count.items())),
        )

    def find_older_match(self, addr: int, seq: int) -> DynInst | None:
        """Youngest store older than ``seq`` with the same word address, or
        None. O(1) when no store in the queue touches ``addr``."""
        if addr not in self._addr_count:
            return None
        for inst in reversed(self.q):
            if inst.seq < seq and inst.static.addr == addr:
                return inst
        return None
