"""The explicit shared machine state the pipeline stages operate on.

:class:`MachineState` is the single mutable object threaded through every
:class:`~repro.core.stages.Stage`: the shared memory system, the per-thread
contexts, the statistics, the completion-event heap and the round-robin
pointers.  Pulling it out of the old ``Processor`` monolith is what makes
stages composable — a stage sees exactly the state every other stage sees,
and a new pipeline variant is a new stage list over the same state, not a
new branch inside a 600-line ``step()``.

The completion-event heap is the machine's *only* clock-driven agenda:
every in-flight instruction (functional-unit op or memory access) has
exactly one entry ``(complete_cycle, seq, inst)``.  That property is what
the idle-cycle fast-forward relies on — when nothing can retire, issue,
dispatch, drain or fetch, the next cycle at which anything *can* change is
the heap head.
"""

from __future__ import annotations

import heapq

from repro.core.config import MachineConfig
from repro.core.context import ThreadContext
from repro.isa.instruction import DynInst
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemorySystem
from repro.stats.counters import SimStats


class MachineState:
    """Everything the pipeline stages read and write.

    Attribute conventions:

    * ``cycle`` is the cycle currently being simulated; stages may consult
      it but only the scheduler advances it.
    * ``events`` is a min-heap of ``(cycle, seq, inst)`` completion events;
      stages push via :meth:`complete_later` and only the writeback stage
      pops.
    * ``rr_issue`` / ``rr_dispatch`` are the round-robin starting-thread
      pointers; the owning stage rotates its pointer once per cycle.
    """

    __slots__ = (
        "cfg",
        "mem",
        "threads",
        "stats",
        "cycle",
        "total_committed",
        "events",
        "evseq",
        "rr_issue",
        "rr_dispatch",
        "last_commit_cycle",
        "deadlock_cycles",
        "finite",
    )

    def __init__(
        self,
        cfg: MachineConfig,
        playlists: list[list[Trace]],
        seed: int = 0,
        wrap: bool = True,
    ):
        if len(playlists) != cfg.n_threads:
            raise ValueError(
                f"config asks for {cfg.n_threads} threads but "
                f"{len(playlists)} playlists were provided"
            )
        self.cfg = cfg
        self.mem = MemorySystem(
            cfg.memory(),
            n_threads=cfg.n_threads,
            line_bytes=cfg.line_bytes,
        )
        self.threads = [
            ThreadContext(t, cfg, playlists[t], seed=seed, wrap=wrap)
            for t in range(cfg.n_threads)
        ]
        self.finite = not wrap
        self.stats = SimStats()
        self.cycle = 0
        self.total_committed = 0
        self.events: list[tuple[int, int, DynInst]] = []
        self.evseq = 0
        self.rr_issue = 0
        self.rr_dispatch = 0
        self.last_commit_cycle = 0
        self.deadlock_cycles = cfg.deadlock_cycles

    # -- events -----------------------------------------------------------------

    def complete_later(self, inst: DynInst, cycle: int) -> None:
        """Schedule ``inst``'s completion (writeback) at ``cycle``."""
        self.evseq += 1
        heapq.heappush(self.events, (cycle, self.evseq, inst))

    def next_event_cycle(self) -> int | None:
        """Cycle of the earliest pending completion, or ``None``."""
        return self.events[0][0] if self.events else None

    # -- snapshot support --------------------------------------------------------

    def rebind_playlists(self, playlists: list[list[Trace]]) -> None:
        """Re-attach spec-rebuilt trace playlists after unpickling.

        Snapshots exclude the (multi-megabyte, deterministically
        regenerable) playlists and keep only each context's cursors; this
        is the restore-side half of that contract.  In-flight
        :class:`DynInst` objects carry their own pickled ``StaticInst``
        copies, and nothing in the pipeline compares those against trace
        entries by identity, so content-equal rebuilt traces suffice.
        """
        if len(playlists) != len(self.threads):
            raise ValueError(
                f"snapshot has {len(self.threads)} thread contexts but "
                f"{len(playlists)} playlists were provided"
            )
        for ctx, playlist in zip(self.threads, playlists):
            ctx.rebind(playlist)

    def fingerprint(self) -> tuple:
        """Stable summary of the *complete* dynamic machine state.

        The snapshot differential suite compares this (alongside the
        statistics) between an unbroken run and a restored one: equal
        fingerprints mean the two machines would also agree on every
        future cycle, which is a strictly stronger guarantee than equal
        ``SimStats``.  Event-heap entries are reduced to
        ``(cycle, evseq, inst.seq, inst.thread)`` in sorted order — heap
        layout is pop-order-equivalent, and instruction identity is
        process-local.
        """
        return (
            self.cycle, self.total_committed, self.evseq,
            self.rr_issue, self.rr_dispatch, self.last_commit_cycle,
            self.finite,
            tuple(sorted(
                (cyc, seq, inst.seq, inst.thread)
                for cyc, seq, inst in self.events
            )),
            tuple(t.fingerprint() for t in self.threads),
            self.mem.fingerprint(),
        )
