"""Branch prediction: a per-thread bimodal BHT (paper: 2K entries x 2 bit)."""

from __future__ import annotations


class BimodalBHT:
    """Classic 2-bit saturating-counter branch history table.

    One table per hardware context (the paper replicates branch prediction
    state per thread). Counters start weakly taken (2), which trains onto
    loop branches in one execution.
    """

    def __init__(self, entries: int = 2048):
        if entries & (entries - 1) or entries <= 0:
            raise ValueError("BHT entries must be a power of two")
        self._mask = entries - 1
        self.table = bytearray([2]) * entries
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        self.lookups += 1
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter at ``pc`` with the actual outcome."""
        i = self._index(pc)
        c = self.table[i]
        if taken:
            if c < 3:
                self.table[i] = c + 1
        else:
            if c > 0:
                self.table[i] = c - 1

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fetch-time convenience: predict, then train on the trace outcome."""
        pred = self.predict(pc)
        if pred == taken:
            self.hits += 1
        self.update(pc, taken)
        return pred

    def fingerprint(self) -> tuple:
        """Complete predictor state (training counters included) for
        snapshot bit-identity checks."""
        return (self._mask, bytes(self.table), self.lookups, self.hits)
