"""The memory-system facade used by the pipeline.

Composes the level stack, MSHR files, interconnect and prefetcher a
resolved :class:`~repro.memory.spec.MemSpec` describes into the three
operations the core needs:

* ``load(addr, now, tid)``  — a data-cache read access,
* ``store(addr, now, tid)`` — a data-cache write access (performed by the
  store drain after graduation; write-back, write-allocate),
* per-cycle port arbitration (level-0 ports, shared by all threads).

Timing model of a primary miss: the request leaves at ``now`` and walks
the outer levels in order, accumulating each visited level's hit latency;
the first level that holds the line serves it (plus any bank-queueing
delay there), a miss past the last level pays ``memory_latency`` more.
The line is then ready to transfer and occupies the interconnect for
``line_bytes / bus_bytes_per_cycle`` cycles behind earlier transfers; the
fill (and every merged secondary miss) completes when the transfer ends.
Dirty L1 victims schedule a write-back transfer on the same interconnect
and land in the first outer level; fills install into every finite level
they passed through (inclusive hierarchy). With the default spec this
reduces exactly to the seed-era hardwired machine: one probe of an
infinite L2 at ``l2_latency``, one bus transfer, bit-identical timing.

Structural refusals (``S_BLOCKED``) are decided *before* any state
changes: level-0 MSHR exhaustion, a pinned L1 set, or an outer level's
own MSHR file being full all leave the machine untouched so the requester
can retry next cycle.
"""

from __future__ import annotations

from repro.memory.interconnect import build_interconnect
from repro.memory.levels import (
    CONFLICT,
    HIT,
    MISS,
    SECONDARY,
    CacheLevel,
    InfiniteLevel,
    L1Cache,
    MSHRFile,
)
from repro.memory.prefetch import build_prefetcher
from repro.memory.spec import MemSpec

# Status values returned to the core.
S_HIT = 0
S_MISS = 1        # primary miss; ready_cycle = fill completion
S_SECONDARY = 2   # merged miss; ready_cycle = fill completion
S_BLOCKED = 3     # structural: no MSHR, or target set pinned by a fill


class _OuterLevel:
    """Runtime state of one outer level: tag store + MSHRs + banks."""

    __slots__ = (
        "name", "store", "mshrs", "hit_latency", "banks", "bank_free",
        "hits", "misses", "writebacks",
    )

    def __init__(self, spec, line_bytes: int, n_threads: int):
        self.name = spec.name
        if spec.capacity_bytes is None:
            self.store = InfiniteLevel()
        else:
            self.store = CacheLevel(
                spec.capacity_bytes,
                line_bytes,
                assoc=spec.assoc,
                partitions=1 if spec.shared else n_threads,
            )
        self.mshrs = MSHRFile(spec.mshrs)
        self.hit_latency = spec.hit_latency
        self.banks = spec.banks
        self.bank_free = [0] * spec.banks if spec.banks else None
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def fingerprint(self) -> tuple:
        """Tag store + MSHR + bank schedule state for snapshot checks."""
        return (
            self.name, self.store.fingerprint(), self.mshrs.fingerprint(),
            tuple(self.bank_free) if self.bank_free is not None else None,
            self.hits, self.misses, self.writebacks,
        )

    def bank_delay(self, line: int, now: int) -> int:
        """Eager FIFO bank arbitration: one access per bank per cycle
        (``banks == 0`` models the paper's conflict-free multibanking)."""
        if not self.banks:
            return 0
        b = line % self.banks
        start = self.bank_free[b]
        if start < now:
            start = now
        self.bank_free[b] = start + 1
        return start - now

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.mshrs.alloc_failures = 0


class MemorySystem:
    """Level stack + MSHRs + interconnect + prefetcher, with port
    arbitration and traffic stats, composed from a :class:`MemSpec`."""

    def __init__(self, spec: MemSpec, n_threads: int = 1,
                 line_bytes: int = 32, specialize: bool = True):
        if not spec.resolved:
            raise ValueError(
                "MemorySystem needs a resolved MemSpec "
                "(call spec.resolve(cfg) first)"
            )
        spec.validate_resolved()
        self.spec = spec
        self.line_bytes = line_bytes
        self.n_threads = n_threads
        l0 = spec.levels[0]
        if not l0.shared and n_threads > 1:
            self._l1s = [
                L1Cache(l0.capacity_bytes // n_threads, line_bytes)
                for _ in range(n_threads)
            ]
        else:
            self._l1s = [L1Cache(l0.capacity_bytes, line_bytes)]
        self.l1 = self._l1s[0]
        self._line_shift = line_bytes.bit_length() - 1
        self.mshrs = MSHRFile(l0.mshrs)
        self.bus = build_interconnect(spec.interconnect, line_bytes)
        self.outer = [
            _OuterLevel(lvl, line_bytes, n_threads)
            for lvl in spec.levels[1:]
        ]
        self.memory_latency = spec.memory_latency
        self.prefetcher = build_prefetcher(spec.prefetch)
        self.ports = l0.ports
        self.hit_latency = l0.hit_latency
        self._ports_used = 0
        # traffic counters (reset together with pipeline stats)
        self.fills = 0
        self.writebacks = 0
        self.blocked_requests = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self.prefetch_dropped = 0
        # Spec-specialized hot path: when the composed shape is the flat
        # classic one, instance-level load/store closures shadow the
        # generic methods below (which remain the differential reference
        # and the fallback for exotic stacks).
        self.specialized = False
        self._specialize = specialize
        if specialize:
            from repro.memory.fastpath import build_fastpath

            fast = build_fastpath(self)
            if fast is not None:
                self.load, self.store = fast
                self.specialized = True

    # -- snapshot support --------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the instance-level ``load``/``store`` closures (functions
        capturing live cache arrays cannot cross a pickle); everything
        they capture *is* pickled, so ``__setstate__`` rebuilds them."""
        state = self.__dict__.copy()
        state.pop("load", None)
        state.pop("store", None)
        state["specialized"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if state.get("_specialize", True):
            from repro.memory.fastpath import respecialize

            respecialize(self)

    @classmethod
    def classic(
        cls,
        l1_bytes: int = 64 * 1024,
        line_bytes: int = 32,
        l1_ports: int = 4,
        mshrs: int = 16,
        l2_latency: int = 16,
        bus_bytes_per_cycle: int = 16,
        l1_hit_latency: int = 1,
        n_threads: int = 1,
    ) -> "MemorySystem":
        """The seed-era hardwired machine, from its original scalars."""
        from repro.core.config import MachineConfig

        cfg = MachineConfig(
            n_threads=n_threads,
            l1_bytes=l1_bytes,
            line_bytes=line_bytes,
            l1_ports=l1_ports,
            l1_hit_latency=l1_hit_latency,
            mshrs=mshrs,
            l2_latency=l2_latency,
            bus_bytes_per_cycle=bus_bytes_per_cycle,
        )
        return cls(MemSpec().resolve(cfg), n_threads=n_threads,
                   line_bytes=line_bytes)

    # -- fast-forward eligibility ---------------------------------------------

    @property
    def fast_forward_safe(self) -> bool:
        """False when the prefetcher needs a per-cycle clock, in which
        case the processor must not skip idle cycles (the built-in
        miss-triggered prefetchers mutate state only inside demand
        accesses and stay eligible)."""
        return not self.prefetcher.tick_driven

    def refusal_wake(self, addr, now, tid=0):
        """Classify what an access to ``addr`` would do *right now* without
        performing it — the memory system's half of the event-horizon
        wake protocol (see ``core/stages.py``).

        Returns ``None`` when the access would succeed (hit, merge or a
        primary miss with every needed MSHR free): the requesting stage
        cannot be skipped over.  Otherwise the access is structurally
        refused and the result is ``(wake_cycle, mshr_file)``:

        * ``wake_cycle`` — the earliest future cycle at which the refusal
          could change shape (the pinned set unpins, or the blocking MSHR
          file's earliest release).  Until then a retry every cycle is a
          pure counter increment that :meth:`replay_refusals` can bulk-
          replay.
        * ``mshr_file`` — the file whose exhaustion blocked the request
          (charged one ``alloc_failures`` per retry by the per-cycle
          walk), or ``None`` for a pinned-set (``CONFLICT``) refusal.

        Stability argument: inside a fast-forward window nothing issues,
        fills or allocates, so probe outcomes are frozen, MSHR files only
        drain (monotonically, and draining here is the same lazy drain
        the walk's own ``available(now)`` would perform), and the first
        blocked level of the outer plan stays the first blocked level
        until its own earliest release.  This method works identically
        under the spec-specialized fast path: the closures share the same
        L1 arrays and MSHR files.  Tick-driven prefetchers are excluded
        wholesale by :attr:`fast_forward_safe`.
        """
        l1 = self._l1_for(tid)
        outcome, _idx, when = l1.probe(addr, now)
        if outcome == HIT or outcome == SECONDARY:
            return None
        if outcome == CONFLICT:
            return when, None
        mshrs = self.mshrs
        if not mshrs.available(now):
            return mshrs._releases[0], mshrs
        _lat, _serving, missed = self._plan_outer(
            self._line_of_addr(addr), tid
        )
        for lvl in missed:
            if not lvl.mshrs.available(now):
                return lvl.mshrs._releases[0], lvl.mshrs
        return None

    def replay_refusals(self, mshr_file, k: int) -> None:
        """Bulk-replay ``k`` per-cycle structural refusals of one request:
        the counter increments ``k`` refused retries of :meth:`load` or
        :meth:`store` would have made, with ``mshr_file`` as returned by
        :meth:`refusal_wake` (``None`` for a pinned-set conflict)."""
        self.blocked_requests += k
        if mshr_file is not None:
            mshr_file.alloc_failures += k

    # -- per-cycle arbitration -------------------------------------------------

    def begin_cycle(self) -> None:
        """Reset the per-cycle port allocation."""
        self._ports_used = 0

    def port_available(self) -> bool:
        return self._ports_used < self.ports

    def claim_port(self) -> None:
        self._ports_used += 1

    # -- the miss path ----------------------------------------------------------

    def _l1_for(self, tid: int) -> L1Cache:
        l1s = self._l1s
        return l1s[tid % len(l1s)] if len(l1s) > 1 else l1s[0]

    def _plan_outer(self, line: int, tid: int):
        """Walk the outer levels without mutating anything.

        Returns ``(latency, serving, missed)``: the accumulated hit
        latency up to (and including) the serving level — plus
        ``memory_latency`` when everything missed — the serving
        :class:`_OuterLevel` (or ``None`` for memory), and the list of
        levels that missed (they need an MSHR and receive the fill).
        """
        lat = 0
        missed = []
        for lvl in self.outer:
            lat += lvl.hit_latency
            if lvl.store.peek(line, tid):
                return lat, lvl, missed
            missed.append(lvl)
        return lat + self.memory_latency, None, missed

    def _commit_fill(
        self,
        l1: L1Cache,
        addr: int,
        now: int,
        tid: int,
        make_dirty: bool,
        plan,
        prefetched: bool,
    ) -> int:
        """Commit a planned fill; returns the fill-completion cycle."""
        lat, serving, missed = plan
        line = self._line_of_addr(addr)
        ready = now + lat
        if serving is not None:
            if not prefetched:      # per-level stats track the demand
                serving.hits += 1   # fill stream (walk-comparable)
            serving.store.touch(line, tid)
            ready += serving.bank_delay(line, now)
        for lvl in missed:
            if not prefetched:
                lvl.misses += 1
            lvl.mshrs.allocate(ready)
        fill_cycle = self.bus.schedule_line(ready)
        self.mshrs.allocate(fill_cycle)
        victim, victim_dirty = l1.install(
            addr, now, fill_cycle, make_dirty, prefetched=prefetched
        )
        if victim_dirty:
            self.bus.schedule_line(now)
            self.writebacks += 1
            if self.outer:
                if self.outer[0].store.install(victim, tid, dirty=True):
                    self.outer[0].writebacks += 1
        # inclusive fill path: the line lands in every level it missed
        for lvl in missed:
            if lvl.store.install(line, tid, dirty=False):
                lvl.writebacks += 1
        if prefetched:
            self.prefetch_fills += 1
        else:
            self.fills += 1
            self.prefetcher.on_demand_fill(self, line, now, tid)
        return fill_cycle

    def _line_of_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def try_prefetch(self, line: int, now: int, tid: int) -> bool:
        """Attempt one prefetch fill of ``line`` (called by prefetchers).

        Never blocking: a prefetch is simply *dropped* (counted) when it
        is structurally refused — pinned L1 set, or any needed MSHR busy
        — and silently skipped when the line is already present or in
        flight (nothing left to prefetch).
        """
        addr = line << self._line_shift
        l1 = self._l1_for(tid)
        outcome, _idx, _when = l1.probe(addr, now)
        if outcome == CONFLICT:
            self.prefetch_dropped += 1
            return False
        if outcome != MISS:
            return False
        if not self.mshrs.available(now):
            self.prefetch_dropped += 1
            return False
        plan = self._plan_outer(line, tid)
        if any(not lvl.mshrs.available(now) for lvl in plan[2]):
            self.prefetch_dropped += 1
            return False
        self._commit_fill(l1, addr, now, tid, False, plan, prefetched=True)
        return True

    # -- accesses ---------------------------------------------------------------

    def _note_prefetch_hit(self, l1: L1Cache, idx: int) -> None:
        if l1.prefetched[idx]:
            self.prefetch_hits += 1
            l1.prefetched[idx] = 0

    def _demand_miss(
        self, l1: L1Cache, addr: int, now: int, tid: int, make_dirty: bool
    ) -> tuple[int, int]:
        """The shared miss-path tail of :meth:`load` and :meth:`store`:
        check every MSHR file the fill needs (refuse without touching
        anything), then commit."""
        if not self.mshrs.available(now):
            self.mshrs.note_failure()
            self.blocked_requests += 1
            return S_BLOCKED, 0
        plan = self._plan_outer(self._line_of_addr(addr), tid)
        blocked = [lvl for lvl in plan[2] if not lvl.mshrs.available(now)]
        if blocked:
            blocked[0].mshrs.note_failure()
            self.blocked_requests += 1
            return S_BLOCKED, 0
        fill = self._commit_fill(
            l1, addr, now, tid, make_dirty, plan, prefetched=False
        )
        return S_MISS, fill

    def load(self, addr: int, now: int, tid: int = 0) -> tuple[int, int]:
        """Perform a read access. Returns ``(status, data_ready_cycle)``.

        The caller must have claimed a port. ``S_BLOCKED`` means the
        access could not even start (retry next cycle; no state was
        changed).
        """
        l1 = self._l1_for(tid)
        outcome, idx, when = l1.probe(addr, now)
        if outcome == HIT:
            self._note_prefetch_hit(l1, idx)
            return S_HIT, now + self.hit_latency
        if outcome == SECONDARY:
            self._note_prefetch_hit(l1, idx)
            return S_SECONDARY, when
        if outcome == CONFLICT:
            self.blocked_requests += 1
            return S_BLOCKED, when
        return self._demand_miss(l1, addr, now, tid, make_dirty=False)

    def store(self, addr: int, now: int, tid: int = 0) -> tuple[int, int]:
        """Perform a write access (write-back, write-allocate).

        Returns ``(status, write_done_cycle)``; on a miss the write
        completes with the fill, at which point the line is dirty.
        """
        l1 = self._l1_for(tid)
        outcome, idx, when = l1.probe(addr, now)
        if outcome == HIT:
            self._note_prefetch_hit(l1, idx)
            l1.touch_write(addr)
            return S_HIT, now + self.hit_latency
        if outcome == SECONDARY:
            # the write merges with the in-flight fill and dirties the line
            self._note_prefetch_hit(l1, idx)
            l1.touch_write(addr)
            return S_SECONDARY, when
        if outcome == CONFLICT:
            self.blocked_requests += 1
            return S_BLOCKED, when
        return self._demand_miss(l1, addr, now, tid, make_dirty=True)

    # -- stats -------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.fills = 0
        self.writebacks = 0
        self.blocked_requests = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self.prefetch_dropped = 0
        # MSHR refusals reset with the other traffic counters so every
        # reported number describes the same (post-warm-up) window —
        # including the L1 prefetched flags, whose measured hits must
        # pair with measured fills (coverage can never exceed 100%)
        self.mshrs.alloc_failures = 0
        for l1 in self._l1s:
            l1.prefetched = bytearray(l1.n_sets)
        for lvl in self.outer:
            lvl.reset_stats()
        self.bus.reset_stats()

    def bus_utilization(self, elapsed_cycles: int) -> float:
        return self.bus.utilization(elapsed_cycles)

    def fingerprint(self) -> tuple:
        """Complete dynamic state of the hierarchy for snapshot checks:
        every tag array, MSHR file, the bus schedule, prefetcher training
        state and all traffic counters — if any of it differed between a
        restored machine and the original, future timing could too."""
        bus = self.bus
        return (
            tuple(l1.fingerprint() for l1 in self._l1s),
            self.mshrs.fingerprint(),
            (bus.free_at, bus.busy_cycles, bus._stats_floor),
            tuple(lvl.fingerprint() for lvl in self.outer),
            self.prefetcher.fingerprint(),
            (self.fills, self.writebacks, self.blocked_requests,
             self.prefetch_fills, self.prefetch_hits, self.prefetch_dropped),
        )

    def level_stats(self) -> dict[str, dict[str, int]]:
        """Per-outer-level traffic of the demand fill stream (JSON-safe):
        ``{name: {hits, misses, writebacks, mshr_failures}}`` in stack
        order — nothing stays trapped on the facade."""
        return {
            lvl.name: {
                "hits": lvl.hits,
                "misses": lvl.misses,
                "writebacks": lvl.writebacks,
                "mshr_failures": lvl.mshrs.alloc_failures,
            }
            for lvl in self.outer
        }
