"""The memory-system facade used by the pipeline.

Combines the L1 data cache, the MSHR file, the L1-L2 bus and the L2 into the
three operations the core needs:

* ``load(addr, now)``  — a data-cache read access,
* ``store(addr, now)`` — a data-cache write access (performed by the store
  drain after graduation; write-back, write-allocate),
* per-cycle port arbitration (4 shared read/write ports).

Timing model of a primary miss: the request leaves at ``now``, the line is
ready to leave the L2 at ``now + l2_latency`` and then occupies the bus for
``line_bytes / bus_bytes_per_cycle`` cycles behind earlier transfers; the
fill (and every merged secondary miss) completes when the transfer ends.
Dirty victims schedule a write-back transfer on the same bus.
"""

from __future__ import annotations

from repro.memory.bus import Bus
from repro.memory.cache import CONFLICT, HIT, SECONDARY, L1Cache
from repro.memory.l2 import InfiniteL2
from repro.memory.mshr import MSHRFile

# Status values returned to the core.
S_HIT = 0
S_MISS = 1        # primary miss; ready_cycle = fill completion
S_SECONDARY = 2   # merged miss; ready_cycle = fill completion
S_BLOCKED = 3     # structural: no MSHR, or target set pinned by a fill


class MemorySystem:
    """L1 + MSHRs + bus + L2, with port arbitration and traffic stats."""

    def __init__(
        self,
        l1_bytes: int = 64 * 1024,
        line_bytes: int = 32,
        l1_ports: int = 4,
        mshrs: int = 16,
        l2_latency: int = 16,
        bus_bytes_per_cycle: int = 16,
        l1_hit_latency: int = 1,
    ):
        self.l1 = L1Cache(l1_bytes, line_bytes)
        self.mshrs = MSHRFile(mshrs)
        self.bus = Bus(bus_bytes_per_cycle, line_bytes)
        self.l2 = InfiniteL2(l2_latency)
        self.ports = l1_ports
        self.hit_latency = l1_hit_latency
        self._ports_used = 0
        # traffic counters (reset together with pipeline stats)
        self.fills = 0
        self.writebacks = 0
        self.blocked_requests = 0

    # -- per-cycle arbitration -------------------------------------------------

    def begin_cycle(self) -> None:
        """Reset the per-cycle port allocation."""
        self._ports_used = 0

    def port_available(self) -> bool:
        return self._ports_used < self.ports

    def claim_port(self) -> None:
        self._ports_used += 1

    # -- accesses ---------------------------------------------------------------

    def _start_fill(self, addr: int, now: int, make_dirty: bool) -> int:
        """Allocate MSHR + bus for a primary miss; returns the fill cycle."""
        ready_at_l2 = self.l2.access(now)
        fill_cycle = self.bus.schedule_line(ready_at_l2)
        self.mshrs.allocate(fill_cycle)
        victim_dirty = self.l1.install(addr, now, fill_cycle, make_dirty)
        if victim_dirty:
            self.bus.schedule_line(now)
            self.writebacks += 1
        self.fills += 1
        return fill_cycle

    def load(self, addr: int, now: int) -> tuple[int, int]:
        """Perform a read access. Returns ``(status, data_ready_cycle)``.

        The caller must have claimed a port. ``S_BLOCKED`` means the access
        could not even start (retry next cycle; no state was changed).
        """
        outcome, _idx, when = self.l1.probe(addr, now)
        if outcome == HIT:
            return S_HIT, now + self.hit_latency
        if outcome == SECONDARY:
            return S_SECONDARY, when
        if outcome == CONFLICT:
            self.blocked_requests += 1
            return S_BLOCKED, when
        if not self.mshrs.available(now):
            self.mshrs.note_failure()
            self.blocked_requests += 1
            return S_BLOCKED, 0
        return S_MISS, self._start_fill(addr, now, make_dirty=False)

    def store(self, addr: int, now: int) -> tuple[int, int]:
        """Perform a write access (write-back, write-allocate).

        Returns ``(status, write_done_cycle)``; on a miss the write completes
        with the fill, at which point the line is dirty.
        """
        outcome, _idx, when = self.l1.probe(addr, now)
        if outcome == HIT:
            self.l1.touch_write(addr)
            return S_HIT, now + self.hit_latency
        if outcome == SECONDARY:
            # the write merges with the in-flight fill and dirties the line
            self.l1.touch_write(addr)
            return S_SECONDARY, when
        if outcome == CONFLICT:
            self.blocked_requests += 1
            return S_BLOCKED, when
        if not self.mshrs.available(now):
            self.mshrs.note_failure()
            self.blocked_requests += 1
            return S_BLOCKED, 0
        return S_MISS, self._start_fill(addr, now, make_dirty=True)

    # -- stats -------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.fills = 0
        self.writebacks = 0
        self.blocked_requests = 0
        self.bus.reset_stats()

    def bus_utilization(self, elapsed_cycles: int) -> float:
        return self.bus.utilization(elapsed_cycles)
