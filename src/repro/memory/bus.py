"""The L1-L2 bus model.

The paper's interface is a 128-bit bus moving 16 bytes/cycle, so a 32-byte
line occupies the bus for 2 cycles. Line fills and dirty write-backs compete
for the same bus; it is the resource whose saturation caps the non-decoupled
configurations in Figure 5 (89 % utilization at 12 threads, 98 % at 16).

The model is *eager*: a transfer's start cycle is computed when the request
is made (``max(earliest, bus_free)``), which is exact for a FIFO bus because
the L2 latency is constant, so requests become transfer-ready in request
order.
"""

from __future__ import annotations


class Bus:
    """Single shared bus with FIFO scheduling and utilization accounting."""

    def __init__(self, bytes_per_cycle: int, line_bytes: int):
        if bytes_per_cycle <= 0:
            raise ValueError("bus width must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.line_bytes = line_bytes
        self.cycles_per_line = max(1, -(-line_bytes // bytes_per_cycle))
        self.free_at = 0
        self.busy_cycles = 0
        self._stats_floor = 0  # busy cycles at the last stats reset

    def schedule_line(self, earliest: int) -> int:
        """Reserve the bus for one line transfer that may start at
        ``earliest``; return the cycle the transfer completes."""
        start = self.free_at if self.free_at > earliest else earliest
        self.free_at = start + self.cycles_per_line
        self.busy_cycles += self.cycles_per_line
        return self.free_at

    @property
    def queue_delay_hint(self) -> int:
        """Current backlog depth in cycles (diagnostic)."""
        return self.free_at

    def reset_stats(self) -> None:
        """Zero the utilization accounting (keeps the schedule state)."""
        self._stats_floor = self.busy_cycles

    def busy_since_reset(self) -> int:
        return self.busy_cycles - self._stats_floor

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the bus was busy since the last stats reset."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_since_reset() / elapsed_cycles)
