"""Cache-level models: the L1 array, outer levels and MSHR files.

Three level kinds compose the :class:`~repro.memory.hierarchy.MemorySystem`
stack described by a :class:`~repro.memory.spec.MemSpec`:

* :class:`L1Cache` — the core-facing level 0: direct-mapped, write-back,
  write-allocate, tag-updated at *request* time with per-set pending-fill
  state (paper Figure 2; unchanged semantics from the seed facade).
* :class:`CacheLevel` — a finite outer level: set-associative LRU tag/dirty
  arrays, optionally thread-partitioned (each hardware context gets an
  equal capacity slice with its own tags).
* :class:`InfiniteLevel` — the paper's "infinite multibanked L2": every
  access hits.

Outer levels are pure tag state: :meth:`peek` classifies without mutating
(so the facade can refuse a request for structural reasons before touching
anything), :meth:`touch`/:meth:`install` commit the access. All timing —
latencies, banking, bus transfers, MSHR occupancy — lives in the facade.
"""

from __future__ import annotations

import heapq

# L1 access outcomes.
HIT = 0
MISS = 1        # primary miss: caller must obtain an MSHR + bus slot
SECONDARY = 2   # merged into an in-flight fill of the same line
CONFLICT = 3    # set is pinned by an in-flight fill of a different line


class L1Cache:
    """Tag/dirty-bit model of the L1 data cache (no data values).

    The tag array is updated at *request* time and the line's data becomes
    available at *fill* time; accesses that hit the tag of an in-flight
    line are secondary misses (they merge and complete with the fill). A
    new miss mapping to a set whose resident line is still in flight is
    refused (``CONFLICT``): the MSHR pins the victim until the fill
    completes, so the requester retries — this is also what makes
    direct-mapped set conflicts between thread working sets expensive, the
    effect behind the paper's "miss ratios increase progressively [with
    threads]" observation.
    """

    def __init__(self, size_bytes: int, line_bytes: int):
        if size_bytes % line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // line_bytes
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        self.tags = [-1] * self.n_sets
        self.dirty = bytearray(self.n_sets)
        # fill completion cycle per set; 0 = line (if any) is resident
        self.pending = [0] * self.n_sets
        # set holds a prefetched line not yet touched by a demand access
        self.prefetched = bytearray(self.n_sets)

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def probe(self, addr: int, now: int) -> tuple[int, int, int]:
        """Classify an access without changing state.

        Returns ``(outcome, set_index, ready_cycle)``; ``ready_cycle`` is
        meaningful for ``SECONDARY`` (the in-flight fill completion) and
        for ``CONFLICT`` (when the set unpins).
        """
        line = addr >> self._line_shift
        idx = line & self._set_mask
        tag = line >> 0  # full line id kept as tag (simpler, equivalent)
        pend = self.pending[idx]
        if self.tags[idx] == tag:
            if pend > now:
                return SECONDARY, idx, pend
            return HIT, idx, now
        if pend > now:
            return CONFLICT, idx, pend
        return MISS, idx, 0

    def install(
        self,
        addr: int,
        now: int,
        fill_cycle: int,
        make_dirty: bool,
        prefetched: bool = False,
    ) -> tuple[int, bool]:
        """Begin a line fill for ``addr``: evict the victim and claim the
        set until ``fill_cycle``. Returns ``(victim_line, victim_dirty)``
        — the evicted line id (``-1`` if the set was empty) and whether it
        was dirty (the caller must schedule a write-back)."""
        line = addr >> self._line_shift
        idx = line & self._set_mask
        victim = self.tags[idx]
        victim_dirty = victim != -1 and bool(self.dirty[idx])
        self.tags[idx] = line
        self.dirty[idx] = 1 if make_dirty else 0
        self.pending[idx] = fill_cycle
        self.prefetched[idx] = 1 if prefetched else 0
        return victim, victim_dirty

    def touch_write(self, addr: int) -> None:
        """Mark the resident line dirty (write hit)."""
        line = addr >> self._line_shift
        idx = line & self._set_mask
        if self.tags[idx] == line:
            self.dirty[idx] = 1

    def flush(self) -> None:
        """Invalidate every line (used between experiment phases in tests)."""
        for i in range(self.n_sets):
            self.tags[i] = -1
            self.dirty[i] = 0
            self.pending[i] = 0
            self.prefetched[i] = 0

    def fingerprint(self) -> tuple:
        """Complete tag-array state for snapshot bit-identity checks."""
        return (
            tuple(self.tags), bytes(self.dirty), tuple(self.pending),
            bytes(self.prefetched),
        )


class CacheLevel:
    """Finite set-associative outer level (LRU), optionally partitioned.

    Pure tag/dirty state over line ids; the facade owns every counter and
    all timing. With ``partitions > 1`` the capacity splits evenly and
    ``tid`` selects the slice (the thread-private-L2 scenario); a shared
    level ignores ``tid``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int,
        assoc: int = 1,
        partitions: int = 1,
    ):
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        if capacity_bytes % (line_bytes * assoc * partitions):
            raise ValueError(
                f"capacity {capacity_bytes} is not a multiple of "
                f"line_bytes x assoc x partitions "
                f"({line_bytes} x {assoc} x {partitions}) — the set "
                "count would be silently rounded"
            )
        lines = capacity_bytes // (line_bytes * partitions)
        self.n_sets = max(1, lines // assoc)
        self.assoc = assoc
        self.partitions = partitions
        # per partition, per set: LRU-ordered [(line, dirty), ...] with the
        # most recently used entry first
        self._sets: list[list[list[list]]] = [
            [[] for _ in range(self.n_sets)] for _ in range(partitions)
        ]

    def _set(self, line: int, tid: int) -> list[list]:
        part = tid % self.partitions if self.partitions > 1 else 0
        return self._sets[part][line % self.n_sets]

    def peek(self, line: int, tid: int = 0) -> bool:
        """True when the line is resident; never mutates (no LRU touch)."""
        return any(e[0] == line for e in self._set(line, tid))

    def touch(self, line: int, tid: int = 0, dirty: bool = False) -> None:
        """Commit a hit: move the line to MRU (and optionally dirty it)."""
        s = self._set(line, tid)
        for i, e in enumerate(s):
            if e[0] == line:
                if dirty:
                    e[1] = True
                s.insert(0, s.pop(i))
                return

    def install(self, line: int, tid: int = 0, dirty: bool = False) -> bool:
        """Insert a line at MRU, evicting the LRU way when the set is
        full; returns True when the evicted victim was dirty."""
        s = self._set(line, tid)
        for i, e in enumerate(s):
            if e[0] == line:       # refresh in place (e.g. L1 victim landing
                e[1] = e[1] or dirty  # on a line the level already holds)
                s.insert(0, s.pop(i))
                return False
        victim_dirty = False
        if len(s) >= self.assoc:
            victim_dirty = bool(s.pop()[1])
        s.insert(0, [line, dirty])
        return victim_dirty

    def fingerprint(self) -> tuple:
        """Tag/dirty/LRU state (recency order included) for snapshot
        bit-identity checks."""
        return tuple(
            tuple(tuple((e[0], bool(e[1])) for e in s) for s in part)
            for part in self._sets
        )


class InfiniteLevel:
    """The paper's infinite multibanked L2: every access hits."""

    def peek(self, line: int, tid: int = 0) -> bool:
        return True

    def touch(self, line: int, tid: int = 0, dirty: bool = False) -> None:
        pass

    def install(self, line: int, tid: int = 0, dirty: bool = False) -> bool:
        return False

    def fingerprint(self) -> tuple:
        return ()


class MSHRFile:
    """Finite pool of miss-status registers with time-based release.

    A primary miss allocates one MSHR until its line fill completes;
    secondary misses merge into the existing entry and consume no extra
    MSHR or bus bandwidth. When all MSHRs are busy, new primary misses are
    refused and the requester retries (a structural stall). ``count=None``
    builds an unbounded file (outer levels default to it).
    """

    def __init__(self, count: int | None):
        if count is not None and count <= 0:
            raise ValueError("MSHR count must be positive (or None)")
        self.count = count
        self.in_use = 0
        self._releases: list[int] = []
        self.alloc_failures = 0

    def _drain(self, now: int) -> None:
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)
            self.in_use -= 1

    def available(self, now: int) -> bool:
        """True when at least one MSHR is free at cycle ``now``."""
        if self.count is None:
            return True
        self._drain(now)
        return self.in_use < self.count

    def allocate(self, release_cycle: int) -> None:
        """Occupy one MSHR until ``release_cycle``."""
        if self.count is None:
            return
        self.in_use += 1
        heapq.heappush(self._releases, release_cycle)

    def note_failure(self) -> None:
        self.alloc_failures += 1

    @property
    def outstanding(self) -> int:
        return self.in_use

    def fingerprint(self) -> tuple:
        """Occupancy + pending-release schedule for snapshot checks.

        The release heap is compared in sorted order: heap layout depends
        on insertion history, but drain order — the only thing the model
        observes — depends only on the multiset of release cycles.
        """
        return (
            self.count, self.in_use, tuple(sorted(self._releases)),
            self.alloc_failures,
        )
