"""The off-chip L2 cache model.

Paper Figure 2: infinite, multibanked, 16-cycle hit (the experiments sweep
this latency from 1 to 256 cycles). "Infinite" means every L1 miss hits in
L2; "multibanked" means bank conflicts are negligible, so the only L2-side
queueing happens on the shared L1-L2 bus, which is modelled separately.
"""

from __future__ import annotations


class InfiniteL2:
    """Constant-latency backing store; never misses, never conflicts."""

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("L2 latency must be >= 1 cycle")
        self.latency = latency
        self.accesses = 0

    def access(self, now: int) -> int:
        """Return the cycle at which the requested line is ready to leave the
        L2 (i.e. ready for its bus transfer)."""
        self.accesses += 1
        return now + self.latency
