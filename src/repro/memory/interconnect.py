"""The L1-side line interconnect (fills + dirty write-backs).

The paper's interface is a 128-bit bus moving 16 bytes/cycle, so a 32-byte
line occupies the bus for 2 cycles. Line fills and dirty write-backs compete
for the same bus; it is the resource whose saturation caps the non-decoupled
configurations in Figure 5 (89 % utilization at 12 threads, 98 % at 16).

Since the :class:`~repro.memory.spec.MemSpec` refactor the width and the
arbitration policy are spec fields:

* ``fifo`` (:class:`Bus`) — the paper's single shared bus. The model is
  *eager*: a transfer's start cycle is computed when the request is made
  (``max(earliest, bus_free)``), which is exact for a FIFO bus because
  requests become transfer-ready in request order (monotone ``earliest``
  for a constant outer-level latency; enforced differentially against an
  event-stepped reference in ``tests/test_memspec.py``).
* ``ideal`` (:class:`IdealInterconnect`) — a contention-free crossbar:
  transfers never queue behind each other (utilization accounting is
  kept, so saturation experiments can report demand > 1.0 as 1.0). Used
  to isolate how much of a result is bus queueing.
"""

from __future__ import annotations


class Bus:
    """Single shared bus with FIFO scheduling and utilization accounting."""

    policy = "fifo"

    def __init__(self, bytes_per_cycle: int, line_bytes: int):
        if bytes_per_cycle <= 0:
            raise ValueError("bus width must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.line_bytes = line_bytes
        self.cycles_per_line = max(1, -(-line_bytes // bytes_per_cycle))
        self.free_at = 0
        self.busy_cycles = 0
        self._stats_floor = 0  # busy cycles at the last stats reset

    def schedule_line(self, earliest: int) -> int:
        """Reserve the bus for one line transfer that may start at
        ``earliest``; return the cycle the transfer completes."""
        start = self.free_at if self.free_at > earliest else earliest
        self.free_at = start + self.cycles_per_line
        self.busy_cycles += self.cycles_per_line
        return self.free_at

    def queue_delay_hint(self, now: int) -> int:
        """Current backlog depth in cycles (diagnostic): how long a
        transfer ready at ``now`` would wait before starting."""
        return max(0, self.free_at - now)

    def reset_stats(self) -> None:
        """Zero the utilization accounting (keeps the schedule state)."""
        self._stats_floor = self.busy_cycles

    def busy_since_reset(self) -> int:
        return self.busy_cycles - self._stats_floor

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the bus was busy since the last stats reset."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_since_reset() / elapsed_cycles)


class IdealInterconnect(Bus):
    """Contention-free variant: transfers never wait for each other."""

    policy = "ideal"

    def schedule_line(self, earliest: int) -> int:
        done = earliest + self.cycles_per_line
        if done > self.free_at:
            self.free_at = done
        self.busy_cycles += self.cycles_per_line
        return done

    def queue_delay_hint(self, now: int) -> int:
        return 0


_POLICIES = {"fifo": Bus, "ideal": IdealInterconnect}


def build_interconnect(spec, line_bytes: int) -> Bus:
    """Instantiate the interconnect a resolved
    :class:`~repro.memory.spec.InterconnectSpec` describes."""
    try:
        cls = _POLICIES[spec.policy]
    except KeyError:  # pragma: no cover - spec validation rejects earlier
        raise ValueError(f"unknown bus policy {spec.policy!r}") from None
    return cls(spec.bytes_per_cycle, line_bytes)
