"""Miss Status Holding Registers.

The L1 data cache is lockup-free with a finite set of MSHRs (16 in the
paper's Figure 2). A primary miss allocates one MSHR until its line fill
completes; secondary misses to an in-flight line merge into the existing
entry and consume no extra MSHR or bus bandwidth (they still count as misses
in the paper's miss-ratio metric). When all MSHRs are busy, new primary
misses are refused and the requesting load retries (a structural stall,
reported in the "other" issue-slot category).
"""

from __future__ import annotations

import heapq


class MSHRFile:
    """Finite pool of miss-status registers with time-based release."""

    def __init__(self, count: int):
        if count <= 0:
            raise ValueError("MSHR count must be positive")
        self.count = count
        self.in_use = 0
        self._releases: list[int] = []
        self.alloc_failures = 0

    def _drain(self, now: int) -> None:
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)
            self.in_use -= 1

    def available(self, now: int) -> bool:
        """True when at least one MSHR is free at cycle ``now``."""
        self._drain(now)
        return self.in_use < self.count

    def allocate(self, release_cycle: int) -> None:
        """Occupy one MSHR until ``release_cycle``."""
        self.in_use += 1
        heapq.heappush(self._releases, release_cycle)

    def note_failure(self) -> None:
        self.alloc_failures += 1

    @property
    def outstanding(self) -> int:
        return self.in_use
