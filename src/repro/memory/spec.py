"""Declarative memory-hierarchy descriptions: the open memory API.

A :class:`MemSpec` is a frozen, hashable, JSON-round-trippable description
of the whole memory system — the level stack (capacity, associativity,
sharing, banking, MSHRs, hit latency per level), the L1-side interconnect
(width + arbitration policy) and an optional prefetcher — mirroring the
:class:`~repro.workloads.spec.WorkloadSpec` design: parse once, resolve
against the machine scalars, and from then on the spec is self-contained,
content-addressable and identical across processes.

Fields that default to :data:`AUTO` inherit the classic
:class:`~repro.core.config.MachineConfig` scalars at :meth:`MemSpec.resolve`
time (``l1_bytes``, ``l1_ports``, ``l1_hit_latency``, ``mshrs``,
``l2_latency``, ``bus_bytes_per_cycle``), which keeps the existing
experiment axes alive: a finite-L2 preset with an AUTO last-level latency
still sweeps over ``RunSpec.l2_latency`` exactly like the classic machine.
The default ``MemSpec()`` resolves to the paper's Figure-2 memory system
and is bit-identical to the pre-refactor hardwired facade (enforced by
``tests/test_memspec.py`` and the golden corpus).

Level-stack semantics (see :mod:`repro.memory.hierarchy` for timing):

* ``levels[0]`` is the core-facing L1: direct-mapped, port-arbitrated,
  lockup-free behind its MSHR file, with the pending-set fill machinery.
* ``levels[1:]`` are outer levels walked on an L1 miss. A finite outer
  level is set-associative (LRU) and may be thread-partitioned
  (``shared=False``) or banked; an infinite level (``capacity_bytes is
  None``) always hits — the classic "infinite multibanked L2".
* A miss past the last level pays :attr:`MemSpec.memory_latency`.

Line size stays a machine scalar (``MachineConfig.line_bytes``): the
per-thread region salts and the synthetic address streams are derived
from it, so a per-level line size would silently change the workloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.workloads.profiles import KB, MB, did_you_mean

__all__ = [
    "AUTO",
    "BUS_POLICIES",
    "PREFETCH_KINDS",
    "InterconnectSpec",
    "LevelSpec",
    "MemSpec",
    "PrefetchSpec",
    "load_memspec",
    "mem_preset",
    "mem_preset_names",
    "register_mem_preset",
    "resolve_memspec",
]

#: sentinel: inherit this field from the machine-config scalars
AUTO = "auto"

#: implemented interconnect arbitration policies
BUS_POLICIES = ("fifo", "ideal")
#: implemented prefetcher kinds
PREFETCH_KINDS = ("none", "nextline", "stream")

def _check_known(d: dict, cls, what: str) -> None:
    known = {f.name for f in fields(cls)}
    for key in d:
        if key not in known:
            raise ValueError(
                f"unknown {what} field {key!r}{did_you_mean(key, known)}; "
                f"fields: {', '.join(sorted(known))}"
            )


@dataclass(frozen=True)
class LevelSpec:
    """One cache level. ``levels[0]`` is the L1; the rest are outer."""

    name: str = "L1"
    #: ``None`` = infinite (always hits); AUTO = ``l1_bytes`` at level 0,
    #: infinite for outer levels
    capacity_bytes: int | None | str = AUTO
    #: ways per set; the L1 (level 0) must stay direct-mapped (assoc=1)
    assoc: int = 1
    #: AUTO = ``l1_hit_latency`` at level 0, ``l2_latency`` elsewhere
    hit_latency: int | str = AUTO
    #: miss-status registers; ``None`` = unbounded; AUTO = the config
    #: ``mshrs`` scalar at level 0, unbounded for outer levels
    mshrs: int | None | str = AUTO
    #: 0 = conflict-free multibanking (the paper's L2); N > 0 models N
    #: banks each accepting one access per cycle (eager FIFO, like the bus)
    banks: int = 0
    #: ``False`` partitions the capacity evenly across hardware contexts
    shared: bool = True
    #: per-cycle access ports; only enforced at level 0 (AUTO = ``l1_ports``)
    ports: int | str = AUTO

    def __post_init__(self):
        if self.assoc < 1:
            raise ValueError(f"{self.name}: assoc must be >= 1")
        if self.banks < 0:
            raise ValueError(f"{self.name}: banks must be >= 0")
        for fname in ("capacity_bytes", "hit_latency", "mshrs", "ports"):
            v = getattr(self, fname)
            if isinstance(v, str) and v != AUTO:
                raise ValueError(
                    f"{self.name}.{fname}: expected an integer or "
                    f"{AUTO!r}, got {v!r}"
                )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "LevelSpec":
        if not isinstance(d, dict):
            raise ValueError(f"level spec must be a mapping, got {d!r}")
        _check_known(d, cls, "memory level")
        return cls(**d)


@dataclass(frozen=True)
class InterconnectSpec:
    """The L1-side line interconnect (fills + write-backs)."""

    kind: str = "bus"
    #: AUTO = the config ``bus_bytes_per_cycle`` scalar
    bytes_per_cycle: int | str = AUTO
    #: ``fifo``: single shared bus, eager FIFO scheduling (the paper's);
    #: ``ideal``: contention-free crossbar (transfers never queue) —
    #: isolates bus saturation in experiments
    policy: str = "fifo"

    def __post_init__(self):
        if self.kind != "bus":
            raise ValueError(
                f"unknown interconnect kind {self.kind!r}"
                f"{did_you_mean(self.kind, ('bus',))}"
            )
        if self.policy not in BUS_POLICIES:
            raise ValueError(
                f"unknown bus policy {self.policy!r}"
                f"{did_you_mean(self.policy, BUS_POLICIES)}; "
                f"known: {', '.join(BUS_POLICIES)}"
            )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "InterconnectSpec":
        if not isinstance(d, dict):
            raise ValueError(f"interconnect spec must be a mapping, got {d!r}")
        _check_known(d, cls, "interconnect")
        return cls(**d)


@dataclass(frozen=True)
class PrefetchSpec:
    """Optional hardware prefetcher in front of the L1 miss path.

    Both built-in kinds are *miss-triggered*: they act only inside demand
    accesses, never on a clock, which is what keeps them eligible for the
    idle-cycle fast-forward (see DESIGN.md "Memory hierarchy").
    """

    kind: str = "none"
    #: lines fetched ahead per triggering miss
    degree: int = 1

    def __post_init__(self):
        if self.kind not in PREFETCH_KINDS:
            raise ValueError(
                f"unknown prefetcher kind {self.kind!r}"
                f"{did_you_mean(self.kind, PREFETCH_KINDS)}; "
                f"known: {', '.join(PREFETCH_KINDS)}"
            )
        if self.degree < 1:
            raise ValueError("prefetch degree must be >= 1")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "PrefetchSpec":
        if not isinstance(d, dict):
            raise ValueError(f"prefetch spec must be a mapping, got {d!r}")
        _check_known(d, cls, "prefetch")
        return cls(**d)


@dataclass(frozen=True)
class MemSpec:
    """The whole memory hierarchy, declaratively."""

    name: str = "classic"
    levels: tuple[LevelSpec, ...] = (
        LevelSpec(name="L1"),
        LevelSpec(name="L2"),
    )
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    prefetch: PrefetchSpec = field(default_factory=PrefetchSpec)
    #: latency of a miss past the last level; AUTO = 4x the resolved
    #: last-level hit latency (only reachable when the last level is finite)
    memory_latency: int | str = AUTO

    def __post_init__(self):
        if not self.levels:
            raise ValueError("memory hierarchy needs at least one level")
        if isinstance(self.levels, list):
            object.__setattr__(self, "levels", tuple(self.levels))
        l0 = self.levels[0]
        if l0.assoc != 1:
            raise ValueError(
                "level 0 (the L1) must be direct-mapped (assoc=1); "
                f"got assoc={l0.assoc}"
            )
        if l0.capacity_bytes is None:
            raise ValueError("level 0 (the L1) cannot be infinite")
        seen = set()
        for lvl in self.levels:
            if lvl.name in seen:
                raise ValueError(f"duplicate level name {lvl.name!r}")
            seen.add(lvl.name)
        if (
            isinstance(self.memory_latency, str)
            and self.memory_latency != AUTO
        ):
            raise ValueError(
                f"memory_latency: expected an integer or {AUTO!r}, "
                f"got {self.memory_latency!r}"
            )

    # -- resolution ------------------------------------------------------------

    @property
    def resolved(self) -> bool:
        """True when no field is still :data:`AUTO`."""
        vals = [self.memory_latency]
        vals.append(self.interconnect.bytes_per_cycle)
        for lvl in self.levels:
            vals += [lvl.capacity_bytes, lvl.hit_latency, lvl.mshrs, lvl.ports]
        return AUTO not in [v for v in vals if isinstance(v, str)]

    def resolve(self, cfg) -> "MemSpec":
        """Fill every :data:`AUTO` field from the machine-config scalars;
        the result is fully concrete (and idempotent under re-resolution).
        """
        last = len(self.levels) - 1
        levels = []
        for i, lvl in enumerate(self.levels):
            kw = {}
            if lvl.capacity_bytes == AUTO:
                kw["capacity_bytes"] = cfg.l1_bytes if i == 0 else None
            if lvl.hit_latency == AUTO:
                kw["hit_latency"] = (
                    cfg.l1_hit_latency if i == 0 else cfg.l2_latency
                )
            if lvl.mshrs == AUTO:
                kw["mshrs"] = cfg.mshrs if i == 0 else None
            if lvl.ports == AUTO:
                kw["ports"] = cfg.l1_ports if i == 0 else 0
            levels.append(replace(lvl, **kw) if kw else lvl)
        ic = self.interconnect
        if ic.bytes_per_cycle == AUTO:
            ic = replace(ic, bytes_per_cycle=cfg.bus_bytes_per_cycle)
        mem_lat = self.memory_latency
        if mem_lat == AUTO:
            mem_lat = 4 * levels[last].hit_latency
        out = MemSpec(
            name=self.name,
            levels=tuple(levels),
            interconnect=ic,
            prefetch=self.prefetch,
            memory_latency=mem_lat,
        )
        out.validate_resolved()
        # capacities must divide cleanly into line x assoc x partition
        # units — CacheLevel would otherwise silently round the set
        # count, simulating a different machine than the label claims —
        # and the L1 needs a power-of-two set count per slice. Checked
        # here, where line size and n_threads are known, so a bad
        # combination fails with one actionable message instead of a
        # traceback from deep inside machine construction.
        n = cfg.n_threads
        for i, lvl in enumerate(out.levels):
            cap = lvl.capacity_bytes
            if cap is None:
                continue
            parts = 1 if lvl.shared else max(1, n)
            unit = cfg.line_bytes * lvl.assoc * parts
            sets = cap // unit
            if cap % unit or sets < 1 or (i == 0 and sets & (sets - 1)):
                raise ValueError(
                    f"{lvl.name}: capacity {cap} cannot be "
                    + (f"partitioned across {n} threads " if parts > 1
                       else "organized ")
                    + f"as whole sets (need a positive multiple of "
                    f"line_bytes x assoc{' x threads' if parts > 1 else ''}"
                    f" = {unit}"
                    + (", with a power-of-two set count" if i == 0 else "")
                    + "); adjust capacity_bytes"
                    + (" or use shared=true" if parts > 1 else "")
                )
        return out

    def validate_resolved(self) -> None:
        """Sanity checks that only make sense on concrete values."""
        for i, lvl in enumerate(self.levels):
            cap = lvl.capacity_bytes
            if cap is not None and cap <= 0:
                raise ValueError(f"{lvl.name}: capacity must be positive")
            if not isinstance(lvl.hit_latency, int) or lvl.hit_latency < 1:
                raise ValueError(f"{lvl.name}: hit latency must be >= 1")
            if lvl.mshrs is not None and (
                not isinstance(lvl.mshrs, int) or lvl.mshrs < 1
            ):
                raise ValueError(f"{lvl.name}: mshrs must be >= 1 or null")
            if i == 0 and (not isinstance(lvl.ports, int) or lvl.ports < 1):
                raise ValueError("level 0 needs >= 1 port")
        bpc = self.interconnect.bytes_per_cycle
        if not isinstance(bpc, int) or bpc <= 0:
            raise ValueError("bus width must be positive")
        if not isinstance(self.memory_latency, int) or self.memory_latency < 1:
            raise ValueError("memory_latency must be >= 1")

    def geometry(self) -> "MemSpec":
        """This hierarchy with every *timing* field normalized away.

        Two resolved specs that differ only in latencies, bus width,
        banking or MSHR counts share a geometry — which is what keys the
        analytic backend's characterization walk, so a whole latency
        sweep pays for one walk (the same invariant the workload walk
        already has). Names are normalized away too: ``override()``
        renames the spec per axis value, and a timing-only axis must not
        defeat walk sharing.
        """
        return MemSpec(
            name="geometry",
            levels=tuple(
                replace(lvl, name=f"level{i}", hit_latency=1, mshrs=None,
                        banks=0, ports=1)
                for i, lvl in enumerate(self.levels)
            ),
            interconnect=InterconnectSpec(bytes_per_cycle=1, policy="fifo"),
            prefetch=self.prefetch,
            memory_latency=1,
        )

    # -- identity --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "levels": [lvl.to_dict() for lvl in self.levels],
            "interconnect": self.interconnect.to_dict(),
            "prefetch": self.prefetch.to_dict(),
            "memory_latency": self.memory_latency,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MemSpec":
        if not isinstance(d, dict):
            raise ValueError(f"memory spec must be a mapping, got {d!r}")
        _check_known(d, cls, "memory spec")
        levels = d.get("levels")
        if not isinstance(levels, (list, tuple)) or not levels:
            raise ValueError("memory spec needs a non-empty 'levels' list")
        return cls(
            name=str(d.get("name", "custom")),
            levels=tuple(LevelSpec.from_dict(lvl) for lvl in levels),
            interconnect=InterconnectSpec.from_dict(
                d.get("interconnect") or {}
            ),
            prefetch=PrefetchSpec.from_dict(d.get("prefetch") or {}),
            memory_latency=d.get("memory_latency", AUTO),
        )

    def key(self) -> str:
        """Stable content hash, identical across processes."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    # -- derivation ------------------------------------------------------------

    #: flat override fields usable from ``--mem-axis`` (and their target)
    _FLAT_FIELDS = {
        "prefetch_kind": ("prefetch", "kind"),
        "prefetch_degree": ("prefetch", "degree"),
        "bus_bytes_per_cycle": ("interconnect", "bytes_per_cycle"),
        "bus_policy": ("interconnect", "policy"),
        "memory_latency": (None, "memory_latency"),
    }

    def override(self, field_name: str, value) -> "MemSpec":
        """One field replaced, addressed flat (``prefetch_degree``) or as
        ``LEVEL.field`` (``L2.capacity_bytes``); the spec name records the
        override so labels stay truthful. Unknown fields get a
        closest-match suggestion.
        """
        named = f"{self.name}({field_name}={value})"
        if "." in field_name:
            level_name, _, attr = field_name.partition(".")
            by_name = {lvl.name: lvl for lvl in self.levels}
            if level_name not in by_name:
                raise ValueError(
                    f"unknown memory level {level_name!r}"
                    f"{did_you_mean(level_name, by_name)}; "
                    f"levels: {', '.join(by_name)}"
                )
            known = {f.name for f in fields(LevelSpec)}
            if attr not in known:
                raise ValueError(
                    f"unknown level field {attr!r}"
                    f"{did_you_mean(attr, known)}; "
                    f"fields: {', '.join(sorted(known))}"
                )
            levels = tuple(
                replace(lvl, **{attr: value})
                if lvl.name == level_name
                else lvl
                for lvl in self.levels
            )
            return replace(self, name=named, levels=levels)
        target = self._FLAT_FIELDS.get(field_name)
        if target is None:
            known = sorted(self._FLAT_FIELDS) + [
                f"{lvl.name}.<field>" for lvl in self.levels
            ]
            raise ValueError(
                f"unknown memory field {field_name!r}"
                f"{did_you_mean(field_name, self._FLAT_FIELDS)}; "
                f"known: {', '.join(known)}"
            )
        part, attr = target
        if part is None:
            return replace(self, name=named, **{attr: value})
        return replace(
            self, name=named,
            **{part: replace(getattr(self, part), **{attr: value})},
        )


# -- presets -----------------------------------------------------------------

#: name -> (spec, provenance)
_MEM_PRESETS: dict[str, tuple[MemSpec, str]] = {}


def register_mem_preset(
    spec: MemSpec, provenance: str = "user"
) -> MemSpec:
    """Register a named memory-hierarchy preset (``--mem NAME``)."""
    if not spec.name:
        raise ValueError("memory preset needs a non-empty name")
    _MEM_PRESETS[spec.name] = (spec, provenance)
    return spec


def mem_preset(name: str) -> MemSpec:
    try:
        return _MEM_PRESETS[name][0]
    except KeyError:
        known = sorted(_MEM_PRESETS)
        raise KeyError(
            f"unknown memory preset {name!r}{did_you_mean(name, known)}; "
            f"known: {', '.join(known)}"
        ) from None


def mem_preset_names() -> list[str]:
    return sorted(_MEM_PRESETS)


def mem_preset_provenance(name: str) -> str:
    mem_preset(name)  # uniform unknown-name error
    return _MEM_PRESETS[name][1]


def _builtin_presets() -> None:
    reg = lambda s: register_mem_preset(s, provenance="built-in")  # noqa: E731
    l1 = LevelSpec(name="L1")
    # the paper's Figure-2 machine (identical to the default MemSpec)
    reg(MemSpec(name="classic"))
    # finite shared L2: threads couple through a 1 MB 8-way cache; a miss
    # past it pays the (AUTO: 4x) backing-store latency
    reg(MemSpec(
        name="l2_finite",
        levels=(l1, LevelSpec(name="L2", capacity_bytes=MB, assoc=8)),
    ))
    # small shared L2: pressure visible even at few threads
    reg(MemSpec(
        name="l2_small",
        levels=(l1, LevelSpec(name="L2", capacity_bytes=256 * KB, assoc=8)),
    ))
    # finite L2 statically partitioned per hardware context
    reg(MemSpec(
        name="l2_partitioned",
        levels=(
            l1,
            LevelSpec(name="L2", capacity_bytes=MB, assoc=8, shared=False),
        ),
    ))
    # classic machine + next-line prefetch on L1 demand misses
    reg(MemSpec(name="nextline", prefetch=PrefetchSpec(kind="nextline")))
    # classic machine + ascending-stream prefetch, two lines deep
    reg(MemSpec(
        name="stream", prefetch=PrefetchSpec(kind="stream", degree=2),
    ))
    # double-width bus (one cycle per 32-byte line)
    reg(MemSpec(
        name="wide_bus",
        interconnect=InterconnectSpec(bytes_per_cycle=32),
    ))


_builtin_presets()


# -- file loading ------------------------------------------------------------


def load_memspec(path) -> MemSpec:
    """Read one memory-hierarchy document from a JSON or TOML file
    (schema = :meth:`MemSpec.to_dict`; see DESIGN.md "Memory hierarchy").
    """
    from repro.workloads.profiles import load_document

    return MemSpec.from_dict(load_document(path))


def resolve_memspec(ref: str) -> MemSpec:
    """CLI-facing resolution: a preset name, or a JSON/TOML file path."""
    from pathlib import Path

    p = Path(ref)
    if p.suffix.lower() in (".json", ".toml") or p.is_file():
        return load_memspec(p)
    return mem_preset(ref)
