"""Spec-specialized memory fast path.

The generic :class:`~repro.memory.hierarchy.MemorySystem` miss path is an
interpreter: every access re-discovers the shape of the level stack — walk
the outer levels (``_plan_outer``), collect the levels that missed, check
each one's MSHR file, commit the fill level by level, consult the
prefetcher.  That generality is exactly what PR 5 bought, and on the
*default* shape — one L1 slice in front of an infinite conflict-free L2,
FIFO bus, no prefetcher — every one of those steps is statically a no-op
or a constant.

:func:`build_fastpath` inspects a freshly composed ``MemorySystem`` and,
when the resolved spec has that flat shape, returns hand-flattened
``load``/``store`` closures that the facade installs over its generic
methods.  The closures capture the L1 tag/dirty/pending arrays, the MSHR
file's internals, the bus and the single outer level directly, so a hit is
a couple of list indexes and a miss is one straight-line block — no
``_plan_outer`` plan tuple, no per-level loops, no prefetcher hook, no
``_commit_fill`` frame.

Safety contract: the closures must be **bit-identical** to the generic
path — same status codes, same ready cycles, same counter increments in
the same order (the bus schedules the fill transfer *before* a dirty
victim's write-back, exactly like ``_commit_fill``).  The generic path is
kept as the differential reference; ``tests/test_fastpath.py`` drives both
through random access streams and full pipeline runs.  Exotic stacks —
finite or banked outer levels, bounded outer MSHR files, multiple L1
slices, any prefetcher — fall back to the generic interpreter untouched.

Set ``REPRO_GENERIC_MEM=1`` to disable specialization globally (CI uses
this to prove the generic path still carries the whole tier-1 suite).
"""

from __future__ import annotations

import os
from heapq import heappop, heappush

from repro.memory.levels import InfiniteLevel
from repro.memory.prefetch import Prefetcher

# Status codes (mirrored from repro.memory.hierarchy; imported lazily there
# to avoid a module cycle — hierarchy asserts the two sets agree).
S_HIT = 0
S_MISS = 1
S_SECONDARY = 2
S_BLOCKED = 3


def _eligible(mem) -> bool:
    """True when ``mem`` has the flat classic shape the closures model."""
    if os.environ.get("REPRO_GENERIC_MEM"):
        return False
    if len(mem._l1s) != 1:
        return False  # per-thread L1 slices: keep the generic dispatch
    if type(mem.prefetcher) is not Prefetcher:
        return False  # any real prefetcher hooks the demand-fill path
    for lvl in mem.outer:
        if not isinstance(lvl.store, InfiniteLevel):
            return False  # finite outer level: real tag state + LRU
        if lvl.banks:
            return False  # bank queueing adds per-access delay state
        if lvl.mshrs.count is not None:
            return False  # bounded outer MSHR file can refuse a fill
    return True


def build_fastpath(mem):
    """Return specialized ``(load, store)`` closures for ``mem``, or
    ``None`` when the composed shape needs the generic interpreter."""
    if not _eligible(mem):
        return None

    l1 = mem._l1s[0]
    tags = l1.tags
    dirty = l1.dirty
    pending = l1.pending
    set_mask = l1._set_mask
    line_shift = l1._line_shift
    hit_latency = mem.hit_latency
    mshrs = mem.mshrs
    mshr_count = mshrs.count
    releases = mshrs._releases
    bus = mem.bus
    schedule_line = bus.schedule_line
    outer0 = mem.outer[0] if mem.outer else None
    # with every outer level infinite the first one always serves; with no
    # outer level at all the miss goes straight to memory
    serve_latency = (
        outer0.hit_latency if outer0 is not None else mem.memory_latency
    )

    def _access(addr: int, now: int, make_dirty: bool):
        """The shared miss-path tail (the flattened ``_demand_miss`` +
        ``_commit_fill``), plus the L1 probe, in one frame."""
        line = addr >> line_shift
        idx = line & set_mask
        pend = pending[idx]
        if tags[idx] == line:
            if pend > now:                    # merged into in-flight fill
                if make_dirty:
                    dirty[idx] = 1
                return S_SECONDARY, pend
            if make_dirty:                    # plain hit
                dirty[idx] = 1
            return S_HIT, now + hit_latency
        if pend > now:                        # set pinned by another fill
            mem.blocked_requests += 1
            return S_BLOCKED, pend
        # primary miss: refuse before touching anything when no MSHR is free
        if mshr_count is not None:
            while releases and releases[0] <= now:
                heappop(releases)
                mshrs.in_use -= 1
            if mshrs.in_use >= mshr_count:
                mshrs.alloc_failures += 1
                mem.blocked_requests += 1
                return S_BLOCKED, 0
        if outer0 is not None:
            outer0.hits += 1
        fill = schedule_line(now + serve_latency)
        if mshr_count is not None:
            mshrs.in_use += 1
            heappush(releases, fill)
        # install into the L1 (the dirty victim's write-back transfer is
        # scheduled after the fill transfer, exactly like _commit_fill)
        if tags[idx] != -1 and dirty[idx]:
            schedule_line(now)
            mem.writebacks += 1
        tags[idx] = line
        dirty[idx] = 1 if make_dirty else 0
        pending[idx] = fill
        mem.fills += 1
        return S_MISS, fill

    def load(addr: int, now: int, tid: int = 0):
        return _access(addr, now, False)

    def store(addr: int, now: int, tid: int = 0):
        return _access(addr, now, True)

    return load, store


def respecialize(mem) -> bool:
    """(Re)install the fast-path closures on ``mem``; returns whether the
    shape qualified.

    Used after unpickling a snapshot: instance-level closures cannot
    cross a pickle, so :class:`~repro.memory.hierarchy.MemorySystem`
    drops them in ``__getstate__`` and calls this from ``__setstate__``.
    Rebuilding is safe because the closures capture the *restored* tag,
    MSHR and bus objects directly — they resume bit-identically from
    whatever state the snapshot carried.  Eligibility is re-evaluated in
    the restoring process, so a snapshot taken with the fast path active
    restores onto the generic interpreter under ``REPRO_GENERIC_MEM=1``
    (and vice versa) — legal precisely because the two are bit-identical.
    """
    fast = build_fastpath(mem)
    if fast is not None:
        mem.load, mem.store = fast
        mem.specialized = True
    else:
        mem.specialized = False
    return mem.specialized
