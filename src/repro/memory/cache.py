"""Direct-mapped, write-back, write-allocate L1 data cache.

Paper Figure 2: 64 KB, direct-mapped, 32-byte lines, write-back, 4 ports,
lockup-free with 16 MSHRs, 1-cycle hit.

The tag array is updated at *request* time and the line's data becomes
available at *fill* time; accesses that hit the tag of an in-flight line are
secondary misses (they merge and complete with the fill). A new miss mapping
to a set whose resident line is still in flight is refused (``CONFLICT``):
the MSHR pins the victim until the fill completes, so the requester retries —
this is also what makes direct-mapped set conflicts between thread working
sets expensive, the effect behind the paper's "miss ratios increase
progressively [with threads]" observation.
"""

from __future__ import annotations

# Access outcomes.
HIT = 0
MISS = 1        # primary miss: caller must obtain an MSHR + bus slot
SECONDARY = 2   # merged into an in-flight fill of the same line
CONFLICT = 3    # set is pinned by an in-flight fill of a different line


class L1Cache:
    """Tag/dirty-bit model of the L1 data cache (no data values)."""

    def __init__(self, size_bytes: int, line_bytes: int):
        if size_bytes % line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // line_bytes
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        self.tags = [-1] * self.n_sets
        self.dirty = bytearray(self.n_sets)
        # fill completion cycle per set; 0 = line (if any) is resident
        self.pending = [0] * self.n_sets

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def probe(self, addr: int, now: int) -> tuple[int, int, int]:
        """Classify an access without changing state.

        Returns ``(outcome, set_index, ready_cycle)``; ``ready_cycle`` is
        meaningful for ``SECONDARY`` (the in-flight fill completion) and for
        ``CONFLICT`` (when the set unpins).
        """
        line = addr >> self._line_shift
        idx = line & self._set_mask
        tag = line >> 0  # full line id kept as tag (simpler, equivalent)
        pend = self.pending[idx]
        if self.tags[idx] == tag:
            if pend > now:
                return SECONDARY, idx, pend
            return HIT, idx, now
        if pend > now:
            return CONFLICT, idx, pend
        return MISS, idx, 0

    def install(self, addr: int, now: int, fill_cycle: int,
                make_dirty: bool) -> bool:
        """Begin a line fill for ``addr``: evict the victim and claim the set
        until ``fill_cycle``. Returns True when the victim was dirty (the
        caller must schedule a write-back)."""
        line = addr >> self._line_shift
        idx = line & self._set_mask
        victim_dirty = self.tags[idx] != -1 and bool(self.dirty[idx])
        self.tags[idx] = line
        self.dirty[idx] = 1 if make_dirty else 0
        self.pending[idx] = fill_cycle
        return victim_dirty

    def touch_write(self, addr: int) -> None:
        """Mark the resident line dirty (write hit)."""
        line = addr >> self._line_shift
        idx = line & self._set_mask
        if self.tags[idx] == line:
            self.dirty[idx] = 1

    def flush(self) -> None:
        """Invalidate every line (used between experiment phases in tests)."""
        for i in range(self.n_sets):
            self.tags[i] = -1
            self.dirty[i] = 0
            self.pending[i] = 0
