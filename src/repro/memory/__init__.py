"""Memory hierarchy: declarative :class:`MemSpec` level stacks composed
into the runtime facade (levels + MSHRs + interconnect + prefetcher)."""

from repro.memory.hierarchy import (
    S_BLOCKED,
    S_HIT,
    S_MISS,
    S_SECONDARY,
    MemorySystem,
)
from repro.memory.interconnect import Bus, IdealInterconnect
from repro.memory.levels import (
    CONFLICT,
    HIT,
    MISS,
    SECONDARY,
    CacheLevel,
    InfiniteLevel,
    L1Cache,
    MSHRFile,
)
from repro.memory.prefetch import (
    NextLinePrefetcher,
    Prefetcher,
    StreamPrefetcher,
)
from repro.memory.spec import (
    AUTO,
    InterconnectSpec,
    LevelSpec,
    MemSpec,
    PrefetchSpec,
    load_memspec,
    mem_preset,
    mem_preset_names,
    register_mem_preset,
    resolve_memspec,
)

__all__ = [
    "AUTO",
    "Bus",
    "CacheLevel",
    "CONFLICT",
    "HIT",
    "IdealInterconnect",
    "InfiniteLevel",
    "InterconnectSpec",
    "L1Cache",
    "LevelSpec",
    "load_memspec",
    "mem_preset",
    "mem_preset_names",
    "MemSpec",
    "MemorySystem",
    "MISS",
    "MSHRFile",
    "NextLinePrefetcher",
    "Prefetcher",
    "PrefetchSpec",
    "register_mem_preset",
    "resolve_memspec",
    "S_BLOCKED",
    "S_HIT",
    "S_MISS",
    "S_SECONDARY",
    "SECONDARY",
    "StreamPrefetcher",
]
