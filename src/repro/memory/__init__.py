"""Memory hierarchy: L1 D-cache, MSHRs, L1-L2 bus and L2 models."""

from repro.memory.bus import Bus
from repro.memory.cache import CONFLICT, HIT, MISS, SECONDARY, L1Cache
from repro.memory.hierarchy import (
    S_BLOCKED,
    S_HIT,
    S_MISS,
    S_SECONDARY,
    MemorySystem,
)
from repro.memory.l2 import InfiniteL2
from repro.memory.mshr import MSHRFile

__all__ = [
    "Bus",
    "MSHRFile",
    "L1Cache",
    "InfiniteL2",
    "MemorySystem",
    "HIT",
    "MISS",
    "SECONDARY",
    "CONFLICT",
    "S_HIT",
    "S_MISS",
    "S_SECONDARY",
    "S_BLOCKED",
]
