"""Hardware prefetchers in front of the L1 miss path.

A prefetcher observes demand primary misses and may inject *prefetch
fills* through the normal miss machinery (MSHR + outer-level walk + bus
transfer), so prefetching pays real bandwidth and real MSHR occupancy —
useless prefetches show up as bus utilization and structural pressure,
exactly the trade-off the experiments want to expose.

Fast-forward contract (see DESIGN.md "Memory hierarchy"): the built-in
prefetchers are **miss-triggered** — all of their state changes happen
synchronously inside a demand ``load``/``store`` call, which can only
execute during a non-quiescent cycle, so the idle-cycle fast-forward
remains bit-exact with them enabled. A prefetcher that needs a per-cycle
clock must set :attr:`Prefetcher.tick_driven`, which makes the facade
report ``fast_forward_safe = False`` and the processor fall back to the
per-cycle walk (correct, just slower).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import MemorySystem


class Prefetcher:
    """Observer of demand primary misses; may inject prefetch fills."""

    name = "none"
    #: True when the prefetcher mutates state on a clock rather than only
    #: inside demand accesses — disables the idle-cycle fast-forward
    tick_driven = False

    def on_demand_fill(
        self, mem: "MemorySystem", line: int, now: int, tid: int
    ) -> None:
        """Called after a demand primary miss started its fill."""

    def fingerprint(self) -> tuple:
        """Dynamic predictor state for snapshot bit-identity checks.

        The base prefetcher (and next-line, whose only state is its
        configured degree) is stateless; stateful prefetchers override
        this so a restored machine provably carries their training state.
        """
        return (self.name,)


class NextLinePrefetcher(Prefetcher):
    """On a demand miss of line ``X``, fetch ``X+1 .. X+degree``."""

    name = "nextline"

    def __init__(self, degree: int = 1):
        self.degree = degree

    def on_demand_fill(self, mem, line, now, tid):
        for d in range(1, self.degree + 1):
            mem.try_prefetch(line + d, now, tid)


class StreamPrefetcher(Prefetcher):
    """Ascending-stream detector: prefetch only when a miss continues a
    run (line ``X`` missing after ``X-1`` recently missed), then fetch
    ``degree`` lines ahead. Streams are tracked per hardware context —
    interleaved thread miss streams must not masquerade as one stream.
    """

    name = "stream"

    def __init__(self, degree: int = 2, table_size: int = 16):
        self.degree = degree
        self.table_size = table_size
        # per tid: recent miss lines, insertion-ordered (dict as LRU set)
        self._recent: dict[int, dict[int, None]] = {}

    def on_demand_fill(self, mem, line, now, tid):
        table = self._recent.setdefault(tid, {})
        ascending = (line - 1) in table
        table.pop(line, None)
        table[line] = None
        while len(table) > self.table_size:
            del table[next(iter(table))]
        if ascending:
            for d in range(1, self.degree + 1):
                mem.try_prefetch(line + d, now, tid)

    def fingerprint(self) -> tuple:
        """Per-thread recent-miss tables, insertion order included (the
        LRU eviction point depends on it)."""
        return (
            self.name, self.degree, self.table_size,
            tuple(
                (tid, tuple(table))
                for tid, table in sorted(self._recent.items())
            ),
        )


def build_prefetcher(spec) -> Prefetcher:
    """Instantiate the prefetcher a resolved
    :class:`~repro.memory.spec.PrefetchSpec` describes."""
    if spec.kind == "none":
        return Prefetcher()
    if spec.kind == "nextline":
        return NextLinePrefetcher(degree=spec.degree)
    if spec.kind == "stream":
        return StreamPrefetcher(degree=spec.degree)
    raise ValueError(  # pragma: no cover - spec validation rejects earlier
        f"unknown prefetcher kind {spec.kind!r}"
    )
