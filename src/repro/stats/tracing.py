"""Pipeline event tracing.

A lightweight observer that records per-instruction pipeline timelines
(fetch/dispatch/issue/complete/commit cycles, unit, squash fate) from a
running :class:`~repro.core.processor.Processor`. Useful for debugging the
model, for teaching (the slip between AP and EP becomes visible instruction
by instruction), and for the tests that assert pipeline-order invariants.

The tracer polls architectural state rather than hooking the hot paths, so
attaching it costs one pass over each thread's ROB per cycle — acceptable
for the short windows it is meant for, and zero cost when not attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.isa.instruction import ST_SQUASHED
from repro.isa.opclass import OpClass, Unit

if TYPE_CHECKING:  # pragma: no cover - avoid a circular runtime import
    from repro.core.processor import Processor


@dataclass
class InstRecord:
    """Timeline of one dynamic instruction."""

    seq: int
    thread: int
    op: OpClass
    unit: Unit
    pc: int
    wrong_path: bool
    fetch_cycle: int
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1
    squashed: bool = False

    @property
    def issue_delay(self) -> int:
        """Cycles between fetch and issue (queue + operand wait)."""
        if self.issue_cycle < 0:
            return -1
        return self.issue_cycle - self.fetch_cycle


@dataclass
class PipelineTrace:
    """A bounded recording of instruction timelines."""

    records: dict[tuple[int, int], InstRecord] = field(default_factory=dict)
    capacity: int = 10_000

    def committed(self) -> list[InstRecord]:
        return sorted(
            (r for r in self.records.values() if r.commit_cycle >= 0),
            key=lambda r: (r.thread, r.seq),
        )

    def squashed(self) -> list[InstRecord]:
        return [r for r in self.records.values() if r.squashed]

    def for_thread(self, tid: int) -> list[InstRecord]:
        return sorted(
            (r for r in self.records.values() if r.thread == tid),
            key=lambda r: r.seq,
        )

    def format_timeline(self, tid: int, limit: int = 40) -> str:
        """Human-readable per-instruction timeline for one thread."""
        lines = [
            f"{'seq':>5} {'op':10} {'unit':4} {'F':>6} {'I':>6} {'C':>6} "
            f"{'R':>6}  note"
        ]
        for r in self.for_thread(tid)[:limit]:
            note = "squashed" if r.squashed else (
                "wrong-path" if r.wrong_path else ""
            )
            lines.append(
                f"{r.seq:>5} {r.op.name:10} {r.unit.name:4} "
                f"{r.fetch_cycle:>6} {r.issue_cycle:>6} "
                f"{r.complete_cycle:>6} {r.commit_cycle:>6}  {note}"
            )
        return "\n".join(lines)


class Tracer:
    """Attach to a processor and record instruction timelines while stepping.

    Usage::

        proc = Processor(cfg, playlists)
        tracer = Tracer(proc)
        for _ in range(2000):
            proc.step()
            tracer.observe()
        print(tracer.trace.format_timeline(tid=0))
    """

    def __init__(self, proc: Processor, capacity: int = 10_000):
        self.proc = proc
        self.trace = PipelineTrace(capacity=capacity)
        self._live: dict[tuple[int, int], object] = {}

    def observe(self) -> None:
        """Record the current cycle's state; call once per ``step()``."""
        records = self.trace.records
        now = self.proc.cycle
        for t in self.proc.threads:
            # new instructions appear in the fetch buffer or ROB
            for d in list(t.fetch_buf) + list(t.rob):
                key = (t.tid, d.seq)
                rec = records.get(key)
                if rec is None:
                    if len(records) >= self.trace.capacity:
                        continue
                    rec = InstRecord(
                        seq=d.seq, thread=t.tid, op=d.static.op,
                        unit=d.unit, pc=d.static.pc,
                        wrong_path=d.wrong_path,
                        fetch_cycle=d.fetch_cycle,
                    )
                    records[key] = rec
                    self._live[key] = d
                rec.issue_cycle = d.issue_cycle
                rec.complete_cycle = d.complete_cycle
        # detect commits and squashes among previously-live instructions
        for key, d in list(self._live.items()):
            tid, _seq = key
            t = self.proc.threads[tid]
            if d.state == ST_SQUASHED:
                records[key].squashed = True
                del self._live[key]
            elif d not in t.rob and d not in t.fetch_buf:
                rec = records[key]
                rec.issue_cycle = d.issue_cycle
                rec.complete_cycle = d.complete_cycle
                if not rec.squashed:
                    rec.commit_cycle = now
                del self._live[key]

    def run_traced(self, cycles: int) -> PipelineTrace:
        """Step the processor ``cycles`` times while observing."""
        for _ in range(cycles):
            self.proc.step()
            self.observe()
        return self.trace
