"""Simulation statistics.

Implements the paper's three headline metrics:

* **IPC** — committed (right-path) instructions per elapsed cycle.
* **Issue-slot breakdown** (Figure 3) — every cycle, each of the 4 AP and 4
  EP slots is classified as useful work, wrong-path, wait-operand-from-
  memory, wait-operand-from-FU, other (structural), or idle. The paper
  plots wrong-path and idle as one category; we keep them separate
  internally and merge in the report.
* **Perceived load-miss latency** (sections 2, 3.2) — "the average number of
  cycles that an instruction that uses a load value cannot issue although
  there is a free issue slot", averaged over load *misses* (hits excluded),
  separately for FP and integer loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.isa.opclass import Unit

# Issue-slot categories (paper Figure 3).
SLOT_USEFUL = 0
SLOT_WRONG_PATH = 1
SLOT_WAIT_MEM = 2
SLOT_WAIT_FU = 3
SLOT_OTHER = 4
SLOT_IDLE = 5
N_SLOT_CATEGORIES = 6

SLOT_NAMES = ("useful", "wrong_path", "wait_mem", "wait_fu", "other", "idle")


#: Counters that describe *how* the scheduler executed a region rather
#: than what the machine did — legitimately different between the
#: event-horizon fast-forward and the forced per-cycle walk.
SCHEDULER_DIAGNOSTICS = ("ff_jumps", "ff_cycles_skipped")


@dataclass
class SimStats:
    """Mutable counters filled by the pipeline; reset at the warm-up mark."""

    cycles: int = 0
    committed: int = 0
    committed_per_thread: dict[int, int] = field(default_factory=dict)
    fetched: int = 0
    fetched_wrong_path: int = 0
    dispatched: int = 0
    issued: int = 0
    issued_wrong_path: int = 0
    squashes: int = 0
    squashed_instructions: int = 0
    branches: int = 0
    branch_mispredicts: int = 0

    # memory behaviour (right-path accesses only). "Misses" are primary
    # misses (line fetches); "merged" are secondary misses that coalesced
    # into an in-flight fill (they wait on memory but fetch no new line).
    loads_fp: int = 0
    loads_int: int = 0
    load_misses_fp: int = 0
    load_misses_int: int = 0
    load_merged_fp: int = 0
    load_merged_int: int = 0
    stores: int = 0
    store_misses: int = 0
    store_merged: int = 0

    # perceived latency accounting
    perceived_stall_fp: int = 0
    perceived_stall_int: int = 0

    # issue-slot breakdown: [unit][category] counts
    slot_counts: list[list[int]] = field(
        default_factory=lambda: [[0] * N_SLOT_CATEGORIES for _ in range(2)]
    )

    # decoupling diagnostics
    slip_samples: int = 0
    slip_total: int = 0

    # memory-system totals copied in by the runner at snapshot time
    bus_utilization: float = 0.0
    line_fills: int = 0
    writebacks: int = 0
    mshr_alloc_failures: int = 0
    #: structurally refused requests (no MSHR / pinned set) that retried
    blocked_requests: int = 0
    #: per-outer-level fill-stream traffic, in stack order:
    #: ``{level: {"hits": n, "misses": n, "writebacks": n}}``
    level_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    # prefetcher traffic (zero when the hierarchy has no prefetcher)
    prefetch_fills: int = 0
    prefetch_hits: int = 0
    prefetch_dropped: int = 0

    # multi-fidelity router annotations (repro.router): set only on
    # *screened* results returned by the hybrid backend — ``fidelity``
    # becomes ``"analytic"`` and ``ipc_lo``/``ipc_hi`` carry the
    # calibrated IPC error bar. Promoted cells pass through with these
    # at their defaults, exactly as a pure cycle run produces them, so
    # promotion never breaks byte-identity with the cycle backend.
    fidelity: str = ""
    ipc_lo: float = 0.0
    ipc_hi: float = 0.0

    # event-horizon scheduler diagnostics: how much of the region was
    # bulk-jumped instead of walked cycle-by-cycle. Deterministic for a
    # given machine state and fast-forward mode, but excluded from
    # differential comparisons (:meth:`comparable_dict`): the jump and
    # the walk must agree on every architectural counter above while
    # necessarily disagreeing on these two.
    ff_jumps: int = 0
    ff_cycles_skipped: int = 0

    # -- derived metrics ---------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def load_miss_ratio(self) -> float:
        """Fraction of loads that found their line absent (primary misses
        plus merged secondary misses — the paper's Figure 1-c metric, which
        therefore grows with latency and thread count)."""
        loads = self.loads_fp + self.loads_int
        misses = (
            self.load_misses_fp + self.load_misses_int
            + self.load_merged_fp + self.load_merged_int
        )
        return misses / loads if loads else 0.0

    @property
    def load_fill_ratio(self) -> float:
        """Line fetches per load (primary misses only — the bus-traffic
        view of the load miss stream)."""
        loads = self.loads_fp + self.loads_int
        return (self.load_misses_fp + self.load_misses_int) / loads if loads else 0.0

    @property
    def store_miss_ratio(self) -> float:
        misses = self.store_misses + self.store_merged
        return misses / self.stores if self.stores else 0.0

    @property
    def perceived_fp_latency(self) -> float:
        """Average perceived latency of FP load misses (Fig. 1-a, 4-a).

        The denominator includes merged (secondary) misses: they too made a
        consumer wait on memory, just without fetching a new line.
        """
        misses = self.load_misses_fp + self.load_merged_fp
        if not misses:
            return 0.0
        return self.perceived_stall_fp / misses

    @property
    def perceived_int_latency(self) -> float:
        """Average perceived latency of integer load misses (Fig. 1-b)."""
        misses = self.load_misses_int + self.load_merged_int
        if not misses:
            return 0.0
        return self.perceived_stall_int / misses

    @property
    def perceived_load_latency(self) -> float:
        """Average perceived latency over all load misses (Fig. 4-a)."""
        misses = (
            self.load_misses_fp + self.load_misses_int
            + self.load_merged_fp + self.load_merged_int
        )
        if not misses:
            return 0.0
        return (self.perceived_stall_fp + self.perceived_stall_int) / misses

    def level_miss_rate(self, level: str) -> float:
        """Miss rate of one outer level's fill stream (0.0 if unseen)."""
        row = self.level_stats.get(level)
        if not row:
            return 0.0
        seen = row.get("hits", 0) + row.get("misses", 0)
        return row.get("misses", 0) / seen if seen else 0.0

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of issued prefetches whose line served a demand
        access (useful prefetches / prefetch fills). Never exceeds 1:
        hits and fills describe the same measured window (the warm-up
        reset clears stale prefetched flags along with the counters)."""
        if not self.prefetch_fills:
            return 0.0
        return self.prefetch_hits / self.prefetch_fills

    @property
    def mispredict_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    @property
    def average_slip(self) -> float:
        """Mean AP-ahead-of-EP distance, in instructions, sampled at EP issue."""
        return self.slip_total / self.slip_samples if self.slip_samples else 0.0

    def slot_fractions(self, unit: Unit) -> dict[str, float]:
        """Issue-slot breakdown of one unit as fractions summing to 1."""
        row = self.slot_counts[int(unit)]
        total = sum(row)
        if not total:
            return {name: 0.0 for name in SLOT_NAMES}
        return {name: row[i] / total for i, name in enumerate(SLOT_NAMES)}

    def unit_utilization(self, unit: Unit) -> float:
        """Fraction of a unit's issue slots doing useful work."""
        row = self.slot_counts[int(unit)]
        total = sum(row)
        return row[SLOT_USEFUL] / total if total else 0.0

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        """Faithful JSON-safe dump of every counter field.

        Round-trips exactly through :meth:`from_dict` (JSON string keys are
        restored to ints), so results can cross process boundaries and live
        in the on-disk result cache without losing information.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "committed_per_thread":
                value = {str(k): v for k, v in value.items()}
            elif f.name == "slot_counts":
                value = [list(row) for row in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so newer
        readers tolerate older cache entries (and vice versa)."""
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        if "committed_per_thread" in kw:
            kw["committed_per_thread"] = {
                int(k): int(v) for k, v in (kw["committed_per_thread"] or {}).items()
            }
        if "slot_counts" in kw:
            kw["slot_counts"] = [list(row) for row in kw["slot_counts"]]
        return cls(**kw)

    def comparable_dict(self) -> dict:
        """:meth:`to_dict` minus the scheduler diagnostics.

        The differential suites compare a fast-forwarded run against the
        forced per-cycle walk: every architectural counter must be
        bit-identical, while ``ff_jumps``/``ff_cycles_skipped`` describe
        the scheduling itself and differ by construction.
        """
        out = self.to_dict()
        for key in SCHEDULER_DIAGNOSTICS:
            del out[key]
        return out

    def snapshot(self) -> dict:
        """Plain-dict summary used by reports and experiment tables."""
        out = {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "load_miss_ratio": self.load_miss_ratio,
            "store_miss_ratio": self.store_miss_ratio,
            "perceived_fp_latency": self.perceived_fp_latency,
            "perceived_int_latency": self.perceived_int_latency,
            "perceived_load_latency": self.perceived_load_latency,
            "bus_utilization": self.bus_utilization,
            "mispredict_rate": self.mispredict_rate,
            "average_slip": self.average_slip,
            "line_fills": self.line_fills,
            "writebacks": self.writebacks,
            "blocked_requests": self.blocked_requests,
            "mshr_alloc_failures": self.mshr_alloc_failures,
            "levels": {
                name: dict(row, miss_rate=self.level_miss_rate(name))
                for name, row in self.level_stats.items()
            },
            "prefetch": {
                "fills": self.prefetch_fills,
                "hits": self.prefetch_hits,
                "dropped": self.prefetch_dropped,
                "coverage": self.prefetch_coverage,
            },
            "ap_slots": self.slot_fractions(Unit.AP),
            "ep_slots": self.slot_fractions(Unit.EP),
            "ff": {
                "jumps": self.ff_jumps,
                "cycles_skipped": self.ff_cycles_skipped,
            },
        }
        if self.fidelity:
            out["fidelity"] = self.fidelity
            out["ipc_interval"] = [self.ipc_lo, self.ipc_hi]
        return out
