"""Simulation statistics and reporting."""

from repro.stats.counters import (
    N_SLOT_CATEGORIES,
    SLOT_IDLE,
    SLOT_NAMES,
    SLOT_OTHER,
    SLOT_USEFUL,
    SLOT_WAIT_FU,
    SLOT_WAIT_MEM,
    SLOT_WRONG_PATH,
    SimStats,
)
from repro.stats.report import format_run, format_table
from repro.stats.tracing import InstRecord, PipelineTrace, Tracer

__all__ = [
    "SimStats",
    "SLOT_USEFUL",
    "SLOT_WRONG_PATH",
    "SLOT_WAIT_MEM",
    "SLOT_WAIT_FU",
    "SLOT_OTHER",
    "SLOT_IDLE",
    "SLOT_NAMES",
    "N_SLOT_CATEGORIES",
    "format_run",
    "format_table",
    "Tracer",
    "PipelineTrace",
    "InstRecord",
]
