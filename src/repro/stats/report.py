"""Plain-text report formatting for simulation results.

Produces the same rows/series the paper's figures report, as aligned text
tables (this reproduction is terminal-first; no plotting dependencies).
"""

from __future__ import annotations

from repro.isa.opclass import Unit
from repro.stats.counters import SimStats


def format_run(stats: SimStats, label: str = "") -> str:
    """One-run summary block."""
    lines = []
    if label:
        lines.append(f"== {label} ==")
    lines.append(f"cycles               {stats.cycles}")
    if stats.ff_jumps:
        lines.append(
            f"ff skipped           {stats.ff_cycles_skipped} cycles in "
            f"{stats.ff_jumps} jumps "
            f"({stats.ff_cycles_skipped / stats.cycles * 100:.1f}% of cycles)"
        )
    lines.append(f"committed            {stats.committed}")
    lines.append(f"IPC                  {stats.ipc:.3f}")
    lines.append(f"load miss ratio      {stats.load_miss_ratio * 100:.1f}%")
    lines.append(f"store miss ratio     {stats.store_miss_ratio * 100:.1f}%")
    lines.append(f"perceived FP lat     {stats.perceived_fp_latency:.2f} cyc")
    lines.append(f"perceived INT lat    {stats.perceived_int_latency:.2f} cyc")
    lines.append(f"bus utilization      {stats.bus_utilization * 100:.1f}%")
    lines.append(
        f"memory traffic       {stats.line_fills} fills, "
        f"{stats.writebacks} writebacks, "
        f"{stats.blocked_requests} blocked, "
        f"{stats.mshr_alloc_failures} MSHR-full"
    )
    for name, row in stats.level_stats.items():
        line = (
            f"{name + ' level':<21}{row.get('hits', 0)} hits, "
            f"{row.get('misses', 0)} misses "
            f"({stats.level_miss_rate(name) * 100:.1f}% of fills), "
            f"{row.get('writebacks', 0)} writebacks"
        )
        if row.get("mshr_failures"):
            line += f", {row['mshr_failures']} MSHR-full"
        lines.append(line)
    if stats.prefetch_fills or stats.prefetch_dropped:
        lines.append(
            f"prefetch             {stats.prefetch_fills} fills, "
            f"{stats.prefetch_hits} useful "
            f"({stats.prefetch_coverage * 100:.0f}% coverage), "
            f"{stats.prefetch_dropped} dropped"
        )
    lines.append(f"mispredict rate      {stats.mispredict_rate * 100:.2f}%")
    lines.append(f"average slip         {stats.average_slip:.1f} instrs")
    for unit in (Unit.AP, Unit.EP):
        frac = stats.slot_fractions(unit)
        merged_wp_idle = frac["wrong_path"] + frac["idle"]
        lines.append(
            f"{unit.name} slots: useful {frac['useful'] * 100:5.1f}%  "
            f"wait-mem {frac['wait_mem'] * 100:5.1f}%  "
            f"wait-FU {frac['wait_fu'] * 100:5.1f}%  "
            f"other {frac['other'] * 100:5.1f}%  "
            f"wrong-path/idle {merged_wp_idle * 100:5.1f}%"
        )
    return "\n".join(lines)


def format_perf(doc: dict) -> str:
    """Render a ``repro-perf/1`` document (see ``experiments/perf.py``)."""
    rows = [
        [
            name,
            m["wall_s"],
            m["cycles"],
            m["cycles_per_s"],
            m["commits_per_s"],
            m["ff_cycles_skipped"],
        ]
        for name, m in sorted(doc.get("workloads", {}).items())
    ]
    title = "Simulator performance" + (" (--quick budgets)" if doc.get("quick") else "")
    out = [
        format_table(
            ["workload", "wall s", "sim cycles", "cycles/s", "commits/s",
             "ff skipped"],
            rows,
            title,
        )
    ]
    head = doc.get("headline")
    if head:
        out.append(
            f"headline {head['workload']}: fast-forward "
            f"{head['wall_s_fast_forward']:.2f}s vs per-cycle stepping "
            f"{head['wall_s_stepping']:.2f}s -> speedup {head['speedup']:.2f}x "
            f"(stats bit-identical: {head['bit_identical']})"
        )
    fs = doc.get("forked_sweep")
    if fs:
        out.append(
            f"forked sweep ({fs['n_cells']} warm-dominated cells): cold "
            f"{fs['wall_s_cold']:.2f}s vs forked {fs['wall_s_forked']:.2f}s "
            f"-> speedup {fs['speedup']:.2f}x, {fs['n_forked']} cells "
            f"forked, {fs['warmup_cycles_saved']} warm-up cycles saved "
            f"(per-cell results identical: {fs['identical']})"
        )
    for name, m in sorted(doc.get("workloads", {}).items()):
        if m.get("profile"):
            out.append(
                f"profile: {name}\n" + "\n".join(m["profile"])
            )
    return "\n\n".join(out)


def format_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned text table."""
    def fmt(v):
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(out)
