"""Plain-text report formatting for simulation results.

Produces the same rows/series the paper's figures report, as aligned text
tables (this reproduction is terminal-first; no plotting dependencies).
"""

from __future__ import annotations

from repro.isa.opclass import Unit
from repro.stats.counters import SimStats


def format_run(stats: SimStats, label: str = "") -> str:
    """One-run summary block."""
    lines = []
    if label:
        lines.append(f"== {label} ==")
    lines.append(f"cycles               {stats.cycles}")
    lines.append(f"committed            {stats.committed}")
    lines.append(f"IPC                  {stats.ipc:.3f}")
    lines.append(f"load miss ratio      {stats.load_miss_ratio * 100:.1f}%")
    lines.append(f"store miss ratio     {stats.store_miss_ratio * 100:.1f}%")
    lines.append(f"perceived FP lat     {stats.perceived_fp_latency:.2f} cyc")
    lines.append(f"perceived INT lat    {stats.perceived_int_latency:.2f} cyc")
    lines.append(f"bus utilization      {stats.bus_utilization * 100:.1f}%")
    lines.append(f"mispredict rate      {stats.mispredict_rate * 100:.2f}%")
    lines.append(f"average slip         {stats.average_slip:.1f} instrs")
    for unit in (Unit.AP, Unit.EP):
        frac = stats.slot_fractions(unit)
        merged_wp_idle = frac["wrong_path"] + frac["idle"]
        lines.append(
            f"{unit.name} slots: useful {frac['useful'] * 100:5.1f}%  "
            f"wait-mem {frac['wait_mem'] * 100:5.1f}%  "
            f"wait-FU {frac['wait_fu'] * 100:5.1f}%  "
            f"other {frac['other'] * 100:5.1f}%  "
            f"wrong-path/idle {merged_wp_idle * 100:5.1f}%"
        )
    return "\n".join(lines)


def format_table(
    headers: list[str],
    rows: list[list],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned text table."""
    def fmt(v):
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(out)
