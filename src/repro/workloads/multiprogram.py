"""Multiprogrammed workload construction (paper section 3).

The paper feeds the multithreaded simulator with independent threads, each
consisting of "a sequence of traces from all SpecFP95 programs, in a
different order for each thread". We reproduce that exactly: thread *t* runs
the ten benchmark traces rotated by *t*, concatenated, and wrapped
indefinitely. Traces are shared between threads (the pipeline salts data
addresses per thread so working sets do not alias), which keeps memory usage
independent of the thread count.
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.trace import Trace
from repro.workloads.profiles import BENCH_ORDER, BenchProfile, get_profile
from repro.workloads.synth import synthesize


@lru_cache(maxsize=128)
def profile_trace(profile: BenchProfile, n_instrs: int, seed: int = 0) -> Trace:
    """A (cached) synthetic trace for one resolved profile.

    Keyed by the frozen profile *value* (not its name), so two inline
    variants of the same benchmark never share a trace — the invariant
    :meth:`~repro.workloads.spec.WorkloadSpec.playlists` relies on.
    """
    return synthesize(profile, n_instrs, seed=seed)


def benchmark_trace(name: str, n_instrs: int, seed: int = 0) -> Trace:
    """A (cached) synthetic trace for one registered profile, by name."""
    return profile_trace(get_profile(name), n_instrs, seed)


def rotation(names: list[str], start: int) -> list[str]:
    """The benchmark order for one thread: ``names`` rotated by ``start``."""
    k = start % len(names)
    return names[k:] + names[:k]


def multiprogram(
    n_threads: int,
    seg_instrs: int = 20_000,
    seed: int = 0,
    names: list[str] | None = None,
) -> list[list[Trace]]:
    """Build one trace playlist per hardware context.

    Args:
        n_threads: number of hardware contexts.
        seg_instrs: trace segment length per benchmark (the paper used 100 M
            instructions per benchmark; we scale down — see DESIGN.md).
        seed: RNG seed forwarded to the synthesiser.
        names: benchmark subset (defaults to all ten, paper order).

    Returns:
        ``playlists[t]`` is the ordered list of traces thread ``t`` executes
        cyclically.
    """
    if names is None:
        names = BENCH_ORDER
    segments = {n: benchmark_trace(n, seg_instrs, seed) for n in names}
    return [
        [segments[n] for n in rotation(list(names), t)]
        for t in range(n_threads)
    ]


def single_program(
    name: str, n_instrs: int = 50_000, seed: int = 0
) -> list[list[Trace]]:
    """A single-threaded playlist running one benchmark (paper section 2)."""
    return [[benchmark_trace(name, n_instrs, seed)]]
