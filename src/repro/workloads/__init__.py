"""Synthetic SPEC FP95-like workloads (traces, profiles, multiprogramming)."""

from repro.workloads.multiprogram import (
    benchmark_trace,
    multiprogram,
    rotation,
    single_program,
)
from repro.workloads.profiles import BENCH_ORDER, SPECFP95, BenchProfile, get_profile
from repro.workloads.synth import KernelSynthesizer, synthesize
from repro.workloads.wrongpath import WrongPathGenerator

__all__ = [
    "BenchProfile",
    "SPECFP95",
    "BENCH_ORDER",
    "get_profile",
    "synthesize",
    "KernelSynthesizer",
    "multiprogram",
    "single_program",
    "benchmark_trace",
    "rotation",
    "WrongPathGenerator",
]
