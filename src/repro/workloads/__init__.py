"""Synthetic SPEC FP95-like workloads (traces, profiles, multiprogramming)
and the declarative workload API (:mod:`repro.workloads.spec`)."""

from repro.workloads.multiprogram import (
    benchmark_trace,
    multiprogram,
    profile_trace,
    rotation,
    single_program,
)
from repro.workloads.profiles import (
    BENCH_ORDER,
    SCENARIOS,
    SPECFP95,
    BenchProfile,
    get_profile,
    load_profiles,
    profile_names,
    profile_provenance,
    register_profile,
)
from repro.workloads.spec import (
    SEG_INSTRS,
    WorkloadEntry,
    WorkloadSpec,
    load_workload,
    preset_names,
    preset_provenance,
    register_preset,
    resolve_workload,
    workload_preset,
)
from repro.workloads.synth import KernelSynthesizer, synthesize
from repro.workloads.wrongpath import WrongPathGenerator

__all__ = [
    "BenchProfile",
    "SPECFP95",
    "SCENARIOS",
    "BENCH_ORDER",
    "SEG_INSTRS",
    "WorkloadEntry",
    "WorkloadSpec",
    "get_profile",
    "register_profile",
    "load_profiles",
    "profile_names",
    "profile_provenance",
    "load_workload",
    "resolve_workload",
    "workload_preset",
    "register_preset",
    "preset_names",
    "preset_provenance",
    "synthesize",
    "KernelSynthesizer",
    "multiprogram",
    "single_program",
    "benchmark_trace",
    "profile_trace",
    "rotation",
    "WrongPathGenerator",
]
