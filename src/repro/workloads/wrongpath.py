"""Wrong-path instruction synthesis.

Trace-driven simulators only know the correct execution path. Like the
paper's simulator, ours models control speculation: after a mispredicted
branch is fetched, the thread keeps fetching *somewhere* until the branch
resolves in the AP. This module supplies that "somewhere": a deterministic
stream of plausible instructions whose loads genuinely access the cache
(occupying ports, MSHRs and bus bandwidth and polluting lines) so that
speculation has its real costs.

Wrong-path streams contain no branches (the mispredicted branch already pins
the recovery point and the paper's AP permits only four unresolved branches)
and no stores never reach memory anyway since wrong-path instructions are
squashed before commit.
"""

from __future__ import annotations

import random

from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.workloads.synth import HOT_BASE

_WP_PC_BASE = 0x7F0000
_INST_BYTES = 4


class WrongPathGenerator:
    """Per-thread generator of synthetic wrong-path instructions."""

    #: op mix of the wrong-path stream (load-heavy: mispredicted paths in FP
    #: codes usually fall into an adjacent loop body)
    _MIX = (
        (OpClass.LOAD_F, 0.25),
        (OpClass.IALU, 0.35),
        (OpClass.FALU, 0.35),
        (OpClass.LOAD_I, 0.05),
    )

    def __init__(self, seed: int, data_base: int = HOT_BASE,
                 data_span: int = 2 * 1024):
        self.rng = random.Random(seed)
        self.data_base = data_base
        self.data_span = data_span
        self._pc = _WP_PC_BASE

    def next_block(self, n: int) -> list[StaticInst]:
        """Produce the next ``n`` wrong-path instructions."""
        rng = self.rng
        out = []
        for _ in range(n):
            x = rng.random()
            acc = 0.0
            op = OpClass.IALU
            for candidate, w in self._MIX:
                acc += w
                if x < acc:
                    op = candidate
                    break
            pc = self._pc
            self._pc += _INST_BYTES
            if self._pc > _WP_PC_BASE + 0x4000:
                self._pc = _WP_PC_BASE
            if op == OpClass.LOAD_F:
                inst = StaticInst(
                    pc, op, dest=32 + 8 + rng.randrange(16),
                    srcs=(1,),
                    addr=self.data_base + (rng.randrange(self.data_span) & ~7),
                )
            elif op == OpClass.LOAD_I:
                inst = StaticInst(
                    pc, op, dest=18 + rng.randrange(6), srcs=(2,),
                    addr=self.data_base + (rng.randrange(self.data_span) & ~7),
                )
            elif op == OpClass.FALU:
                d = 32 + rng.randrange(8)
                inst = StaticInst(pc, op, dest=d, srcs=(d, 32 + 8 + rng.randrange(16)))
            else:
                d = 18 + rng.randrange(6)
                inst = StaticInst(pc, op, dest=d, srcs=(d,))
            out.append(inst)
        return out
