"""Wrong-path instruction synthesis.

Trace-driven simulators only know the correct execution path. Like the
paper's simulator, ours models control speculation: after a mispredicted
branch is fetched, the thread keeps fetching *somewhere* until the branch
resolves in the AP. This module supplies that "somewhere": a deterministic
stream of plausible instructions whose loads genuinely access the cache
(occupying ports, MSHRs and bus bandwidth and polluting lines) so that
speculation has its real costs.

Wrong-path streams contain no branches (the mispredicted branch already pins
the recovery point and the paper's AP permits only four unresolved branches)
and no stores never reach memory anyway since wrong-path instructions are
squashed before commit.

The generator pre-builds one full PC-wrap period (0x4000 bytes = 4096
instructions) and cycles it.  Besides removing per-instruction RNG and
allocation cost from the fetch hot path, the cyclic pool is the more
faithful model: a real wrong path falls into *adjacent, already-existing*
code, so re-encountering the same instructions (and the same load
addresses) on later mispredictions is exactly what happens in hardware —
an endless stream of fresh random instructions is not.

The pool is a *pure function of the seed*: :meth:`_build_pool` draws from
a fresh ``random.Random(seed)`` every time, so the generator's complete
dynamic state is ``(seed, _pos)``.  Machine snapshots rely on this —
pickling drops the (identically rebuildable) pool and keeps only the
cursor, and a restored generator regenerates the exact same stream.
"""

from __future__ import annotations

import random

from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.workloads.synth import HOT_BASE

_WP_PC_BASE = 0x7F0000
_INST_BYTES = 4


class WrongPathGenerator:
    """Per-thread generator of synthetic wrong-path instructions."""

    #: op mix of the wrong-path stream (load-heavy: mispredicted paths in FP
    #: codes usually fall into an adjacent loop body)
    _MIX = (
        (OpClass.LOAD_F, 0.25),
        (OpClass.IALU, 0.35),
        (OpClass.FALU, 0.35),
        (OpClass.LOAD_I, 0.05),
    )

    #: instructions per PC-wrap period: the pool the stream cycles through
    _POOL_SIZE = 0x4000 // _INST_BYTES

    def __init__(self, seed: int, data_base: int = HOT_BASE,
                 data_span: int = 2 * 1024):
        self.seed = seed
        self.data_base = data_base
        self.data_span = data_span
        self._pool: list[StaticInst] | None = None
        self._pos = 0

    def __getstate__(self) -> dict:
        """Snapshot support: the pool is rebuilt from the seed on demand,
        so only the seed, the layout knobs and the cursor are state."""
        return {
            "seed": self.seed,
            "data_base": self.data_base,
            "data_span": self.data_span,
            "_pos": self._pos,
        }

    def __setstate__(self, state: dict) -> None:
        self.seed = state["seed"]
        self.data_base = state["data_base"]
        self.data_span = state["data_span"]
        self._pool = None
        self._pos = state["_pos"]

    def _build_pool(self) -> list[StaticInst]:
        """Synthesise one PC-wrap period of wrong-path instructions.

        Deterministic in ``self.seed`` alone: the RNG is created fresh
        here, so a generator restored from a snapshot (which carries no
        pool) rebuilds byte-for-byte the pool it was using before.
        """
        rng = random.Random(self.seed)
        pool = []
        pc = _WP_PC_BASE
        for _ in range(self._POOL_SIZE):
            x = rng.random()
            acc = 0.0
            op = OpClass.IALU
            for candidate, w in self._MIX:
                acc += w
                if x < acc:
                    op = candidate
                    break
            if op == OpClass.LOAD_F:
                inst = StaticInst(
                    pc, op, dest=32 + 8 + rng.randrange(16),
                    srcs=(1,),
                    addr=self.data_base + (rng.randrange(self.data_span) & ~7),
                )
            elif op == OpClass.LOAD_I:
                inst = StaticInst(
                    pc, op, dest=18 + rng.randrange(6), srcs=(2,),
                    addr=self.data_base + (rng.randrange(self.data_span) & ~7),
                )
            elif op == OpClass.FALU:
                d = 32 + rng.randrange(8)
                inst = StaticInst(pc, op, dest=d, srcs=(d, 32 + 8 + rng.randrange(16)))
            else:
                d = 18 + rng.randrange(6)
                inst = StaticInst(pc, op, dest=d, srcs=(d,))
            pool.append(inst)
            pc += _INST_BYTES
        return pool

    def next_block(self, n: int) -> list[StaticInst]:
        """Produce the next ``n`` wrong-path instructions (cyclic pool)."""
        pool = self._pool
        if pool is None:
            pool = self._pool = self._build_pool()
        size = self._POOL_SIZE
        pos = self._pos
        end = pos + n
        if end <= size:
            out = pool[pos:end]
        else:
            out = pool[pos:]
            whole, rem = divmod(end - size, size)
            out += pool * whole + pool[:rem]
        self._pos = end % size
        return out
