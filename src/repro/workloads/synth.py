"""Synthetic trace generation from benchmark profiles.

The generator emits the *executed path* of a software-pipelined FP loop nest,
the dominant code shape of SPEC FP95 inner loops after compilation for the
Alpha. One inner-loop iteration contains, in schedule order:

1. integer overhead: induction-variable updates (a single strength-reduced
   index feeds every stream, as compilers do), loop counter;
2. integer *index loads* for gather references, software-pipelined
   ``index_dist`` iterations ahead of their use;
3. FP loads: each static load slot has a fixed role — streaming, hot-region
   or gather — so the static code structure repeats every iteration while
   effective addresses evolve;
4. occasional ITOF moves (AP feeds the EP a scalar, behaves like a load);
5. FP computation: ``n_chains`` interleaved independent dependence chains
   consuming the loaded values plus one carried reduction op — this fixes
   the EP ILP seen by the in-order issue stage;
6. loss-of-decoupling events (``FTOI`` + dependent address computation +
   load), the mechanism that makes ``fpppp`` decouple badly;
7. FP stores of chain results;
8. the loop-back branch (taken for ``iters-1`` executions, then not taken
   once — the misprediction source), plus optional data-dependent branches.

Addresses are emitted un-salted; the pipeline adds a per-thread, region-aware
address salt so one synthesised trace can be shared by many hardware contexts
(the paper runs a different benchmark rotation per thread; working sets must
not alias).

Set-placement model ("folded streams")
--------------------------------------

The L1 is 64 KB direct-mapped, so an address's ``mod 64K`` residue — its
cache *set* — decides what it conflicts with. Real multi-MB arrays sweep
every set; in a synthetic workload that makes every region's hit rate depend
on every other region's sweep rate, which is impossible to calibrate. We
instead *fold* each streaming region into a fixed 4 KB set window: the
low bits cycle within the window while a higher "fold" component keeps
changing the tag, so the stream keeps its compulsory-miss behaviour (one
line fetch per 32 bytes advanced) but only ever occupies its own sets.

Zone map of the 64 KB set space (shared by all benchmarks, which keeps the
resident regions warm across a thread's benchmark switches):

====================  =======================================================
sets                  contents
====================  =======================================================
``[ 0 K, 16 K)``      load-stream windows (4 KB per static stream slot)
``[16 K, 32 K)``      gather target tables (resident, <= 16 KB)
``[32 K, 36 K)``      gather index arrays (folded stream or resident)
``[36 K, 52 K)``      store targets (4 KB per thread via the store salt)
``[52 K, 64 K)``      hot regions (per-thread salt tiles four skew zones)
====================  =======================================================

Each zone also lives in its own 64 MB address space, so regions never share
cache *lines* or salts, only (intentionally) cache sets.
"""

from __future__ import annotations

import random
import zlib

from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass
from repro.isa.trace import Trace
from repro.workloads.profiles import BenchProfile

# Integer register allocation (flat ids 0..31).
R_INDEX = 1        # strength-reduced induction index (updated every iteration)
R_COUNT = 9        # loop counter
R_IDXPTR = 2       # index-array pointer for gather references
R_RING0 = 10       # first gather index ring register (r10..r17 reserved)
R_RING_LAST = 17
R_SCRATCH0 = 18    # scratch integer chain (r18..r23)
R_NSCRATCH = 6
R_LOD_DEST = 24    # FTOI destination
R_LOD_ADDR = 25    # address derived from an FTOI result
R_STOREPTR = 26

# FP register allocation (architectural f0..f31, flat ids 32..63).
F_BASE = 32
F_ACC0 = 0         # chain accumulators f0..f7
F_LOAD0 = 8        # loaded values f8..f23 (round robin)
F_NLOAD = 16
F_ITOF = 24        # ITOF destination
F_RED = 30         # cross-iteration reduction accumulator

_INST_BYTES = 4

# Layout constants (see module docstring).
_SET_SPACE = 64 * 1024
STREAM_SPACE = 0x10000000              # hi bits 4..19 (one space per slot)
GATHER_BASE = 0x50000000 + 16 * 1024   # hi bits 20, set zone [16K, 32K)
INDEX_BASE = 0x54000000 + 32 * 1024    # hi bits 21, set zone [32K, 36K)
STORE_BASE = 0x58000000 + 36 * 1024    # hi bits 22, set zone [36K, 52K)
HOT_BASE = 0x5C000000 + 52 * 1024      # hi bits 23, set zone [52K, 64K)

#: set-window width of a folded stream
FOLD_WINDOW = 4 * 1024
#: a region is "resident" (reuses tags) up to this size; larger ones fold
RESIDENT_CAP = 16 * 1024
#: gather tables are capped to one per-thread tile of the gather zone
GATHER_CAP = 4 * 1024


def fold(base: int, off: int, window: int = FOLD_WINDOW) -> int:
    """Map stream offset ``off`` into a bounded set window.

    The ``off % window`` component cycles through the window's sets; the
    fold component advances the tag every ``window`` bytes (staying inside
    the region's 64 MB address space), so consecutive lines are always
    cold — a compulsory-miss stream confined to its own sets.
    """
    return base + (off % window) + ((off // window) % 512) * _SET_SPACE


def _fr(n: int) -> int:
    """Flat id of FP register f{n}."""
    return F_BASE + n


class _LoadSlot:
    """Static role of one FP load position in the loop body."""

    __slots__ = ("role", "window", "ring_reg", "fdest")

    def __init__(self, role: str, window: int, ring_reg: int, fdest: int):
        self.role = role          # "stream" | "hot" | "gather"
        self.window = window      # stream only: which 4 KB window/subarray
        self.ring_reg = ring_reg  # gather only: ring register base
        self.fdest = fdest


def synth_seed(name: str, seed: int) -> int:
    """The RNG seed a synthesizer derives for ``(benchmark, seed)``.

    zlib.crc32, not ``hash()``: str hashing is salted per process, which
    would make traces (and every simulation result) differ between
    invocations and across scheduler worker processes.  The checkpoint
    subsystem leans on the same property — snapshots exclude trace
    playlists entirely and re-synthesize them at restore time, which is
    only sound because this derivation is stable across processes.
    """
    return (zlib.crc32(name.encode("utf-8")) ^ (seed * 0x9E3779B1)) & 0x7FFFFFFF


class KernelSynthesizer:
    """Emit a synthetic trace for one benchmark profile.

    Args:
        profile: the benchmark parameter set.
        seed: RNG seed; traces are fully deterministic in (profile, seed).
    """

    def __init__(self, profile: BenchProfile, seed: int = 0):
        self.profile = profile
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self.rng = random.Random(synth_seed(profile.name, seed))
        self.code_base = 0x400000 + (name_hash % 64) * 0x10000
        # gather index arrays: resident codes keep them inside the 4 KB
        # index zone; others stream (folded) at the benchmark's scale
        if profile.ws_bytes >= RESIDENT_CAP:
            self.index_ws = profile.ws_bytes        # folded stream
        else:
            self.index_ws = min(profile.ws_bytes, FOLD_WINDOW)  # resident
        self.gather_ws = min(profile.gather_ws_bytes, GATHER_CAP)
        self._plan_body()

    # -- static body planning -------------------------------------------------

    def _plan_body(self) -> None:
        p = self.profile
        self.n_loads = p.n_streams * p.unroll
        ring_len = p.index_dist + 1
        max_gather = max(0, (R_RING_LAST - R_RING0 + 1) // ring_len)
        wanted = int(round(p.gather_frac * self.n_loads))
        if p.gather_frac > 0:
            wanted = max(1, wanted)
        self.n_gather = min(wanted, max_gather)
        self.ring_len = ring_len
        n_rest = self.n_loads - self.n_gather
        self.n_hot = min(int(round(p.hot_frac * self.n_loads)), n_rest)
        self.n_falu = max(1, int(round(self.n_loads * p.fp_per_load)))
        self.n_stores = int(round(self.n_loads * p.store_per_load))
        body_est = (
            3 + self.n_gather + self.n_loads + self.n_falu + self.n_stores + 2
        )
        self.n_extra_ialu = int(round(p.extra_ialu_per_load * self.n_loads))
        self.n_lod = 1 if p.lod_rate > 0 else 0
        self.n_rand_branch = int(round(p.rand_branch_frac * body_est))

        # Assign static roles: first the hot slots, then streaming slots
        # (each with its own 4 KB window = its own subarray), gathers last
        # (their indices are loaded earlier in the body).
        slots: list[_LoadSlot] = []
        k = 0
        n_stream = self.n_loads - self.n_gather - self.n_hot
        for i in range(self.n_hot):
            slots.append(_LoadSlot("hot", -1, -1, _fr(F_LOAD0 + (k % F_NLOAD))))
            k += 1
        for w in range(n_stream):
            slots.append(_LoadSlot("stream", w, -1, _fr(F_LOAD0 + (k % F_NLOAD))))
            k += 1
        for g in range(self.n_gather):
            ring_reg = R_RING0 + g * self.ring_len
            slots.append(
                _LoadSlot("gather", -1, ring_reg, _fr(F_LOAD0 + (k % F_NLOAD)))
            )
            k += 1
        self.load_slots = slots
        #: address-space base per stream window
        self.stream_base = [
            STREAM_SPACE + w * (1 << 26) + w * FOLD_WINDOW
            for w in range(max(1, n_stream))
        ]
        #: whether streaming regions reuse tags (resident) or fold
        self.stream_resident = p.ws_bytes < RESIDENT_CAP

    # -- emission --------------------------------------------------------------

    def synthesize(self, n_instrs: int) -> Trace:
        """Generate a trace of at least ``n_instrs`` instructions.

        The trace ends at an iteration boundary, so its length can exceed
        ``n_instrs`` by at most one loop body.
        """
        out: list[StaticInst] = []
        it = 0
        while len(out) < n_instrs:
            self._emit_iteration(it, out)
            if (it + 1) % self.profile.iters == 0:
                self._emit_outer_block(out)
            it += 1
        return Trace(out, name=self.profile.name)

    def _stream_addr(self, window: int, it: int) -> int:
        p = self.profile
        off = it * p.elem_bytes
        base = self.stream_base[window]
        if self.stream_resident:
            return base + (off % p.ws_bytes) & ~7
        return fold(base, off & ~7)

    def _emit_iteration(self, it: int, out: list[StaticInst]) -> None:
        p = self.profile
        rng = self.rng
        pc = self.code_base
        add = out.append

        def emit(op, dest=None, srcs=(), addr=0, taken=False, target=0):
            nonlocal pc
            add(StaticInst(pc, op, dest, srcs, addr, taken, target))
            pc += _INST_BYTES

        # 1. induction updates
        emit(OpClass.IALU, dest=R_INDEX, srcs=(R_INDEX,))
        emit(OpClass.IALU, dest=R_COUNT, srcs=(R_COUNT,))
        if self.n_gather:
            emit(OpClass.IALU, dest=R_IDXPTR, srcs=(R_IDXPTR,))

        # 2. software-pipelined index loads for gathers (used index_dist
        #    index-iterations from now; sparse index streams only reload
        #    every index_every iterations)
        idx_it = it // p.index_every
        if it % p.index_every == 0:
            for g in range(self.n_gather):
                ring_reg = R_RING0 + g * self.ring_len + (idx_it % self.ring_len)
                idx_off = (idx_it * self.n_gather + g) * 8
                if self.index_ws <= FOLD_WINDOW:
                    idx_addr = INDEX_BASE + (idx_off % self.index_ws)
                else:
                    idx_addr = fold(INDEX_BASE, idx_off)
                emit(OpClass.LOAD_I, dest=ring_reg, srcs=(R_IDXPTR,), addr=idx_addr)

        # 3. FP loads. Loss-of-decoupling events are stochastic: slip
        # collapses when one fires and rebuilds in between, so the average
        # perceived latency reflects the LOD *rate* (fpppp hides ~90% of the
        # latency in the paper despite decoupling badly).
        body_len = 3 + self.n_gather + self.n_loads + self.n_falu + self.n_stores + 2
        do_lod = self.n_lod > 0 and rng.random() < self.profile.lod_rate * body_len
        loaded: list[int] = []
        lod_pending = 1 if do_lod else 0
        for k, slot in enumerate(self.load_slots):
            if slot.role == "stream":
                addr = self._stream_addr(slot.window, it)
                srcs: tuple[int, ...] = (R_INDEX,)
            elif slot.role == "hot":
                # skewed reuse: most hot accesses land in the first quarter
                # of the region, keeping their reuse distance short
                if rng.random() < p.hot_skew:
                    span = max(8, p.hot_bytes // 4)
                else:
                    span = p.hot_bytes
                addr = HOT_BASE + (rng.randrange(0, span) & ~7)
                srcs = (R_INDEX,)
            else:  # gather
                use_it = idx_it - p.index_dist
                ring_reg = slot.ring_reg + (use_it % self.ring_len)
                addr = GATHER_BASE + (rng.randrange(0, self.gather_ws) & ~7)
                srcs = (ring_reg,)
            # A pending loss-of-decoupling event redirects one load's address
            # dependence through the FTOI result.
            if lod_pending and slot.role != "gather" and k >= len(self.load_slots) // 2:
                srcs = (R_LOD_ADDR,)
                lod_pending -= 1
            emit(OpClass.LOAD_F, dest=slot.fdest, srcs=srcs, addr=addr)
            loaded.append(slot.fdest)

        # 4. occasional ITOF (AP feeds EP a scalar)
        do_itof = rng.random() < p.itof_rate * body_len
        if do_itof:
            emit(OpClass.ITOF, dest=_fr(F_ITOF), srcs=(R_COUNT,))

        # 5. FP chains, interleaved round-robin across n_chains independent
        #    intra-iteration chains (each restarts from loaded values, so the
        #    in-order EP sees n_chains-way ILP), plus one carried reduction
        #    op at the end (the cross-iteration serial floor).
        chain_len = [0] * p.n_chains
        nxt = 0
        n_independent = max(1, self.n_falu - 1)
        for j in range(n_independent):
            c = j % p.n_chains
            acc = _fr(F_ACC0 + c)
            if chain_len[c] == 0:
                srcs = (loaded[nxt % len(loaded)], loaded[(nxt + 1) % len(loaded)])
            else:
                srcs = (acc, loaded[nxt % len(loaded)])
            nxt += 1
            emit(OpClass.FALU, dest=acc, srcs=srcs)
            chain_len[c] += 1
            if chain_len[c] >= p.chain_depth:
                chain_len[c] = 0
        if self.n_falu > 1:
            red = _fr(F_RED)
            emit(OpClass.FALU, dest=red, srcs=(red, _fr(F_ACC0)))
        if do_itof:
            acc = _fr(F_ACC0 + (p.n_chains - 1))
            emit(OpClass.FALU, dest=acc, srcs=(acc, _fr(F_ITOF)))

        # 6. loss-of-decoupling events: FTOI into an address computation
        if do_lod:
            acc = _fr(F_ACC0 + rng.randrange(p.n_chains))
            emit(OpClass.FTOI, dest=R_LOD_DEST, srcs=(acc,))
            emit(OpClass.IALU, dest=R_LOD_ADDR, srcs=(R_LOD_DEST,))

        # 7. extra integer work (independent scratch chains)
        for x in range(self.n_extra_ialu):
            r = R_SCRATCH0 + (x % R_NSCRATCH)
            emit(OpClass.IALU, dest=r, srcs=(r,))

        # 8. FP stores of chain results
        for j in range(self.n_stores):
            off = (it * self.n_stores + j) * 8
            if p.store_ws_bytes <= RESIDENT_CAP:
                addr = STORE_BASE + (off % p.store_ws_bytes)
            else:
                addr = fold(STORE_BASE, off)
            acc = _fr(F_ACC0 + (j % p.n_chains))
            emit(OpClass.STORE_F, srcs=(R_INDEX, acc), addr=addr)
        if it % 16 == 15:
            # occasional integer spill into the top of the store window
            emit(
                OpClass.STORE_I, srcs=(R_INDEX, R_COUNT),
                addr=STORE_BASE + 3072 + ((it * 8) % 1024),
            )

        # 9. data-dependent branches (taken p=.5; poorly predictable)
        for b in range(self.n_rand_branch):
            emit(
                OpClass.BRANCH, srcs=(R_SCRATCH0 + (b % R_NSCRATCH),),
                taken=rng.random() < 0.5, target=pc + 2 * _INST_BYTES,
            )

        # 10. loop-back branch: taken until the trip count expires
        last = (it + 1) % p.iters == 0
        emit(
            OpClass.BRANCH, srcs=(R_COUNT,), taken=not last,
            target=self.code_base,
        )

    def _emit_outer_block(self, out: list[StaticInst]) -> None:
        """Outer-loop overhead after an inner-loop exit: pointer rebasing and
        an always-taken branch back to the inner loop."""
        pc = self.code_base + 0x2000
        add = out.append
        for r in (R_INDEX, R_IDXPTR, R_STOREPTR, R_COUNT):
            add(StaticInst(pc, OpClass.IALU, dest=r, srcs=(r,)))
            pc += _INST_BYTES
        add(
            StaticInst(
                pc, OpClass.BRANCH, srcs=(R_COUNT,), taken=True,
                target=self.code_base,
            )
        )


def synthesize(profile: BenchProfile, n_instrs: int, seed: int = 0) -> Trace:
    """Generate a synthetic trace of ``>= n_instrs`` instructions."""
    return KernelSynthesizer(profile, seed).synthesize(n_instrs)
