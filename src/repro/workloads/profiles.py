"""SPEC FP95 benchmark profiles.

The paper drives its simulator with ATOM-instrumented DEC Alpha traces of the
ten SPEC FP95 programs (100 M instructions each). Those binaries, inputs and
the ATOM tool are unavailable, so this reproduction substitutes a *profile*
per benchmark: a parameter set for the synthetic kernel generator
(:mod:`repro.workloads.synth`) that recreates the characteristics the paper's
results actually depend on:

* the AP/EP instruction mix (how the stream splits between the units),
* the L1 miss behaviour of the address stream (working-set size, stride,
  hot-region reuse, gather randomness),
* the register dependence structure (FP chain depth/width → EP ILP;
  loss-of-decoupling FTOI events → slip ceiling),
* the static scheduling distance of integer loads (→ perceived int-load
  latency, Fig. 1-b),
* branch frequency and predictability.

Calibration targets are taken from the paper's own figures: Fig. 1-c miss
ratios, Fig. 1-a/1-b perceived latencies and the qualitative classification
in section 2 (good decouplers: tomcatv, swim, mgrid, applu, apsi; low miss
ratios: fpppp, turb3d; degraded: su2cor, wave5, hydro2d).

Beyond the paper's rotation the module keeps an **open profile registry**:
the ten SPEC FP95 profiles are registered as built-ins, scenario profiles
(pointer chasing, L1 thrashing, pure streaming) ship alongside them, and
users can register their own — programmatically via
:func:`register_profile` or from JSON/TOML files via :func:`load_profiles`
— and reference them from any :class:`~repro.workloads.spec.WorkloadSpec`.
Every registered profile records its *provenance* (``built-in``,
``built-in scenario``, or the file/py source that registered it), which
``repro-sim workloads`` displays.
"""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, fields, replace

KB = 1024
MB = 1024 * KB


def did_you_mean(name: str, candidates) -> str:
    """``" — did you mean 'x'?"`` for the closest candidate, or ``""``."""
    close = difflib.get_close_matches(str(name), list(candidates), n=1)
    return f" — did you mean {close[0]!r}?" if close else ""


@dataclass(frozen=True)
class BenchProfile:
    """Parameter set for the synthetic kernel generator.

    Attributes are grouped by the behaviour they control; see module
    docstring for the mapping to paper results.
    """

    name: str

    # -- loop / control structure ------------------------------------------
    #: loads issued per stream per iteration (loop unrolling degree)
    unroll: int = 2
    #: inner-loop trip count; the loop-exit branch mispredicts ~1/iters
    iters: int = 64
    #: fraction of extra data-dependent branches (taken with p=.5)
    rand_branch_frac: float = 0.0

    # -- memory behaviour ---------------------------------------------------
    #: number of distinct streaming FP arrays read per iteration
    n_streams: int = 3
    #: element stride in bytes within each stream (8 = dense, 32 = line-sized)
    elem_bytes: int = 8
    #: streaming working set per array; pointers wrap at this size
    ws_bytes: int = 4 * MB
    #: fraction of FP loads that hit a small per-thread hot region
    hot_frac: float = 0.4
    #: hot region size (fits L1 alone; thrashes when many threads share L1)
    hot_bytes: int = 4 * KB
    #: hot accesses are skewed: this fraction lands in the first quarter of
    #: the region (short reuse distance survives streaming-front evictions)
    hot_skew: float = 0.92
    #: store-target working set (resident for most codes; the streaming
    #: stencil codes write-stream through multi-MB arrays instead)
    store_ws_bytes: int = 4 * KB
    #: fraction of FP loads whose address depends on an integer index load
    gather_frac: float = 0.0
    #: scheduling distance (iterations) between an index load and its use
    index_dist: int = 2
    #: index loads happen every Nth iteration (sparse index streams reuse
    #: the previous index in between)
    index_every: int = 1
    #: working set of gather targets (randomly addressed)
    gather_ws_bytes: int = 4 * MB

    # -- computation structure ----------------------------------------------
    #: FP ALU operations per FP load
    fp_per_load: float = 1.4
    #: dependent FALU ops per chain (serial latency = chain_depth * ep_lat)
    chain_depth: int = 2
    #: independent interleaved chains (EP ILP available to in-order issue)
    n_chains: int = 4
    #: FP stores per FP load
    store_per_load: float = 0.30
    #: integer ALU ops per FP load beyond pointer/counter updates
    extra_ialu_per_load: float = 0.15

    # -- cross-unit coupling --------------------------------------------------
    #: FTOI loss-of-decoupling events per instruction (AP waits on EP)
    lod_rate: float = 0.0
    #: ITOF moves per instruction (AP feeds EP scalars; behaves like a load)
    itof_rate: float = 0.004

    def with_overrides(self, **kwargs) -> "BenchProfile":
        """Return a copy with selected fields replaced.

        Unknown field names raise a :class:`ValueError` with a
        closest-match suggestion instead of a bare ``TypeError``.
        """
        known = {f.name for f in fields(self)}
        for key in kwargs:
            if key not in known:
                raise ValueError(
                    f"unknown profile field {key!r}"
                    f"{did_you_mean(key, known)}; fields: "
                    f"{', '.join(sorted(known))}"
                )
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-safe field mapping; round-trips via :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "BenchProfile":
        """Build a profile from a field mapping.

        Accepts an optional ``base`` key naming a registered profile whose
        values seed the unspecified fields (how workload/profile files
        derive variants without repeating every knob).
        """
        d = dict(d)
        base_name = d.pop("base", None)
        if base_name is not None:
            base = get_profile(base_name)
            if "name" not in d:
                raise ValueError(
                    f"profile derived from base {base_name!r} needs its "
                    "own 'name'"
                )
            name = d.pop("name")
            return base.with_overrides(**d).with_overrides(name=name)
        known = {f.name for f in fields(cls)}
        for key in d:
            if key not in known:
                raise ValueError(
                    f"unknown profile field {key!r}{did_you_mean(key, known)}"
                )
        return cls(**d)


def _p(name: str, **kwargs) -> BenchProfile:
    return BenchProfile(name=name, **kwargs)


#: The ten SPEC FP95 profiles, in the paper's figure order.
#:
#: Classification recap (paper section 2):
#:   - hide latency well:   tomcatv, swim, mgrid, applu, apsi
#:   - low miss ratio:      fpppp, turb3d
#:   - degraded:            su2cor, wave5, hydro2d
#:   - large int-load stalls: fpppp, su2cor, turb3d, wave5
SPECFP95: dict[str, BenchProfile] = {
    # Vectorised mesh generation: long dense streams, perfect decoupling,
    # significant miss ratio, write-streams its result meshes.
    "tomcatv": _p(
        "tomcatv", n_streams=4, unroll=2, elem_bytes=8, ws_bytes=8 * MB,
        hot_frac=0.75, hot_bytes=4 * KB, store_ws_bytes=4 * MB,
        fp_per_load=1.4, chain_depth=2, n_chains=4, store_per_load=0.30,
        iters=100,
    ),
    # Shallow-water stencil: highest miss ratio (wide stride defeats spatial
    # locality), still decouples perfectly; the bandwidth hog of the suite.
    "swim": _p(
        "swim", n_streams=4, unroll=2, elem_bytes=16, ws_bytes=8 * MB,
        hot_frac=0.70, hot_bytes=4 * KB, store_ws_bytes=8 * MB,
        fp_per_load=1.3, chain_depth=2, n_chains=4, store_per_load=0.30,
        iters=128,
    ),
    # Quantum chromodynamics: gather through index arrays -> integer loads on
    # the AP critical path (large perceived int-load latency).
    "su2cor": _p(
        "su2cor", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.64, hot_bytes=4 * KB, gather_frac=0.06, index_dist=1,
        gather_ws_bytes=32 * KB, fp_per_load=1.5, chain_depth=2, n_chains=4,
        store_per_load=0.25, iters=80,
    ),
    # Navier-Stokes: dense streams, decent decoupling, high miss ratio,
    # write-streams as it sweeps.
    "hydro2d": _p(
        "hydro2d", n_streams=4, unroll=2, elem_bytes=8, ws_bytes=8 * MB,
        hot_frac=0.60, hot_bytes=4 * KB, gather_frac=0.03, index_dist=2,
        gather_ws_bytes=32 * KB, store_ws_bytes=4 * MB, fp_per_load=1.4, chain_depth=2, n_chains=4,
        store_per_load=0.35, iters=96,
    ),
    # Multigrid: mostly-resident fine grids, dense sweeps, excellent reuse.
    "mgrid": _p(
        "mgrid", n_streams=3, unroll=3, elem_bytes=8, ws_bytes=2 * MB,
        hot_frac=0.82, hot_bytes=4 * KB, fp_per_load=1.6, chain_depth=3,
        n_chains=4, store_per_load=0.20, iters=128,
    ),
    # Parabolic/elliptic PDE: blocked sweeps, good locality, good decoupling.
    "applu": _p(
        "applu", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.78, hot_bytes=4 * KB, fp_per_load=1.5, chain_depth=2,
        n_chains=4, store_per_load=0.30, iters=100,
    ),
    # Turbulence FFT: tiny cache footprint but index-driven butterflies ->
    # int loads used almost immediately (poor static scheduling).
    "turb3d": _p(
        "turb3d", n_streams=2, unroll=2, elem_bytes=8, ws_bytes=256 * KB,
        hot_frac=0.85, hot_bytes=4 * KB, gather_frac=0.12, index_dist=0,
        index_every=12,
        gather_ws_bytes=12 * KB, fp_per_load=1.6, chain_depth=2, n_chains=4,
        store_per_load=0.25, iters=64,
    ),
    # Mesoscale weather: moderate working set, decent decoupling.
    "apsi": _p(
        "apsi", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=2 * MB,
        hot_frac=0.72, hot_bytes=4 * KB,
        fp_per_load=1.5, chain_depth=2, n_chains=4, store_per_load=0.25,
        iters=80,
    ),
    # Gaussian quadrature: enormous basic blocks, working set fits L1, very
    # frequent FP->int moves (the canonical loss-of-decoupling program) and
    # integer loads scheduled right before their uses.
    "fpppp": _p(
        "fpppp", n_streams=2, unroll=4, elem_bytes=8, ws_bytes=10 * KB,
        hot_frac=0.90, hot_bytes=6 * KB, gather_frac=0.10, index_dist=0,
        gather_ws_bytes=10 * KB, store_ws_bytes=4 * KB,
        fp_per_load=2.4, chain_depth=4, n_chains=3,
        store_per_load=0.20, lod_rate=0.006, iters=256,
    ),
    # Plasma particle-in-cell: particle gather/scatter through index loads,
    # significant miss ratio, short index scheduling distance.
    "wave5": _p(
        "wave5", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.62, hot_bytes=4 * KB, gather_frac=0.07, index_dist=1,
        gather_ws_bytes=48 * KB, fp_per_load=1.3, chain_depth=2, n_chains=4,
        store_per_load=0.35, iters=72,
    ),
}

#: Benchmark order used in the paper's figures.
BENCH_ORDER = [
    "tomcatv", "swim", "su2cor", "hydro2d", "mgrid",
    "applu", "turb3d", "apsi", "fpppp", "wave5",
]

#: Scenario profiles beyond the paper's rotation — the workload-API
#: demonstrators (see DESIGN.md "Workload API"):
#:
#: - ``ptrchase``: pointer chasing — half the FP loads gather through
#:   integer indices loaded *in the same iteration* (zero static
#:   scheduling distance), the regime where decoupling cannot help and
#:   only compiler restructuring can (paper section 2's int-load result,
#:   pushed to the extreme).
#: - ``thrash``: a large, barely-skewed hot region that overflows its
#:   L1 set zone; with several threads the per-thread tiles collide and
#:   the shared L1 thrashes (the cross-thread conflict regime of Fig. 2).
#: - ``stream``: compiler-restructured pure streaming — no hot region,
#:   wide unrolled dense streams, write-streaming stores; the best case
#:   for access/execute decoupling (à la DAE code restructuring).
SCENARIOS: dict[str, BenchProfile] = {
    "ptrchase": _p(
        "ptrchase", n_streams=2, unroll=2, elem_bytes=8, ws_bytes=8 * MB,
        hot_frac=0.10, hot_bytes=4 * KB, gather_frac=0.50, index_dist=0,
        index_every=1, gather_ws_bytes=16 * KB, fp_per_load=0.9,
        chain_depth=1, n_chains=3, store_per_load=0.10,
        extra_ialu_per_load=0.40, iters=64,
    ),
    "thrash": _p(
        "thrash", n_streams=2, unroll=2, elem_bytes=8, ws_bytes=1 * MB,
        hot_frac=0.85, hot_bytes=12 * KB, hot_skew=0.15,
        store_ws_bytes=8 * KB, fp_per_load=1.2, chain_depth=2, n_chains=4,
        store_per_load=0.30, iters=96,
    ),
    "stream": _p(
        "stream", n_streams=4, unroll=1, elem_bytes=8, ws_bytes=16 * MB,
        hot_frac=0.0, store_ws_bytes=16 * MB, fp_per_load=1.5,
        chain_depth=2, n_chains=4, store_per_load=0.50, iters=160,
    ),
}


# -- registry ----------------------------------------------------------------

#: name -> (profile, provenance); seeded with the built-ins below
_REGISTRY: dict[str, tuple[BenchProfile, str]] = {}


def register_profile(
    profile: BenchProfile, provenance: str = "user", replace: bool = True
) -> BenchProfile:
    """Register ``profile`` under ``profile.name``.

    ``provenance`` is a short origin string shown by ``repro-sim
    workloads`` (built-ins use ``"built-in"``/``"built-in scenario"``;
    :func:`load_profiles` records the source file). With
    ``replace=False`` a name collision raises instead of shadowing.
    """
    if not profile.name or not isinstance(profile.name, str):
        raise ValueError("profile needs a non-empty string name")
    if not replace and profile.name in _REGISTRY:
        raise ValueError(f"profile {profile.name!r} is already registered")
    _REGISTRY[profile.name] = (profile, provenance)
    return profile


def get_profile(name: str) -> BenchProfile:
    """Look up a registered profile by name (built-in or user)."""
    try:
        return _REGISTRY[name][0]
    except KeyError:
        known = sorted(_REGISTRY)
        raise KeyError(
            f"unknown profile {name!r}{did_you_mean(name, known)}; "
            f"known: {', '.join(known)}"
        ) from None


def profile_provenance(name: str) -> str:
    """Where a registered profile came from (see :func:`register_profile`)."""
    get_profile(name)  # uniform unknown-name error
    return _REGISTRY[name][1]


def profile_names() -> list[str]:
    """Every registered profile name, sorted."""
    return sorted(_REGISTRY)


def load_document(path) -> dict:
    """Read one JSON (default) or TOML (by suffix) mapping from a file.

    Shared by profile files and workload files
    (:func:`~repro.workloads.spec.load_workload`), so format handling
    can never drift between the two.
    """
    import json
    from pathlib import Path

    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        import tomllib

        doc = tomllib.loads(text)
    else:
        doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: document must be a mapping")
    return doc


def load_profiles(path) -> list[str]:
    """Register every profile defined in a JSON or TOML file.

    The document is either a top-level ``name -> fields`` mapping or a
    ``{"profiles": {name -> fields}}`` wrapper (the same shape workload
    files embed). Field sets may use ``"base": "<registered name>"`` to
    derive from an existing profile. Returns the registered names.
    """
    doc = load_document(path)
    table = doc.get("profiles", doc)
    if not isinstance(table, dict):
        raise ValueError(f"{path}: 'profiles' must map names to fields")
    names = []
    for name, body in table.items():
        if not isinstance(body, dict):
            raise ValueError(f"{path}: profile {name!r} must be a mapping")
        body = {"name": name, **body}
        register_profile(
            BenchProfile.from_dict(body), provenance=str(path)
        )
        names.append(name)
    return names


for _name in BENCH_ORDER:
    register_profile(SPECFP95[_name], provenance="built-in")
for _name, _profile in SCENARIOS.items():
    register_profile(_profile, provenance="built-in scenario")
del _name, _profile
