"""SPEC FP95 benchmark profiles.

The paper drives its simulator with ATOM-instrumented DEC Alpha traces of the
ten SPEC FP95 programs (100 M instructions each). Those binaries, inputs and
the ATOM tool are unavailable, so this reproduction substitutes a *profile*
per benchmark: a parameter set for the synthetic kernel generator
(:mod:`repro.workloads.synth`) that recreates the characteristics the paper's
results actually depend on:

* the AP/EP instruction mix (how the stream splits between the units),
* the L1 miss behaviour of the address stream (working-set size, stride,
  hot-region reuse, gather randomness),
* the register dependence structure (FP chain depth/width → EP ILP;
  loss-of-decoupling FTOI events → slip ceiling),
* the static scheduling distance of integer loads (→ perceived int-load
  latency, Fig. 1-b),
* branch frequency and predictability.

Calibration targets are taken from the paper's own figures: Fig. 1-c miss
ratios, Fig. 1-a/1-b perceived latencies and the qualitative classification
in section 2 (good decouplers: tomcatv, swim, mgrid, applu, apsi; low miss
ratios: fpppp, turb3d; degraded: su2cor, wave5, hydro2d).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BenchProfile:
    """Parameter set for the synthetic kernel generator.

    Attributes are grouped by the behaviour they control; see module
    docstring for the mapping to paper results.
    """

    name: str

    # -- loop / control structure ------------------------------------------
    #: loads issued per stream per iteration (loop unrolling degree)
    unroll: int = 2
    #: inner-loop trip count; the loop-exit branch mispredicts ~1/iters
    iters: int = 64
    #: fraction of extra data-dependent branches (taken with p=.5)
    rand_branch_frac: float = 0.0

    # -- memory behaviour ---------------------------------------------------
    #: number of distinct streaming FP arrays read per iteration
    n_streams: int = 3
    #: element stride in bytes within each stream (8 = dense, 32 = line-sized)
    elem_bytes: int = 8
    #: streaming working set per array; pointers wrap at this size
    ws_bytes: int = 4 * MB
    #: fraction of FP loads that hit a small per-thread hot region
    hot_frac: float = 0.4
    #: hot region size (fits L1 alone; thrashes when many threads share L1)
    hot_bytes: int = 4 * KB
    #: hot accesses are skewed: this fraction lands in the first quarter of
    #: the region (short reuse distance survives streaming-front evictions)
    hot_skew: float = 0.92
    #: store-target working set (resident for most codes; the streaming
    #: stencil codes write-stream through multi-MB arrays instead)
    store_ws_bytes: int = 4 * KB
    #: fraction of FP loads whose address depends on an integer index load
    gather_frac: float = 0.0
    #: scheduling distance (iterations) between an index load and its use
    index_dist: int = 2
    #: index loads happen every Nth iteration (sparse index streams reuse
    #: the previous index in between)
    index_every: int = 1
    #: working set of gather targets (randomly addressed)
    gather_ws_bytes: int = 4 * MB

    # -- computation structure ----------------------------------------------
    #: FP ALU operations per FP load
    fp_per_load: float = 1.4
    #: dependent FALU ops per chain (serial latency = chain_depth * ep_lat)
    chain_depth: int = 2
    #: independent interleaved chains (EP ILP available to in-order issue)
    n_chains: int = 4
    #: FP stores per FP load
    store_per_load: float = 0.30
    #: integer ALU ops per FP load beyond pointer/counter updates
    extra_ialu_per_load: float = 0.15

    # -- cross-unit coupling --------------------------------------------------
    #: FTOI loss-of-decoupling events per instruction (AP waits on EP)
    lod_rate: float = 0.0
    #: ITOF moves per instruction (AP feeds EP scalars; behaves like a load)
    itof_rate: float = 0.004

    def with_overrides(self, **kwargs) -> "BenchProfile":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def _p(name: str, **kwargs) -> BenchProfile:
    return BenchProfile(name=name, **kwargs)


#: The ten SPEC FP95 profiles, in the paper's figure order.
#:
#: Classification recap (paper section 2):
#:   - hide latency well:   tomcatv, swim, mgrid, applu, apsi
#:   - low miss ratio:      fpppp, turb3d
#:   - degraded:            su2cor, wave5, hydro2d
#:   - large int-load stalls: fpppp, su2cor, turb3d, wave5
SPECFP95: dict[str, BenchProfile] = {
    # Vectorised mesh generation: long dense streams, perfect decoupling,
    # significant miss ratio, write-streams its result meshes.
    "tomcatv": _p(
        "tomcatv", n_streams=4, unroll=2, elem_bytes=8, ws_bytes=8 * MB,
        hot_frac=0.75, hot_bytes=4 * KB, store_ws_bytes=4 * MB,
        fp_per_load=1.4, chain_depth=2, n_chains=4, store_per_load=0.30,
        iters=100,
    ),
    # Shallow-water stencil: highest miss ratio (wide stride defeats spatial
    # locality), still decouples perfectly; the bandwidth hog of the suite.
    "swim": _p(
        "swim", n_streams=4, unroll=2, elem_bytes=16, ws_bytes=8 * MB,
        hot_frac=0.70, hot_bytes=4 * KB, store_ws_bytes=8 * MB,
        fp_per_load=1.3, chain_depth=2, n_chains=4, store_per_load=0.30,
        iters=128,
    ),
    # Quantum chromodynamics: gather through index arrays -> integer loads on
    # the AP critical path (large perceived int-load latency).
    "su2cor": _p(
        "su2cor", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.64, hot_bytes=4 * KB, gather_frac=0.06, index_dist=1,
        gather_ws_bytes=32 * KB, fp_per_load=1.5, chain_depth=2, n_chains=4,
        store_per_load=0.25, iters=80,
    ),
    # Navier-Stokes: dense streams, decent decoupling, high miss ratio,
    # write-streams as it sweeps.
    "hydro2d": _p(
        "hydro2d", n_streams=4, unroll=2, elem_bytes=8, ws_bytes=8 * MB,
        hot_frac=0.60, hot_bytes=4 * KB, gather_frac=0.03, index_dist=2,
        gather_ws_bytes=32 * KB, store_ws_bytes=4 * MB, fp_per_load=1.4, chain_depth=2, n_chains=4,
        store_per_load=0.35, iters=96,
    ),
    # Multigrid: mostly-resident fine grids, dense sweeps, excellent reuse.
    "mgrid": _p(
        "mgrid", n_streams=3, unroll=3, elem_bytes=8, ws_bytes=2 * MB,
        hot_frac=0.82, hot_bytes=4 * KB, fp_per_load=1.6, chain_depth=3,
        n_chains=4, store_per_load=0.20, iters=128,
    ),
    # Parabolic/elliptic PDE: blocked sweeps, good locality, good decoupling.
    "applu": _p(
        "applu", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.78, hot_bytes=4 * KB, fp_per_load=1.5, chain_depth=2,
        n_chains=4, store_per_load=0.30, iters=100,
    ),
    # Turbulence FFT: tiny cache footprint but index-driven butterflies ->
    # int loads used almost immediately (poor static scheduling).
    "turb3d": _p(
        "turb3d", n_streams=2, unroll=2, elem_bytes=8, ws_bytes=256 * KB,
        hot_frac=0.85, hot_bytes=4 * KB, gather_frac=0.12, index_dist=0,
        index_every=12,
        gather_ws_bytes=12 * KB, fp_per_load=1.6, chain_depth=2, n_chains=4,
        store_per_load=0.25, iters=64,
    ),
    # Mesoscale weather: moderate working set, decent decoupling.
    "apsi": _p(
        "apsi", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=2 * MB,
        hot_frac=0.72, hot_bytes=4 * KB,
        fp_per_load=1.5, chain_depth=2, n_chains=4, store_per_load=0.25,
        iters=80,
    ),
    # Gaussian quadrature: enormous basic blocks, working set fits L1, very
    # frequent FP->int moves (the canonical loss-of-decoupling program) and
    # integer loads scheduled right before their uses.
    "fpppp": _p(
        "fpppp", n_streams=2, unroll=4, elem_bytes=8, ws_bytes=10 * KB,
        hot_frac=0.90, hot_bytes=6 * KB, gather_frac=0.10, index_dist=0,
        gather_ws_bytes=10 * KB, store_ws_bytes=4 * KB,
        fp_per_load=2.4, chain_depth=4, n_chains=3,
        store_per_load=0.20, lod_rate=0.006, iters=256,
    ),
    # Plasma particle-in-cell: particle gather/scatter through index loads,
    # significant miss ratio, short index scheduling distance.
    "wave5": _p(
        "wave5", n_streams=3, unroll=2, elem_bytes=8, ws_bytes=4 * MB,
        hot_frac=0.62, hot_bytes=4 * KB, gather_frac=0.07, index_dist=1,
        gather_ws_bytes=48 * KB, fp_per_load=1.3, chain_depth=2, n_chains=4,
        store_per_load=0.35, iters=72,
    ),
}

#: Benchmark order used in the paper's figures.
BENCH_ORDER = [
    "tomcatv", "swim", "su2cor", "hydro2d", "mgrid",
    "applu", "turb3d", "apsi", "fpppp", "wave5",
]


def get_profile(name: str) -> BenchProfile:
    """Look up a SPEC FP95 profile by benchmark name."""
    try:
        return SPECFP95[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCH_ORDER)}"
        ) from None
