"""Declarative workload descriptions: the open workload API.

A :class:`WorkloadSpec` is a frozen, hashable, JSON-round-trippable
description of *what every hardware context executes*: one playlist of
:class:`WorkloadEntry` per thread, cycled indefinitely — exactly the shape
the cycle kernel and the analytic model's characterization walk both
consume. It replaces the closed ``kind``/``bench`` enum the run layer
used to special-case: the paper's section-3 rotation and section-2
single-benchmark runs are now just two presets
(:meth:`WorkloadSpec.rotation`, :meth:`WorkloadSpec.single`) of an API
that can express any scenario — heterogeneous per-thread mixes, inline
profile variants, user-defined profiles from files.

Entries are written compactly as ``"<profile>"`` or
``"<profile>?field=value&field=value"`` — a registered profile name plus
inline overrides, e.g. ``"swim?hot_frac=0.1&ws_bytes=16M"`` (sizes take
``K``/``M``/``G`` suffixes). Parsing resolves the reference against the
profile registry **immediately**: the entry stores the fully-resolved
:class:`~repro.workloads.profiles.BenchProfile`, so a spec is
self-contained — its identity covers the actual parameter values (two
registries that bind the same name to different parameters can never
collide in the result cache) and it crosses process boundaries without
the worker having to replay registrations.

Identity: ``WorkloadSpec`` is a frozen dataclass (structural ``==`` /
``hash``, which is what keys the characterization-walk cache) and
:meth:`key` is a stable sha256 over the canonical JSON form — the part of
:meth:`~repro.engine.spec.RunSpec.key` that addresses the result cache,
identical across processes and interpreter runs.

Files: :func:`load_workload` reads a workload document from JSON or TOML
(see DESIGN.md "Workload API" for the schema); a document may embed a
``profiles`` table of custom profile definitions, registered before the
playlists are parsed, so a scenario can be defined *entirely* in one
file. Named presets (built-in scenarios plus :func:`register_preset`
additions) resolve via :func:`workload_preset`; ``repro-sim workloads``
lists both registries.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.workloads.profiles import (
    BENCH_ORDER,
    BenchProfile,
    did_you_mean,
    get_profile,
    load_document,
    register_profile,
)

#: default trace segment length per playlist entry (the paper used 100 M
#: instructions per benchmark; we scale down — see DESIGN.md)
SEG_INSTRS = 20_000
#: default measured/warm-up commits per hardware context, pre-scale
#: (rotation workloads; the paper's section-3 budgets)
COMMITS_PER_THREAD = 15_000
WARMUP_PER_THREAD = 8_000
#: section-2 single-benchmark budgets (one context, longer window)
SINGLE_COMMITS = 30_000
SINGLE_WARMUP = 15_000

_SIZE_SUFFIX = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_value(text: str):
    """One override value: bool, sized int (``16M``), int, float or str."""
    t = text.strip()
    if t.lower() in ("true", "false"):
        return t.lower() == "true"
    m = re.fullmatch(r"([-+]?\d+(?:\.\d+)?)\s*([KkMmGg])[Bb]?", t)
    if m:
        return int(float(m.group(1)) * _SIZE_SUFFIX[m.group(2).lower()])
    try:
        return int(t)
    except ValueError:
        pass
    try:
        return float(t)
    except ValueError:
        return t


def _fmt_value(value) -> str:
    """Canonical text form of an override value (bools lowercase)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, float) else str(value)


def _canonical_name(base: str, overrides: dict) -> str:
    if not overrides:
        return base
    query = "&".join(
        f"{k}={_fmt_value(v)}" for k, v in sorted(overrides.items())
    )
    return f"{base}?{query}"


@dataclass(frozen=True)
class WorkloadEntry:
    """One playlist segment: a resolved profile, optionally with its own
    trace segment length (``None`` defers to the spec-level default)."""

    profile: BenchProfile
    seg_instrs: int | None = None

    def __post_init__(self):
        if self.seg_instrs is not None and self.seg_instrs < 1:
            raise ValueError(
                f"entry seg_instrs must be positive, got {self.seg_instrs}"
            )

    @property
    def label(self) -> str:
        return self.profile.name

    @classmethod
    def parse(cls, text: str) -> "WorkloadEntry":
        """Resolve ``"name"`` / ``"name?field=v&field=v"`` against the
        profile registry. The reserved key ``seg_instrs`` sets the
        entry's segment length instead of a profile field."""
        base, _, query = text.strip().partition("?")
        overrides: dict = {}
        seg = None
        if query:
            for pair in query.split("&"):
                key, sep, raw = pair.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ValueError(
                        f"malformed workload entry {text!r}: expected "
                        "'profile?field=value&...'"
                    )
                value = parse_value(raw)
                if key == "seg_instrs":
                    seg = int(value)
                else:
                    overrides[key] = value
        profile = get_profile(base)
        if overrides:
            profile = profile.with_overrides(
                name=_canonical_name(base, overrides), **overrides
            )
        return cls(profile=profile, seg_instrs=seg)

    def with_overrides(self, **kwargs) -> "WorkloadEntry":
        """This entry with profile fields replaced; the profile name is
        re-canonicalized so labels stay truthful (``swim`` overridden
        with ``hot_frac=0.1`` becomes ``swim?hot_frac=0.1``)."""
        base, _, query = self.profile.name.partition("?")
        merged: dict = {}
        if query:
            for pair in query.split("&"):
                key, _, raw = pair.partition("=")
                merged[key] = parse_value(raw)
        merged.update(kwargs)
        profile = self.profile.with_overrides(
            name=_canonical_name(base, merged), **kwargs
        )
        return WorkloadEntry(profile=profile, seg_instrs=self.seg_instrs)

    def to_dict(self) -> dict:
        d: dict = {"profile": self.profile.to_dict()}
        if self.seg_instrs is not None:
            d["seg_instrs"] = self.seg_instrs
        return d

    @classmethod
    def from_dict(cls, d) -> "WorkloadEntry":
        """Accepts the compact string form or the explicit dict form
        (``{"profile": {...} | "name", "seg_instrs": n}``)."""
        if isinstance(d, str):
            return cls.parse(d)
        if not isinstance(d, dict):
            raise ValueError(f"workload entry must be str or dict, got {d!r}")
        prof = d.get("profile")
        if isinstance(prof, str):
            entry = cls.parse(prof)
            seg = d.get("seg_instrs", entry.seg_instrs)
            return cls(profile=entry.profile, seg_instrs=seg)
        if not isinstance(prof, dict):
            raise ValueError(f"entry 'profile' must be str or dict, got {d!r}")
        return cls(
            profile=BenchProfile.from_dict(prof),
            seg_instrs=d.get("seg_instrs"),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-thread playlists, frozen and content-addressable.

    ``threads[t]`` is the ordered tuple of entries context ``t`` executes
    cyclically. ``default_commits``/``default_warmup`` are the pre-scale
    per-thread budget *hints* a :class:`~repro.engine.spec.RunSpec` falls
    back to when its own budgets are unset (presets use them to carry the
    paper's section-2 vs section-3 budgets without a run-kind enum).
    """

    name: str
    threads: tuple[tuple[WorkloadEntry, ...], ...]
    seg_instrs: int = SEG_INSTRS
    default_commits: int | None = None
    default_warmup: int | None = None

    def __post_init__(self):
        if not self.threads or any(not pl for pl in self.threads):
            raise ValueError(
                "workload needs >= 1 thread, each with >= 1 entry"
            )
        if self.seg_instrs < 1:
            raise ValueError("seg_instrs must be positive")
        # a trace name must identify one profile: bench_weight in the
        # characterization walk is keyed by name, so two entries sharing
        # a name but not field values would silently blend wrong
        seen: dict[str, BenchProfile] = {}
        for playlist in self.threads:
            for entry in playlist:
                prior = seen.setdefault(entry.profile.name, entry.profile)
                if prior != entry.profile:
                    raise ValueError(
                        f"two entries both named {entry.profile.name!r} "
                        "carry different field values; give them "
                        "distinct names"
                    )

    # -- shape -----------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def label(self) -> str:
        return self.name

    def entry_length(self, entry: WorkloadEntry) -> int:
        return entry.seg_instrs or self.seg_instrs

    def profiles(self) -> dict[str, BenchProfile]:
        """``trace name -> profile`` over every entry (what the analytic
        characterization walk uses to blend profile-derived structure)."""
        out: dict[str, BenchProfile] = {}
        for playlist in self.threads:
            for entry in playlist:
                out[entry.profile.name] = entry.profile
        return out

    def playlists(self, seed: int = 0) -> list:
        """One (cached) trace playlist per hardware context."""
        from repro.workloads.multiprogram import profile_trace

        return [
            [
                profile_trace(e.profile, self.entry_length(e), seed)
                for e in playlist
            ]
            for playlist in self.threads
        ]

    # -- derivation ------------------------------------------------------------

    def with_profile_overrides(self, **kwargs) -> "WorkloadSpec":
        """Every entry's profile with fields replaced — the hook sweep
        axes over workload fields use (``repro-sim sweep
        --workload-axis hot_frac=0.1,0.4``)."""
        suffix = ",".join(
            f"{k}={_fmt_value(v)}" for k, v in sorted(kwargs.items())
        )
        return WorkloadSpec(
            name=f"{self.name}({suffix})",
            threads=tuple(
                tuple(e.with_overrides(**kwargs) for e in playlist)
                for playlist in self.threads
            ),
            seg_instrs=self.seg_instrs,
            default_commits=self.default_commits,
            default_warmup=self.default_warmup,
        )

    # -- identity --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe, registry-independent representation."""
        d: dict = {
            "name": self.name,
            "seg_instrs": self.seg_instrs,
            "threads": [
                [e.to_dict() for e in playlist] for playlist in self.threads
            ],
        }
        if self.default_commits is not None:
            d["default_commits"] = self.default_commits
        if self.default_warmup is not None:
            d["default_warmup"] = self.default_warmup
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict`; also accepts the hand-authored file
        shape where entries are compact strings (see module docstring)."""
        if not isinstance(d, dict):
            raise ValueError(f"workload document must be a mapping, got {d!r}")
        threads = d.get("threads")
        if not isinstance(threads, (list, tuple)):
            raise ValueError("workload document needs a 'threads' list")
        parsed = tuple(
            tuple(WorkloadEntry.from_dict(e) for e in playlist)
            for playlist in threads
        )
        return cls(
            name=str(d.get("name", "custom")),
            threads=parsed,
            seg_instrs=int(d.get("seg_instrs", SEG_INSTRS)),
            default_commits=d.get("default_commits"),
            default_warmup=d.get("default_warmup"),
        )

    def key(self) -> str:
        """Stable content hash (sha256 prefix), identical across
        processes — what the run layer folds into its cache key."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    # -- presets ---------------------------------------------------------------

    @classmethod
    def rotation(
        cls,
        n_threads: int,
        names: Iterable[str] | None = None,
        seg_instrs: int = SEG_INSTRS,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """The paper's section-3 workload: thread ``t`` runs the profile
        list rotated by ``t`` (entries may carry inline overrides)."""
        names = list(names) if names is not None else list(BENCH_ORDER)
        entries = [WorkloadEntry.parse(n) for n in names]
        if name is None:
            name = f"{n_threads}T"
            if [e.label for e in entries] != BENCH_ORDER:
                name += f"[{','.join(e.label for e in entries)}]"
        return cls(
            name=name,
            threads=tuple(
                tuple(entries[(t + i) % len(entries)] for i in range(len(entries)))
                for t in range(n_threads)
            ),
            seg_instrs=seg_instrs,
            default_commits=COMMITS_PER_THREAD,
            default_warmup=WARMUP_PER_THREAD,
        )

    @classmethod
    def single(
        cls, bench: str, seg_instrs: int = SEG_INSTRS, name: str | None = None
    ) -> "WorkloadSpec":
        """The paper's section-2 workload: one benchmark on one context."""
        entry = WorkloadEntry.parse(bench)
        return cls(
            name=name or entry.label,
            threads=((entry,),),
            seg_instrs=seg_instrs,
            default_commits=SINGLE_COMMITS,
            default_warmup=SINGLE_WARMUP,
        )

    @classmethod
    def homogeneous(
        cls,
        bench: str,
        n_threads: int,
        seg_instrs: int = SEG_INSTRS,
        name: str | None = None,
    ) -> "WorkloadSpec":
        """Every context runs the same profile (shared-region scenarios)."""
        entry = WorkloadEntry.parse(bench)
        return cls(
            name=name or f"{entry.label}x{n_threads}",
            threads=((entry,),) * n_threads,
            seg_instrs=seg_instrs,
            default_commits=COMMITS_PER_THREAD,
            default_warmup=WARMUP_PER_THREAD,
        )

    @classmethod
    def mix(
        cls,
        per_thread: Iterable[Iterable[str] | str],
        seg_instrs: int = SEG_INSTRS,
        name: str = "mix",
    ) -> "WorkloadSpec":
        """Arbitrary heterogeneous mix: one entry list (or single entry
        string) per thread."""
        threads = []
        for pl in per_thread:
            if isinstance(pl, str):
                pl = [pl]
            threads.append(tuple(WorkloadEntry.parse(e) for e in pl))
        return cls(
            name=name,
            threads=tuple(threads),
            seg_instrs=seg_instrs,
            default_commits=COMMITS_PER_THREAD,
            default_warmup=WARMUP_PER_THREAD,
        )


# -- preset registry ---------------------------------------------------------

#: name -> (zero-arg factory, provenance)
_PRESETS: dict[str, tuple[Callable[[], WorkloadSpec], str]] = {}


def register_preset(
    name: str, factory: Callable[[], WorkloadSpec], provenance: str = "user"
) -> None:
    """Register a named workload preset (``repro-sim --workload NAME``)."""
    if not name or not isinstance(name, str):
        raise ValueError("preset needs a non-empty string name")
    _PRESETS[name] = (factory, provenance)


def workload_preset(name: str) -> WorkloadSpec:
    """Build a registered preset's spec by name."""
    try:
        factory, _ = _PRESETS[name]
    except KeyError:
        known = sorted(_PRESETS)
        raise KeyError(
            f"unknown workload preset {name!r}{did_you_mean(name, known)}; "
            f"known: {', '.join(known)}"
        ) from None
    return factory()


def preset_names() -> list[str]:
    return sorted(_PRESETS)


def preset_provenance(name: str) -> str:
    workload_preset(name)  # uniform unknown-name error
    return _PRESETS[name][1]


def _builtin_presets() -> None:
    reg = lambda n, f: register_preset(n, f, provenance="built-in")  # noqa: E731
    # the paper's own workloads, as presets like any other
    reg("paper-rot4", lambda: WorkloadSpec.rotation(4))
    for bench in BENCH_ORDER:
        reg(f"paper-{bench}", lambda b=bench: WorkloadSpec.single(b))
    # scenario presets demonstrating the opened API (non-paper)
    reg(
        "hetero4",
        lambda: WorkloadSpec.mix(
            [
                ["swim", "tomcatv"],          # bandwidth-hungry streamers
                ["fpppp"],                    # resident, LOD-limited
                ["ptrchase"],                 # gather-bound pointer chaser
                ["turb3d", "mgrid"],          # cache-friendly compute
            ],
            name="hetero4",
        ),
    )
    reg(
        "ptrchase2",
        lambda: WorkloadSpec.homogeneous("ptrchase", 2, name="ptrchase2"),
    )
    reg(
        "thrash4",
        lambda: WorkloadSpec.homogeneous("thrash", 4, name="thrash4"),
    )
    reg(
        "stream4",
        lambda: WorkloadSpec.homogeneous("stream", 4, name="stream4"),
    )


_builtin_presets()


# -- file loading ------------------------------------------------------------


def load_workload(path) -> WorkloadSpec:
    """Read one workload document from a JSON or TOML file.

    Schema (DESIGN.md "Workload API")::

        {
          "name": "hetero4",
          "seg_instrs": 20000,                  # optional
          "default_commits": 15000,             # optional, per thread
          "default_warmup": 8000,               # optional, per thread
          "profiles": {                         # optional, registered first
            "myprof": {"base": "swim", "hot_frac": 0.1}
          },
          "threads": [["swim"], ["myprof?ws_bytes=16M", "fpppp"]]
        }

    Embedded ``profiles`` are registered (provenance = the file path)
    before the playlists parse, so a workload can be defined entirely in
    one file with no code changes.
    """
    doc = load_document(path)
    for name, body in (doc.get("profiles") or {}).items():
        register_profile(
            BenchProfile.from_dict({"name": name, **body}),
            provenance=str(path),
        )
    return WorkloadSpec.from_dict(doc)


def resolve_workload(ref: str) -> WorkloadSpec:
    """CLI-facing resolution: a preset name, or a JSON/TOML file path."""
    from pathlib import Path

    p = Path(ref)
    if p.suffix.lower() in (".json", ".toml") or p.is_file():
        return load_workload(p)
    return workload_preset(ref)
