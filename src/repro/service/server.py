"""The asyncio HTTP job server: ``repro-sim serve``.

Stdlib only — the HTTP/1.1 surface is small enough (one request per
connection, JSON bodies, one streaming endpoint) that asyncio streams
plus ~80 lines of parsing beat dragging in a framework:

* ``POST /jobs`` — submit a :class:`~repro.engine.spec.RunSpec` or a
  batch (a ``Sweep``'s expanded specs); answers 202 with the job id.
* ``GET /jobs`` — summaries of every known job.
* ``GET /jobs/{id}`` — status, counters and (when done) per-spec stats.
* ``GET /jobs/{id}/events`` — progress lines streamed live until the
  job reaches a terminal state.
* ``GET /metrics`` — queue depth, job states, coalescing counters and
  the engines' lifetime cached/executed/forked totals.
* ``GET /healthz`` — liveness (and whether a drain is in progress).

A fixed pool of worker tasks consumes the job queue; each worker owns
one :class:`~repro.engine.scheduler.Engine` and all engines share one
cache directory, so results flow between workers (and between service
restarts) through the same content-addressed store every CLI run uses.
Submissions running concurrently coalesce on ``RunSpec.key()`` via
:class:`~repro.service.coalesce.Coalescer` — N identical in-flight jobs
cost one simulation.  ``SIGTERM``/``SIGINT`` trigger a graceful drain:
stop accepting, finish in-flight jobs (persisting their results through
the spool), then exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from pathlib import Path

from repro.engine import Engine, ResultCache, default_cache_dir
from repro.service.coalesce import Coalescer
from repro.service.jobs import TERMINAL, Job, JobStore
from repro.service.metrics import ServiceMetrics
from repro.service.wire import (
    WireError,
    job_detail,
    job_summary,
    parse_job_request,
)

#: refuse request bodies beyond this (a 4096-spec batch is ~2 MB)
MAX_BODY_BYTES = 16 * 1024 * 1024

#: idle client connections are dropped after this
REQUEST_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class SimService:
    """One long-running simulation service instance.

    ``service_workers`` bounds how many *jobs* run concurrently; each
    job's own parallelism (``engine_workers`` process-pool fan-out) is
    the engine's business.  ``cache_dir=None`` uses the default result
    cache; ``no_cache=True`` disables result persistence entirely (the
    coalescer still dedupes concurrent identical work).  The job spool
    defaults to ``<cache_dir>/jobs``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8023,
        cache_dir: str | None = None,
        no_cache: bool = False,
        spool_dir: str | None = None,
        engine_workers: int | None = None,
        service_workers: int = 2,
        fork_warmup: int | None = None,
        log=None,
    ):
        self.host = host
        self.port = port
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        )
        self.no_cache = no_cache
        self.spool_dir = (
            Path(spool_dir).expanduser() if spool_dir
            else self.cache_dir / "jobs"
        )
        self.store = JobStore(self.spool_dir)
        self.engines = [
            Engine(
                workers=engine_workers,
                cache=None if no_cache else ResultCache(self.cache_dir),
                fork_warmup=fork_warmup,
            )
            for _ in range(max(1, service_workers))
        ]
        self.jobs: dict[str, Job] = {}
        self.queue: asyncio.Queue = asyncio.Queue()
        self.coalescer = Coalescer()
        self.metrics = ServiceMetrics()
        self._log = log or (
            lambda msg: print(f"[serve] {msg}", file=sys.stderr, flush=True)
        )
        self._draining = False
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._drain_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def run(self, ready=None) -> None:
        """Serve until a drain completes.  ``ready`` (any object with a
        ``set()`` method, e.g. ``threading.Event``) fires once the port
        is bound — test and embedding hook."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._recover_spool()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.create_task(self._worker(i), name=f"sim-worker-{i}")
            for i in range(len(self.engines))
        ]
        self._install_signal_handlers()
        self._log(
            f"listening on http://{self.host}:{self.port} — "
            f"{len(self.engines)} service workers, cache "
            f"{'disabled' if self.no_cache else self.cache_dir}, "
            f"spool {self.spool_dir}"
        )
        if ready is not None:
            ready.set()
        await self._stopped.wait()

    def _install_signal_handlers(self) -> None:
        try:
            self._loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.request_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # not the main thread (embedded/tests) or unsupported

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; loop-thread only)."""
        if self._draining:
            return
        self._draining = True
        self._log("drain requested: finishing in-flight jobs")
        self._drain_task = self._loop.create_task(self._drain())

    def request_drain_threadsafe(self) -> None:
        """Trigger a drain from any thread (the test harness's SIGTERM)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_drain)

    async def _drain(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        for _ in self._worker_tasks:
            self.queue.put_nowait(None)
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._log("drained: all in-flight jobs finished and persisted")
        self._stopped.set()

    def _recover_spool(self) -> None:
        """Re-enqueue jobs a previous process accepted but never
        finished; finished jobs stay queryable."""
        for job in self.store.load_all():
            self.jobs[job.id] = job
            if job.state not in TERMINAL:
                job.state = "queued"
                job.emit(f"job {job.id}: recovered from spool after restart")
                self.queue.put_nowait(job)
                self._save(job)
        if self.jobs:
            self._log(f"recovered {len(self.jobs)} jobs from {self.spool_dir}")

    def _save(self, job: Job) -> None:
        try:
            self.store.save(job)
        except OSError as exc:  # pragma: no cover - disk trouble
            self._log(f"spool write failed for job {job.id}: {exc}")

    # -- the worker pool ---------------------------------------------------------

    async def _worker(self, idx: int) -> None:
        engine = self.engines[idx]
        while True:
            job = await self.queue.get()
            if job is None:
                return
            try:
                await self._run_job(job, engine)
            except Exception as exc:  # a worker must never die
                job.finish_failed(f"internal error: {exc!r}")
                self.metrics.jobs_failed += 1
                self._save(job)

    async def _run_job(self, job: Job, engine: Engine) -> None:
        loop = asyncio.get_running_loop()
        job.mark_running()
        self._save(job)
        unique = list(dict.fromkeys(job.specs))
        owned, borrowed = self.coalescer.claim(unique)
        job.counters["n_coalesced"] = len(borrowed)
        for spec in borrowed:
            job.emit(f"coalesced {spec.label()} (in flight in another job)")
        results: dict[str, dict] = {}  # spec.key() -> stats dict
        try:
            if owned:

                def progress(event, spec):
                    loop.call_soon_threadsafe(
                        job.emit, f"{event} {spec.label()}"
                    )

                def run_map():
                    engine.progress = progress
                    try:
                        return engine.map(owned)
                    finally:
                        engine.progress = None

                # the blocking engine call runs on an executor thread so
                # the loop keeps serving requests and event streams
                sweep = await loop.run_in_executor(None, run_map)
                for name in ("n_cached", "n_executed", "n_forked",
                             "warmup_cycles_saved", "n_screened",
                             "n_promoted", "cycle_cells_saved"):
                    job.counters[name] += getattr(sweep, name)
                for spec, stats in sweep.items():
                    stats_dict = stats.to_dict()
                    results[spec.key()] = stats_dict
                    self.coalescer.resolve(spec, stats_dict)
            for spec, fut in borrowed.items():
                results[spec.key()] = await fut
        except Exception as exc:
            for spec in owned:
                self.coalescer.fail(spec, exc)
            job.finish_failed(str(exc) or repr(exc))
            self.metrics.jobs_failed += 1
            self._save(job)
            return
        job.finish_ok([
            {
                "key": spec.key(),
                "label": spec.label(),
                "spec": spec.to_dict(),
                "stats": results[spec.key()],
            }
            for spec in unique
        ])
        self.metrics.jobs_completed += 1
        self._save(job)

    # -- HTTP --------------------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self.metrics.requests_total += 1
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=REQUEST_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                await self._respond(writer, 408, {"error": "request timeout"})
                return
            except _BadRequest as exc:
                await self._respond(writer, exc.status, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._dispatch(writer, *request)
        except ConnectionError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - belt and braces
            self._log(f"request handler error: {exc!r}")
            try:
                await self._respond(writer, 500, {"error": "internal error"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            raise _BadRequest("empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}", 413
            )
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), target, headers, body

    async def _dispatch(self, writer, method, target, headers, body) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/jobs":
            if method == "POST":
                return await self._post_jobs(writer, body)
            if method == "GET":
                jobs = sorted(self.jobs.values(), key=lambda j: j.created)
                return await self._respond(
                    writer, 200, {"jobs": [job_summary(j) for j in jobs]}
                )
            return await self._method_not_allowed(writer)
        if path == "/metrics" and method == "GET":
            return await self._respond(
                writer, 200,
                self.metrics.to_dict(
                    self.jobs.values(), self.engines, self.coalescer,
                    draining=self._draining,
                ),
            )
        if path == "/healthz" and method == "GET":
            return await self._respond(
                writer, 200, {"ok": True, "draining": self._draining}
            )
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            want_events = rest.endswith("/events")
            job_id = rest[:-len("/events")] if want_events else rest
            job = self.jobs.get(job_id.strip("/"))
            if method != "GET":
                return await self._method_not_allowed(writer)
            if job is None:
                return await self._respond(
                    writer, 404, {"error": f"no such job {job_id!r}"}
                )
            if want_events:
                return await self._stream_events(writer, job)
            return await self._respond(writer, 200, job_detail(job))
        await self._respond(
            writer, 404,
            {"error": f"no route for {method} {path}",
             "routes": ["POST /jobs", "GET /jobs", "GET /jobs/{id}",
                        "GET /jobs/{id}/events", "GET /metrics",
                        "GET /healthz"]},
        )

    async def _post_jobs(self, writer, body: bytes) -> None:
        if self._draining:
            return await self._respond(
                writer, 503, {"error": "draining: not accepting new jobs"}
            )
        try:
            request = parse_job_request(body)
        except WireError as exc:
            return await self._respond(writer, 400, {"error": str(exc)})
        job = Job(request.specs, label=request.label)
        self.jobs[job.id] = job
        job.emit(f"job {job.id}: queued ({len(job.specs)} specs)")
        self.metrics.jobs_submitted += 1
        self._save(job)
        await self.queue.put(job)
        doc = job_summary(job)
        doc["url"] = f"/jobs/{job.id}"
        doc["events_url"] = f"/jobs/{job.id}/events"
        await self._respond(writer, 202, doc)

    async def _method_not_allowed(self, writer) -> None:
        await self._respond(writer, 405, {"error": "method not allowed"})

    async def _stream_events(self, writer, job: Job) -> None:
        """Stream progress lines until the job reaches a terminal state;
        the response has no Content-Length and ends when we close."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/plain; charset=utf-8\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        seen = 0
        while True:
            while seen < len(job.events):
                writer.write((job.events[seen] + "\n").encode("utf-8"))
                seen += 1
            await writer.drain()
            if job.state in TERMINAL and seen >= len(job.events):
                return
            await job.wait_events(seen)

    async def _respond(self, writer, status: int, doc: dict) -> None:
        body = json.dumps(doc, indent=2).encode("utf-8") + b"\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()


def serve(**kwargs) -> int:
    """Blocking entry point used by ``repro-sim serve``."""
    service = SimService(**kwargs)
    try:
        asyncio.run(service.run())
    except KeyboardInterrupt:  # pragma: no cover - ^C without handler
        pass
    return 0
