"""Service counters, aggregated into one ``GET /metrics`` document.

Two kinds of numbers meet here: the service's own traffic counters
(requests, submissions, job states, queue depth, coalesced spec-slots)
and the *lifetime* engine counters summed over the worker pool — each
worker owns one :class:`~repro.engine.scheduler.Engine`, and the
engines already track cached/executed/forked totals across every
``map`` call, so the service only has to add them up.
"""

from __future__ import annotations

import time


class ServiceMetrics:
    """Mutable traffic counters plus a point-in-time aggregator."""

    def __init__(self):
        self.started = time.time()
        self.requests_total = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0

    def to_dict(self, jobs, engines, coalescer, draining: bool) -> dict:
        """Assemble the ``/metrics`` document from live components."""
        states: dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        engine_totals = {
            "n_cached": sum(e.n_cached for e in engines),
            "n_executed": sum(e.n_executed for e in engines),
            "n_forked": sum(e.n_forked for e in engines),
            "warmup_cycles_saved": sum(
                e.warmup_cycles_saved for e in engines
            ),
            "n_screened": sum(e.n_screened for e in engines),
            "n_promoted": sum(e.n_promoted for e in engines),
            "cycle_cells_saved": sum(
                e.cycle_cells_saved for e in engines
            ),
            "ff_jumps": sum(e.ff_jumps for e in engines),
            "ff_cycles_skipped": sum(
                e.ff_cycles_skipped for e in engines
            ),
        }
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "draining": draining,
            "requests_total": self.requests_total,
            "queue_depth": states.get("queued", 0),
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "by_state": states,
            },
            "coalesced_specs": coalescer.n_coalesced,
            "inflight_specs": coalescer.n_inflight,
            "engine": engine_totals,
            "service_workers": len(engines),
        }
