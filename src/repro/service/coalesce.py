"""In-flight request coalescing on ``RunSpec.key()``.

The result cache already dedupes *completed* work; what it cannot do is
stop N concurrent identical submissions from all missing the still-empty
cache and simulating the same spec N times.  The :class:`Coalescer`
closes that window: the first job to start running a spec *owns* it and
registers a future under the spec's content hash; every later job whose
spec finds an unresolved future *borrows* it and simply awaits the
owner's result.  N concurrent identical ``POST /jobs`` therefore cost
exactly one ``Engine`` execution — the service-level analogue of the
scheduler's in-batch dedupe.

Futures carry plain stats dicts (the cache's own representation), so
borrowers can never mutate the owner's result object.
"""

from __future__ import annotations

import asyncio

from repro.engine.spec import RunSpec


class Coalescer:
    """Single-event-loop registry of in-flight specs. Not thread-safe by
    design: claim/resolve/fail all run on the server's loop."""

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}
        #: lifetime count of spec-slots served by another job's run
        self.n_coalesced = 0

    @property
    def n_inflight(self) -> int:
        return len(self._inflight)

    def claim(
        self, specs: list[RunSpec]
    ) -> tuple[list[RunSpec], dict[RunSpec, asyncio.Future]]:
        """Partition ``specs`` into ``(owned, borrowed)``.

        ``owned`` specs are this caller's to execute — a fresh future is
        registered for each, and the caller **must** later ``resolve``
        or ``fail`` every one of them.  ``borrowed`` maps specs to
        another job's in-flight future to await instead.
        """
        loop = asyncio.get_running_loop()
        owned: list[RunSpec] = []
        borrowed: dict[RunSpec, asyncio.Future] = {}
        for spec in specs:
            fut = self._inflight.get(spec.key())
            if fut is not None and not fut.done():
                borrowed[spec] = fut
                self.n_coalesced += 1
            else:
                self._inflight[spec.key()] = loop.create_future()
                owned.append(spec)
        return owned, borrowed

    def resolve(self, spec: RunSpec, stats_dict: dict) -> None:
        """Publish an owned spec's result to every borrower."""
        fut = self._inflight.pop(spec.key(), None)
        if fut is not None and not fut.done():
            fut.set_result(stats_dict)

    def fail(self, spec: RunSpec, exc: BaseException) -> None:
        """Propagate an owned spec's failure to every borrower (no-op if
        the spec was already resolved)."""
        fut = self._inflight.pop(spec.key(), None)
        if fut is not None and not fut.done():
            fut.set_exception(exc)
            # borrowers (if any) retrieve it on await; this retrieval
            # silences the "exception never retrieved" warning when the
            # failed spec had no borrowers at all
            fut.exception()
