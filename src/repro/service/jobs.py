"""Job lifecycle and the persistent spool that makes the queue durable.

A :class:`Job` is one accepted submission: an ordered list of
:class:`~repro.engine.spec.RunSpec` plus its lifecycle state
(``queued`` → ``running`` → ``done``/``failed``), counters, an
append-only event log that ``GET /jobs/{id}/events`` streams live, and —
once finished — the per-spec results.

Every state transition is written through :class:`JobStore` to one JSON
file per job (``{id}.job.json``, atomic temp-file + ``os.replace`` like
the result cache), so the queue survives restarts: on boot the server
re-enqueues every job the previous process accepted but never finished,
and finished jobs keep answering ``GET /jobs/{id}`` forever.  SIGTERM
drain leans on the same property — in-flight jobs run to completion and
their final write persists the results before the process exits.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
import uuid
from pathlib import Path

from repro.engine.spec import RunSpec

#: states a job can be observed in; terminal ones never change again
STATES = ("queued", "running", "done", "failed")
TERMINAL = frozenset({"done", "failed"})


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


class Job:
    """One accepted submission, observable while it runs."""

    __slots__ = (
        "id", "label", "specs", "state", "created", "started", "finished",
        "error", "counters", "runs", "events", "_flag",
    )

    def __init__(self, specs: list[RunSpec], label: str | None = None,
                 job_id: str | None = None, created: float | None = None):
        self.id = job_id or new_job_id()
        self.label = label
        self.specs = list(specs)
        self.state = "queued"
        self.created = time.time() if created is None else created
        self.started: float | None = None
        self.finished: float | None = None
        self.error: str | None = None
        self.counters = {
            "n_cached": 0, "n_executed": 0, "n_forked": 0,
            "n_coalesced": 0, "warmup_cycles_saved": 0,
            "n_screened": 0, "n_promoted": 0, "cycle_cells_saved": 0,
        }
        #: per-spec result entries, submission-ordered, populated on done
        self.runs: list[dict] = []
        #: append-only progress lines (the /events stream)
        self.events: list[str] = []
        self._flag: asyncio.Event | None = None

    # -- live observation --------------------------------------------------------

    def emit(self, line: str) -> None:
        """Append one progress line and wake every events-stream reader.

        Must be called on the event-loop thread (the engine's progress
        callback marshals through ``loop.call_soon_threadsafe``).
        """
        self.events.append(line)
        if self._flag is not None:
            self._flag.set()

    async def wait_events(self, seen: int) -> None:
        """Block until there are more than ``seen`` event lines, or the
        job reaches a terminal state.

        Appends happen on the loop thread and the re-check after
        ``clear()`` is synchronous, so wakeups cannot be lost.
        """
        if self._flag is None:
            self._flag = asyncio.Event()
        if seen < len(self.events) or self.state in TERMINAL:
            return
        self._flag.clear()
        if seen < len(self.events) or self.state in TERMINAL:
            return
        await self._flag.wait()

    # -- transitions -------------------------------------------------------------

    def mark_running(self) -> None:
        self.state = "running"
        self.started = time.time()
        self.emit(f"job {self.id}: running ({len(self.specs)} specs)")

    def finish_ok(self, runs: list[dict]) -> None:
        self.runs = runs
        self.state = "done"
        self.finished = time.time()
        c = self.counters
        line = (
            f"job {self.id}: done — {c['n_cached']} cached, "
            f"{c['n_executed']} executed, {c['n_forked']} forked, "
            f"{c['n_coalesced']} coalesced"
        )
        if c["n_screened"] or c["n_promoted"]:
            line += (
                f", {c['n_screened']} screened / "
                f"{c['n_promoted']} promoted"
            )
        self.emit(line)

    def finish_failed(self, error: str) -> None:
        self.error = error
        self.state = "failed"
        self.finished = time.time()
        self.emit(f"job {self.id}: failed — {error}")

    # -- persistence -------------------------------------------------------------

    def to_record(self) -> dict:
        """The spool-file representation (specs as plain dicts)."""
        return {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "counters": dict(self.counters),
            "specs": [s.to_dict() for s in self.specs],
            "runs": self.runs,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        job = cls(
            specs=[RunSpec.from_dict(d) for d in record["specs"]],
            label=record.get("label"),
            job_id=record["id"],
            created=record.get("created"),
        )
        job.state = record.get("state", "queued")
        job.started = record.get("started")
        job.finished = record.get("finished")
        job.error = record.get("error")
        job.counters.update(record.get("counters") or {})
        job.runs = record.get("runs") or []
        return job

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.state}, {len(self.specs)} specs)"


class JobStore:
    """One JSON file per job under the spool directory, written
    atomically on every state transition."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()

    def path_for(self, job_id: str) -> Path:
        return self.root / f"{job_id}.job.json"

    def save(self, job: Job) -> Path:
        path = self.path_for(job.id)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(job.to_record(), sort_keys=True).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_all(self) -> list[Job]:
        """Every readable job record, oldest first; unreadable or
        half-written files are skipped (the atomic writer makes those
        rare, but a spool shared with an older format must not wedge
        boot)."""
        jobs = []
        try:
            paths = sorted(self.root.glob("*.job.json"))
        except OSError:
            return []
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    jobs.append(Job.from_record(json.load(fh)))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        jobs.sort(key=lambda j: j.created)
        return jobs

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r})"
