"""Wire schemas: what crosses the HTTP boundary, validated.

A job submission is JSON with either one spec or a batch::

    {"spec": {...RunSpec.to_dict()...}, "label": "fig3 cell"}
    {"specs": [{...}, {...}], "label": "latency sweep"}

``RunSpec`` is already frozen, hashable and JSON-round-trippable — the
spec *is* the wire format, so the service validates by simply parsing
through :meth:`RunSpec.from_dict` and resolving the backend name.  A bad
body raises :class:`WireError`, which the server maps to a 400 instead
of letting a malformed job fail asynchronously after it was accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.engine.backends import get_backend
from repro.engine.spec import RunSpec

#: refuse batches beyond this many specs in one job (a grid this large
#: should be split into several jobs so progress/drain stay responsive)
MAX_SPECS_PER_JOB = 4096


class WireError(ValueError):
    """A client-side protocol error; the server answers 400."""


@dataclass
class JobRequest:
    """One validated job submission."""

    specs: list[RunSpec]
    label: str | None = None


def parse_job_request(body: bytes) -> JobRequest:
    """Parse and validate a ``POST /jobs`` body."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise WireError("body must be a JSON object")
    if ("spec" in doc) == ("specs" in doc):
        raise WireError('body needs exactly one of "spec" or "specs"')
    raw = [doc["spec"]] if "spec" in doc else doc["specs"]
    if not isinstance(raw, list):
        raise WireError('"specs" must be a list of spec objects')
    if not raw:
        raise WireError("a job needs at least one spec")
    if len(raw) > MAX_SPECS_PER_JOB:
        raise WireError(
            f"{len(raw)} specs in one job exceeds the "
            f"{MAX_SPECS_PER_JOB} limit; split the batch"
        )
    specs = []
    for i, d in enumerate(raw):
        if not isinstance(d, dict):
            raise WireError(f"spec[{i}] must be an object")
        try:
            spec = RunSpec.from_dict(d)
        except Exception as exc:
            raise WireError(f"spec[{i}] is not a valid RunSpec: {exc}") from None
        try:
            get_backend(spec.backend)
        except KeyError as exc:
            msg = exc.args[0] if exc.args else exc
            raise WireError(f"spec[{i}]: {msg}") from None
        specs.append(spec)
    label = doc.get("label")
    if label is not None and not isinstance(label, str):
        raise WireError('"label" must be a string')
    return JobRequest(specs=specs, label=label)


def job_summary(job) -> dict:
    """The lightweight job view (``GET /jobs`` listing, POST reply)."""
    return {
        "id": job.id,
        "label": job.label,
        "state": job.state,
        "n_specs": len(job.specs),
        "created": job.created,
        "started": job.started,
        "finished": job.finished,
        "error": job.error,
        "counters": dict(job.counters),
    }


def job_detail(job) -> dict:
    """The full job view (``GET /jobs/{id}``): summary + per-spec runs
    (spec, content key, label and complete stats) once the job is done."""
    doc = job_summary(job)
    doc["runs"] = job.runs
    return doc
