"""Simulation-as-a-service: a long-running job server over the engine.

The engine already owns everything a service needs — content-addressed
:class:`~repro.engine.spec.RunSpec` identity, an on-disk result cache,
and a process-pool scheduler.  This package is the thin, stdlib-only
(``asyncio`` + hand-rolled HTTP/1.1) layer in front of them:

* **Wire** (:mod:`repro.service.wire`) — specs are already frozen,
  hashable and JSON-round-trippable, so *they are the wire format*; this
  module validates job-submission bodies and shapes job/metrics JSON.
* **Jobs** (:mod:`repro.service.jobs`) — the :class:`Job` lifecycle
  (queued → running → done/failed), its live event log, and the
  spool-directory persistence that survives restarts and SIGTERM.
* **Coalescing** (:mod:`repro.service.coalesce`) — in-flight requests
  merge on ``RunSpec.key()``: N concurrent identical submissions cost
  exactly one simulation.
* **Metrics** (:mod:`repro.service.metrics`) — queue depth, job states,
  and the engines' lifetime cached/executed/forked counters, served as
  one JSON document at ``GET /metrics``.
* **Server** (:mod:`repro.service.server`) — the asyncio HTTP front end
  (``POST /jobs``, ``GET /jobs/{id}``, ``GET /jobs/{id}/events``,
  ``GET /metrics``, ``GET /healthz``), its worker pool (one
  :class:`~repro.engine.scheduler.Engine` per worker, all sharing one
  cache directory), and graceful drain on SIGTERM.

Start it with ``repro-sim serve``.
"""

from repro.service.coalesce import Coalescer
from repro.service.jobs import Job, JobStore
from repro.service.metrics import ServiceMetrics
from repro.service.server import SimService
from repro.service.wire import JobRequest, WireError, parse_job_request

__all__ = [
    "Coalescer",
    "Job",
    "JobRequest",
    "JobStore",
    "ServiceMetrics",
    "SimService",
    "WireError",
    "parse_job_request",
]
