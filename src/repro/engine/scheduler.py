"""Execution layer: fan a batch of specs out over worker processes.

:class:`Engine` is the single entry point every experiment driver uses:
``engine.map(specs)`` dedupes the batch, serves what it can from the
in-memory memo and the on-disk cache, executes the misses — in this
process for one worker, over a :class:`~concurrent.futures.Process
PoolExecutor` otherwise — and returns a :class:`SweepResult` keyed by
spec in *submission* order, regardless of completion order. Results are
therefore byte-identical for any worker count.

Worker processes receive plain dicts (``RunSpec.to_dict``) and return
plain dicts (``SimStats.to_dict``), the same representation the cache
stores, so results cross process boundaries without bespoke pickling.

**Forked sweeps.** With ``fork_warmup=N`` the engine additionally
partitions the cycle-backend misses by
:meth:`~repro.engine.spec.RunSpec.warmup_key` — the hash of everything
that shapes the machine through the warm-up boundary.  Cells sharing a
key evolve identically until measurement starts, so each group's warm-up
is simulated **once**, snapshotted (:mod:`repro.engine.snapshot`), and
every other cell restores the snapshot and simulates only its divergent
measured tail.  Results stay byte-identical to cold runs (the snapshot
bit-identity differential suite is the gate); only the wall clock
changes.  Snapshots are content-addressed in the :class:`ResultCache`
beside the results, so a later invocation sweeping new measured budgets
over an already-warmed prefix forks without paying any warm-up at all.
"""

from __future__ import annotations

import copy
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Iterable

from repro.engine.backends import get_backend
from repro.engine.cache import ResultCache
from repro.engine.spec import RunSpec
from repro.stats.counters import SimStats

#: overrides the default worker count (CLI ``--workers`` wins over this)
WORKERS_ENV = "REPRO_WORKERS"

_warned_bad_workers = False


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument > ``$REPRO_WORKERS`` > ``os.cpu_count()``.

    A malformed or non-positive ``$REPRO_WORKERS`` warns once — naming
    the bad value, mirroring ``REPRO_SCALE``'s precedent — and falls
    back to ``os.cpu_count()`` (it used to be swallowed silently, which
    made ``REPRO_WORKERS=fuor`` look like a deliberate all-cores run).
    """
    global _warned_bad_workers
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
            if workers is not None and workers < 1:
                workers = None
            if workers is None and not _warned_bad_workers:
                warnings.warn(
                    f"{WORKERS_ENV}={env!r} is not a positive integer; "
                    "using os.cpu_count()",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _warned_bad_workers = True
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _execute_payload(spec_dict: dict) -> dict:
    """Worker-side entry point (module-level so it pickles)."""
    return RunSpec.from_dict(spec_dict).execute().to_dict()


def _warmup_payload(spec_dict: dict) -> tuple[bytes, dict]:
    """Worker-side fork-group leader: pay the group's shared warm-up once,
    snapshot the boundary, then run this spec's own measured tail.

    Returns ``(snapshot_bytes, stats_dict)`` — the leader's result is
    bit-identical to a cold ``execute()`` because capture is
    non-destructive and the continued run resolves the same budgets.
    """
    from repro.engine.snapshot import capture_warmup

    spec = RunSpec.from_dict(spec_dict)
    snap, proc = capture_warmup(spec)
    kwargs = spec.run_kwargs()
    kwargs["warmup_commits"] = 0
    stats = proc.run(**kwargs)
    return snap.to_bytes(), stats.to_dict()


def _tail_payload(
    spec_dict: dict, snap_path: str | None, snap_bytes: bytes | None
) -> dict:
    """Worker-side fork follower: restore the group snapshot (from the
    cache file when one exists, else from inlined bytes) and simulate
    only this spec's measured tail."""
    from repro.engine.snapshot import Snapshot, run_tail

    data = snap_bytes if snap_bytes is not None else Path(snap_path).read_bytes()
    snap = Snapshot.from_bytes(data)
    return run_tail(RunSpec.from_dict(spec_dict), snap).to_dict()


class SweepResult(dict):
    """``RunSpec -> SimStats`` in submission order, plus hit/miss counts.

    When the batch contained grid-routing specs (the ``"hybrid"``
    backend), ``n_cached``/``n_executed``/``n_forked`` include the
    routed cells' underlying sub-fidelity runs — a hybrid cell costs one
    analytic run plus, if promoted, one cycle run, so these may exceed
    ``n_runs`` — and :attr:`router` maps each routed spec to its routing
    provenance (``fidelity``, ``reason``, the IPC interval, the error
    model's content key).
    """

    def __init__(
        self,
        items,
        n_cached: int = 0,
        n_executed: int = 0,
        n_forked: int = 0,
        warmup_cycles_saved: int = 0,
        n_screened: int = 0,
        n_promoted: int = 0,
        cycle_cells_saved: int = 0,
    ):
        super().__init__(items)
        self.n_cached = n_cached
        self.n_executed = n_executed
        #: cells that restored a warm-up snapshot instead of simulating
        #: their own warm-up region
        self.n_forked = n_forked
        #: simulated warm-up cycles those restores skipped, summed
        self.warmup_cycles_saved = warmup_cycles_saved
        #: routed cells answered analytically (with calibrated error bars)
        self.n_screened = n_screened
        #: routed cells promoted to — and answered by — the cycle backend
        self.n_promoted = n_promoted
        #: cycle runs the router avoided (== n_screened; kept as its own
        #: counter so dashboards don't have to know the identity)
        self.cycle_cells_saved = cycle_cells_saved
        #: ``RunSpec -> provenance dict`` for routed specs (empty otherwise)
        self.router: dict[RunSpec, dict] = {}

    @property
    def n_runs(self) -> int:
        return len(self)

    # Skip-effectiveness of the event-horizon scheduler, summed over the
    # batch (cached results included: the counters describe how the
    # result *was produced*, whichever map call paid for it).
    @property
    def ff_jumps(self) -> int:
        return sum(s.ff_jumps for s in self.values())

    @property
    def ff_cycles_skipped(self) -> int:
        return sum(s.ff_cycles_skipped for s in self.values())


class Engine:
    """Schedules batches of :class:`RunSpec` over workers and caches.

    ``workers=None`` defers to ``$REPRO_WORKERS`` / ``os.cpu_count()`` at
    each ``map`` call; ``workers=1`` executes serially in-process.
    ``cache=None`` disables persistence (an in-memory memo still dedupes
    repeat specs within this engine's lifetime).

    ``fork_warmup=N`` enables forked sweeps: cycle-backend misses sharing
    a :meth:`~repro.engine.spec.RunSpec.warmup_key` in groups of at least
    ``N`` (floor 2) simulate their common warm-up once and fork the
    measured tails from a snapshot; a group of any size forks when the
    cache already holds its warm-up snapshot.  ``fork_warmup=None``
    (default) keeps every cell cold.

    ``progress`` is an optional ``callback(event, spec)`` invoked as each
    result lands — ``event`` is one of ``"cached"``, ``"executed"``,
    ``"forked"``, or for grid-routed (hybrid) specs ``"screened"`` /
    ``"promoted"`` — so long-running maps can be observed live (the job
    server streams these as ``/jobs/{id}/events`` lines).  Callbacks run
    on the scheduling thread between result arrivals; a raising callback
    is swallowed, because observability must never corrupt a sweep.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        fork_warmup: int | None = None,
        progress: Callable[[str, RunSpec], None] | None = None,
    ):
        self.workers = workers
        self.cache = cache
        self.fork_warmup = fork_warmup
        self.progress = progress
        self._memo: dict[RunSpec, SimStats] = {}
        # lifetime totals, summed over every map() call
        self.n_cached = 0
        self.n_executed = 0
        self.n_forked = 0
        self.warmup_cycles_saved = 0
        # multi-fidelity routing totals (hybrid-backend specs only)
        self.n_screened = 0
        self.n_promoted = 0
        self.cycle_cells_saved = 0
        # event-horizon skip effectiveness, summed over fresh simulations
        # (cache hits excluded: their skips were counted when first run)
        self.ff_jumps = 0
        self.ff_cycles_skipped = 0

    @classmethod
    def serial(cls) -> "Engine":
        """One worker, no persistent cache: the unit-test default."""
        return cls(workers=1, cache=None)

    def map(self, specs: Iterable[RunSpec]) -> SweepResult:
        """Run every spec; return results keyed by spec, input-ordered."""
        ordered = list(specs)
        unique = list(dict.fromkeys(ordered))
        # Grid-routing backends (the multi-fidelity router) see the whole
        # batch at once: which cells deserve cycle fidelity is a function
        # of the grid, not of any single spec.  Routed specs bypass the
        # memo/cache on purpose — both underlying fidelities are cached
        # under their own keys, and re-deriving the routing from them
        # (microseconds) is what keeps warm and cold hybrid sweeps
        # byte-identical even when the promote budget changed in between.
        routed = [s for s in unique if get_backend(s.backend).routes_grids]
        direct = (
            unique if not routed
            else [s for s in unique if not get_backend(s.backend).routes_grids]
        )
        done: dict[RunSpec, SimStats] = {}
        misses: list[RunSpec] = []
        for spec in direct:
            hit = self._memo.get(spec)
            if hit is None and self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    self._memo[spec] = hit  # spare later maps the disk read
            if hit is not None:
                # hand out a copy: SimStats is mutable, and a caller
                # touching a counter must not corrupt future hits
                done[spec] = copy.deepcopy(hit)
                self._emit("cached", spec)
            else:
                misses.append(spec)

        n_miss = len(misses)
        n_forked = cycles_saved = 0
        if misses and self.fork_warmup:
            misses, n_forked, cycles_saved = self._map_forked(misses, done)
        if misses:
            # Backends whose per-run cost is microseconds (the analytic
            # model) run in this process: a worker pool would spend far
            # longer on start-up and pickling than on the runs themselves.
            pooled = [
                s for s in misses
                if get_backend(s.backend).process_pool_worthwhile
            ]
            n_workers = min(resolve_workers(self.workers), len(pooled))
            if n_workers > 1:
                inline = [s for s in misses if s not in set(pooled)]
                self._map_parallel(pooled, n_workers, done)
            else:
                inline = misses
            for spec in inline:
                done[spec] = self._record(spec, spec.execute())

        n_cached = len(direct) - n_miss
        self.n_cached += n_cached
        self.n_executed += n_miss
        self.n_forked += n_forked
        self.warmup_cycles_saved += cycles_saved

        routing: dict = {}
        if routed:
            # route_grid maps the sub-fidelity specs through *this*
            # engine (recursive map calls), so the lifetime totals above
            # already absorbed that work; only the routing-specific
            # totals are new here.
            from repro.router.hybrid import route_grid

            routing = route_grid(routed, self, done)
            self.n_screened += routing["n_screened"]
            self.n_promoted += routing["n_promoted"]
            self.cycle_cells_saved += routing["cycle_cells_saved"]

        result = SweepResult(
            ((spec, done[spec]) for spec in unique),
            n_cached=n_cached + routing.get("n_cached", 0),
            n_executed=n_miss + routing.get("n_executed", 0),
            n_forked=n_forked + routing.get("n_forked", 0),
            warmup_cycles_saved=(
                cycles_saved + routing.get("warmup_cycles_saved", 0)
            ),
            n_screened=routing.get("n_screened", 0),
            n_promoted=routing.get("n_promoted", 0),
            cycle_cells_saved=routing.get("cycle_cells_saved", 0),
        )
        result.router = routing.get("provenance", {})
        return result

    def run(self, spec: RunSpec) -> SimStats:
        """Convenience: one spec through the same memo/cache path."""
        return self.map([spec])[spec]

    # -- internals ---------------------------------------------------------------

    def _map_forked(
        self, misses: list[RunSpec], done: dict[RunSpec, SimStats]
    ) -> tuple[list[RunSpec], int, int]:
        """Execute the forkable warm-up groups among ``misses``.

        Returns ``(remaining_misses, n_forked, warmup_cycles_saved)`` —
        specs that cannot fork (wrong backend, no warm-up, group too
        small with no cached snapshot) pass through untouched for the
        ordinary cold path.  Cells whose snapshot restore failed at the
        last moment (a concurrently rewritten ``.snap``) are executed
        cold by the fork paths themselves and reported as unforked.
        """
        from repro.engine.snapshot import Snapshot, SnapshotError

        groups: dict[str, list[RunSpec]] = {}
        plain: list[RunSpec] = []
        for spec in misses:
            if (
                spec.backend == "cycle"
                and spec.run_kwargs()["warmup_commits"] > 0
            ):
                groups.setdefault(spec.warmup_key(), []).append(spec)
            else:
                plain.append(spec)

        threshold = max(2, int(self.fork_warmup))
        snaps: dict[str, Snapshot] = {}
        warm: list[tuple[str, RunSpec]] = []   # groups needing a fresh warm-up
        tails: list[tuple[RunSpec, str]] = []  # cells that restore a snapshot
        for key, members in groups.items():
            snap = None
            if self.cache is not None:
                data = self.cache.get_snapshot(key)
                if data is not None:
                    try:
                        snap = Snapshot.from_bytes(data)
                    except SnapshotError:
                        snap = None  # stale format/version: re-warm
            if snap is not None:
                snaps[key] = snap
                tails.extend((s, key) for s in members)
            elif len(members) >= threshold:
                # the leader pays the warm-up (and runs its own tail in
                # the same process); the rest fork from its snapshot
                warm.append((key, members[0]))
                tails.extend((s, key) for s in members[1:])
            else:
                plain.extend(members)

        n_workers = min(resolve_workers(self.workers), len(warm) + len(tails))
        if n_workers > 1:
            unforked = self._fork_parallel(warm, tails, snaps, done, n_workers)
        else:
            unforked = self._fork_serial(warm, tails, snaps, done)

        forked = [(s, k) for s, k in tails if s not in unforked]
        cycles_saved = sum(snaps[key].meta["cycle"] for _, key in forked)
        return plain, len(forked), cycles_saved

    def _save_snapshot(self, key: str, data: bytes) -> None:
        if self.cache is not None:
            self.cache.put_snapshot(key, data)

    def _fork_serial(self, warm, tails, snaps, done) -> set[RunSpec]:
        from repro.engine.snapshot import SnapshotError, capture_warmup, run_tail

        fallback: set[RunSpec] = set()
        for key, leader in warm:
            snap, proc = capture_warmup(leader)
            kwargs = leader.run_kwargs()
            kwargs["warmup_commits"] = 0
            done[leader] = self._record(leader, proc.run(**kwargs))
            snaps[key] = snap
            self._save_snapshot(key, snap.to_bytes())
        for spec, key in tails:
            try:
                stats = run_tail(spec, snaps[key])
                event = "forked"
            except SnapshotError:
                # a stale/foreign snapshot must not kill the sweep:
                # this cell simply runs cold, counted as unforked
                stats = spec.execute()
                event = "executed"
                fallback.add(spec)
            done[spec] = self._record(spec, stats, event)
        return fallback

    def _fork_parallel(self, warm, tails, snaps, done, n_workers) -> set[RunSpec]:
        from repro.engine.snapshot import Snapshot, SnapshotError

        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            # phase 1: fresh warm-ups, one leader per group (each also
            # produces its own cell's result)
            futures = {
                pool.submit(_warmup_payload, leader.to_dict()): (key, leader)
                for key, leader in warm
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    key, leader = futures[fut]
                    data, stats_dict = fut.result()
                    done[leader] = self._record(
                        leader, SimStats.from_dict(stats_dict)
                    )
                    snaps[key] = Snapshot.from_bytes(data)
                    self._save_snapshot(key, data)
            # phase 2: every other cell restores and runs only its tail;
            # workers read the snapshot from the cache file when there is
            # one (pickling a path beats pickling megabytes per cell)
            futures = {}
            for spec, key in tails:
                if self.cache is not None:
                    ref = (str(self.cache.snapshot_path(key)), None)
                else:
                    ref = (None, snaps[key].to_bytes())
                futures[
                    pool.submit(_tail_payload, spec.to_dict(), *ref)
                ] = spec
            fallback: set[RunSpec] = set()
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    spec = futures[fut]
                    try:
                        stats = SimStats.from_dict(fut.result())
                    except (SnapshotError, OSError):
                        # the follower read a concurrently-rewritten,
                        # corrupt or vanished .snap file; nothing is
                        # wrong with the *cell*, so execute it cold
                        # instead of killing the whole sweep, and count
                        # it as unforked
                        retry = pool.submit(_execute_payload, spec.to_dict())
                        futures[retry] = spec
                        pending.add(retry)
                        fallback.add(spec)
                        continue
                    done[spec] = self._record(
                        spec,
                        stats,
                        "executed" if spec in fallback else "forked",
                    )
        return fallback

    def _record(
        self, spec: RunSpec, stats: SimStats, event: str = "executed"
    ) -> SimStats:
        self._memo[spec] = copy.deepcopy(stats)  # isolate from the caller
        self.ff_jumps += stats.ff_jumps
        self.ff_cycles_skipped += stats.ff_cycles_skipped
        if self.cache is not None:
            self.cache.put(spec, stats)
        self._emit(event, spec)
        return stats

    def _emit(self, event: str, spec: RunSpec) -> None:
        if self.progress is None:
            return
        try:
            self.progress(event, spec)
        except Exception:
            pass  # observability must never corrupt a sweep

    def _map_parallel(
        self,
        misses: list[RunSpec],
        n_workers: int,
        done: dict[RunSpec, SimStats],
    ) -> None:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {
                pool.submit(_execute_payload, spec.to_dict()): spec
                for spec in misses
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    spec = futures[fut]
                    # persist each result as it lands so an interrupted
                    # sweep resumes from what already finished
                    done[spec] = self._record(
                        spec, SimStats.from_dict(fut.result())
                    )


def submit(
    specs: Iterable[RunSpec], engine: Engine | None = None
) -> SweepResult:
    """Run a batch on ``engine``, or serially with no cache when omitted."""
    return (engine or Engine.serial()).map(specs)
