"""Execution layer: fan a batch of specs out over worker processes.

:class:`Engine` is the single entry point every experiment driver uses:
``engine.map(specs)`` dedupes the batch, serves what it can from the
in-memory memo and the on-disk cache, executes the misses — in this
process for one worker, over a :class:`~concurrent.futures.Process
PoolExecutor` otherwise — and returns a :class:`SweepResult` keyed by
spec in *submission* order, regardless of completion order. Results are
therefore byte-identical for any worker count.

Worker processes receive plain dicts (``RunSpec.to_dict``) and return
plain dicts (``SimStats.to_dict``), the same representation the cache
stores, so results cross process boundaries without bespoke pickling.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable

from repro.engine.backends import get_backend
from repro.engine.cache import ResultCache
from repro.engine.spec import RunSpec
from repro.stats.counters import SimStats

#: overrides the default worker count (CLI ``--workers`` wins over this)
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument > ``$REPRO_WORKERS`` > ``os.cpu_count()``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _execute_payload(spec_dict: dict) -> dict:
    """Worker-side entry point (module-level so it pickles)."""
    return RunSpec.from_dict(spec_dict).execute().to_dict()


class SweepResult(dict):
    """``RunSpec -> SimStats`` in submission order, plus hit/miss counts."""

    def __init__(self, items, n_cached: int = 0, n_executed: int = 0):
        super().__init__(items)
        self.n_cached = n_cached
        self.n_executed = n_executed

    @property
    def n_runs(self) -> int:
        return len(self)


class Engine:
    """Schedules batches of :class:`RunSpec` over workers and caches.

    ``workers=None`` defers to ``$REPRO_WORKERS`` / ``os.cpu_count()`` at
    each ``map`` call; ``workers=1`` executes serially in-process.
    ``cache=None`` disables persistence (an in-memory memo still dedupes
    repeat specs within this engine's lifetime).
    """

    def __init__(
        self, workers: int | None = None, cache: ResultCache | None = None
    ):
        self.workers = workers
        self.cache = cache
        self._memo: dict[RunSpec, SimStats] = {}
        # lifetime totals, summed over every map() call
        self.n_cached = 0
        self.n_executed = 0

    @classmethod
    def serial(cls) -> "Engine":
        """One worker, no persistent cache: the unit-test default."""
        return cls(workers=1, cache=None)

    def map(self, specs: Iterable[RunSpec]) -> SweepResult:
        """Run every spec; return results keyed by spec, input-ordered."""
        ordered = list(specs)
        unique = list(dict.fromkeys(ordered))
        done: dict[RunSpec, SimStats] = {}
        misses: list[RunSpec] = []
        for spec in unique:
            hit = self._memo.get(spec)
            if hit is None and self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    self._memo[spec] = hit  # spare later maps the disk read
            if hit is not None:
                # hand out a copy: SimStats is mutable, and a caller
                # touching a counter must not corrupt future hits
                done[spec] = copy.deepcopy(hit)
            else:
                misses.append(spec)

        if misses:
            # Backends whose per-run cost is microseconds (the analytic
            # model) run in this process: a worker pool would spend far
            # longer on start-up and pickling than on the runs themselves.
            pooled = [
                s for s in misses
                if get_backend(s.backend).process_pool_worthwhile
            ]
            n_workers = min(resolve_workers(self.workers), len(pooled))
            if n_workers > 1:
                inline = [s for s in misses if s not in set(pooled)]
                self._map_parallel(pooled, n_workers, done)
            else:
                inline = misses
            for spec in inline:
                done[spec] = self._record(spec, spec.execute())

        n_cached = len(unique) - len(misses)
        self.n_cached += n_cached
        self.n_executed += len(misses)
        return SweepResult(
            ((spec, done[spec]) for spec in unique),
            n_cached=n_cached,
            n_executed=len(misses),
        )

    def run(self, spec: RunSpec) -> SimStats:
        """Convenience: one spec through the same memo/cache path."""
        return self.map([spec])[spec]

    # -- internals ---------------------------------------------------------------

    def _record(self, spec: RunSpec, stats: SimStats) -> SimStats:
        self._memo[spec] = copy.deepcopy(stats)  # isolate from the caller
        if self.cache is not None:
            self.cache.put(spec, stats)
        return stats

    def _map_parallel(
        self,
        misses: list[RunSpec],
        n_workers: int,
        done: dict[RunSpec, SimStats],
    ) -> None:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {
                pool.submit(_execute_payload, spec.to_dict()): spec
                for spec in misses
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    spec = futures[fut]
                    # persist each result as it lands so an interrupted
                    # sweep resumes from what already finished
                    done[spec] = self._record(
                        spec, SimStats.from_dict(fut.result())
                    )


def submit(
    specs: Iterable[RunSpec], engine: Engine | None = None
) -> SweepResult:
    """Run a batch on ``engine``, or serially with no cache when omitted."""
    return (engine or Engine.serial()).map(specs)
