"""Persistence layer: content-addressed on-disk result cache.

Each entry is one JSON file named by :meth:`RunSpec.key` — a stable hash
over the complete spec (including seed and ``REPRO_SCALE``), so a cached
result can only ever be served to the exact simulation that produced it.
Entries store the spec alongside the stats for auditability; a corrupt or
unreadable entry is treated as a miss and overwritten on the next put.

Writes are atomic (temp file + ``os.replace``) so parallel workers and an
interrupted ``figure all`` never leave half-written entries behind.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.engine.spec import SPEC_VERSION, RunSpec
from repro.stats.counters import SimStats

#: overrides the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: standard base-directory override honored by :func:`default_cache_dir`
XDG_CACHE_ENV = "XDG_CACHE_HOME"

#: bump when the on-disk entry layout changes
CACHE_FORMAT = 1

#: ``*.tmp`` files older than this are orphans from killed workers and
#: are swept on the next write; a live writer holds its temp file only
#: for one ``json.dump``, so anything this stale is garbage
ORPHAN_TMP_AGE_S = 3600.0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro-sim`` >
    ``~/.cache/repro-sim``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get(XDG_CACHE_ENV)
    if xdg:
        return Path(xdg).expanduser() / "repro-sim"
    return Path.home() / ".cache" / "repro-sim"


def _current_umask() -> int:
    """The process umask (only readable by momentarily setting it)."""
    mask = os.umask(0o077)
    os.umask(mask)
    return mask


class ResultCache:
    """Maps :class:`RunSpec` -> :class:`SimStats` on disk."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self._swept_orphans = False

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` via temp file + ``os.replace``.

        ``mkstemp`` opens its file 0600 and ``os.replace`` preserves that
        mode — in a cache directory shared across users (CI runners, a
        job server's workers) every other reader would get
        permission-denied, which :meth:`get` reads as a miss, so the
        same runs re-simulate forever.  The temp file is therefore
        re-moded to what a plain ``open()`` would have produced (0666
        masked by the process umask) before it is published.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_orphans()
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            os.chmod(tmp, 0o666 & ~_current_umask())
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _sweep_orphans(self) -> None:
        """Remove stale ``*.tmp`` droppings left by killed workers.

        Runs once per cache instance, before its first write.  Only
        files older than :data:`ORPHAN_TMP_AGE_S` go: a fresh ``.tmp``
        belongs to a concurrent writer that is about to ``os.replace``
        it into place.
        """
        if self._swept_orphans:
            return
        self._swept_orphans = True
        cutoff = time.time() - ORPHAN_TMP_AGE_S
        try:
            candidates = list(self.root.glob("*.tmp"))
        except OSError:
            return
        for tmp in candidates:
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                pass  # raced another sweeper, or the writer came back

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.key()}.json"

    def get(self, spec: RunSpec) -> SimStats | None:
        """The cached result, or ``None`` on a miss.

        Any unreadable entry — missing file, truncated or invalid JSON, a
        JSON document whose root is not an object (``AttributeError`` from
        ``entry.get``), or a malformed ``stats`` payload — reads as a
        miss; the next ``put`` simply overwrites it.

        Entries also embed the :data:`~repro.engine.spec.SPEC_VERSION`
        that produced them, and a mismatch (or its absence, for entries
        written before it was recorded) is a miss.  The version is already
        part of the hashed filename, so this is belt-and-braces: it
        catches entries whose key collided across a version bump or whose
        payload was copied between cache directories by hand.
        """
        path = self.path_for(spec)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT:
                return None
            if entry.get("spec_version") != SPEC_VERSION:
                return None
            return SimStats.from_dict(entry["stats"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def put(self, spec: RunSpec, stats: SimStats) -> Path:
        """Store one result atomically; returns the entry path."""
        path = self.path_for(spec)
        entry = {
            "format": CACHE_FORMAT,
            "spec_version": SPEC_VERSION,
            "key": spec.key(),
            "spec": spec.to_dict(),
            "stats": stats.to_dict(),
        }
        self._write_atomic(
            path, json.dumps(entry, sort_keys=True).encode("utf-8")
        )
        return path

    # -- warm-up snapshots --------------------------------------------------------
    # Snapshots live beside the result entries, addressed by the specs'
    # shared warmup_key and stored with a ``.snap`` suffix so ``__len__``
    # (which counts ``*.json``) and result lookups never see them.

    def snapshot_path(self, warmup_key: str) -> Path:
        return self.root / f"{warmup_key}.snap"

    def get_snapshot(self, warmup_key: str) -> bytes | None:
        """The serialized snapshot for ``warmup_key``, or ``None``.

        Returns raw bytes; the caller validates through
        :meth:`repro.engine.snapshot.Snapshot.from_bytes`, which rejects
        stale formats/spec versions — callers treat that as a miss too.
        """
        try:
            return self.snapshot_path(warmup_key).read_bytes()
        except OSError:
            return None

    def put_snapshot(self, warmup_key: str, data: bytes) -> Path:
        """Store one serialized snapshot atomically."""
        path = self.snapshot_path(warmup_key)
        self._write_atomic(path, data)
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).is_file()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
