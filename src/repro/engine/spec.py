"""Spec layer: frozen run descriptions and declarative sweeps.

A :class:`RunSpec` captures *everything* that determines a simulation's
result — the workload (an open, declarative
:class:`~repro.workloads.spec.WorkloadSpec`: per-thread playlists of
profile references with inline overrides), machine-config overrides,
instruction budgets, RNG seed, the executing backend (``"cycle"`` or
``"analytic"``; see :mod:`repro.engine.backends`) and the ``REPRO_SCALE``
factor in force when the spec was built. Two specs are equal iff the
simulations they describe are identical, so a spec's stable hash
(:meth:`RunSpec.key`) can address a result cache: a cached result can
never be served across different workloads, scale factors, seeds,
configurations or backends, because each of those is part of the key.

The paper's two run shapes are presets, not kinds:
:meth:`RunSpec.multiprogrammed` builds the section-3 rotation and
:meth:`RunSpec.single` the section-2 single-benchmark run, but any
:class:`WorkloadSpec` — a named preset, a JSON/TOML file, or one built in
code — runs through :meth:`RunSpec.from_workload` on either backend.

Budget constants live in :mod:`repro.workloads.spec` (re-exported here
and by the experiment runners): the measured/warm-up commit counts behind
every figure in the paper.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import warnings
from dataclasses import dataclass, field, fields, replace as dataclasses_replace
from typing import Any, Iterable, Iterator

from repro.memory.spec import MemSpec
from repro.router.spec import RouterSpec
from repro.stats.counters import SimStats
from repro.workloads.spec import (
    COMMITS_PER_THREAD,
    SEG_INSTRS,
    SINGLE_COMMITS,
    SINGLE_WARMUP,
    WARMUP_PER_THREAD,
    WorkloadSpec,
)

__all__ = [
    "COMMITS_PER_THREAD",
    "SEG_INSTRS",
    "SINGLE_COMMITS",
    "SINGLE_WARMUP",
    "SPEC_VERSION",
    "WARMUP_PER_THREAD",
    "RunSpec",
    "Sweep",
    "scale_factor",
]

#: bump when the spec schema or execution semantics change incompatibly;
#: part of the hashed payload, so stale cache entries simply stop matching.
#: v2: wrong-path synthesis cycles a pooled PC-wrap period (PR 2).
#: v3: ``kind``/``bench``/``seg_instrs`` replaced by the declarative
#:     ``workload`` (WorkloadSpec) field (PR 4).
#: v4: the declarative ``mem`` (MemSpec) field joins the hashed payload;
#:     the default hierarchy is bit-identical to v3 semantics (PR 5).
SPEC_VERSION = 4

#: ``scale_factor`` never returns less than this (tiny scales would
#: shrink budgets below anything statistically meaningful — see
#: ``_scaled``'s 500-commit floor, which binds first anyway)
SCALE_FLOOR = 0.05

_warned_bad_scale = False


def scale_factor() -> float:
    """Global instruction-budget scale (``REPRO_SCALE`` env var).

    Values are clamped to :data:`SCALE_FLOOR`; a malformed value falls
    back to 1.0 with a one-time :class:`RuntimeWarning` (it used to be
    swallowed silently, which made typos look like slow runs).
    """
    global _warned_bad_scale
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        if not _warned_bad_scale:
            warnings.warn(
                f"REPRO_SCALE={raw!r} is not a float; using 1.0",
                RuntimeWarning,
                stacklevel=2,
            )
            _warned_bad_scale = True
        return 1.0
    return max(SCALE_FLOOR, value)


def _scaled(n: int, scale: float) -> int:
    return max(500, int(n * scale))


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully described. Build via :meth:`from_workload`,
    :meth:`multiprogrammed` or :meth:`single`; execute via
    :meth:`execute` (or hand a batch to the scheduler)."""

    workload: WorkloadSpec
    backend: str = "cycle"        # simulation engine (see engine/backends.py)
    #: declarative memory hierarchy; ``None`` = the classic paper machine
    #: built from the config scalars (see :mod:`repro.memory.spec`).
    #: Identity is by *description*, same as ``workload``: the spec name
    #: is part of the hash, so ``mem=None`` and an explicit ``classic``
    #: preset are distinct cache entries even though they build the same
    #: machine — the cache trades a rare duplicate run for never having
    #: to prove two descriptions equivalent.
    mem: MemSpec | None = None
    #: multi-fidelity router configuration (see :mod:`repro.router`);
    #: only the ``"hybrid"`` backend reads it. ``None`` means the router
    #: defaults — and is also what rides in retargeted sub-specs, so a
    #: promoted cell shares its cache entry with a plain cycle run.
    #: Serialized only when set, keeping every pre-router spec hash (and
    #: therefore the whole cache and golden corpus) stable.
    router: RouterSpec | None = None
    l2_latency: int = 16
    decoupled: bool = True
    scale_with_latency: bool = False   # section-2 resource scaling
    seed: int = 0
    commits: int | None = None    # pre-scale budget override, per thread
    warmup: int | None = None
    scale: float = 1.0            # REPRO_SCALE captured at spec build time
    config_overrides: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        workload: WorkloadSpec,
        l2_latency: int = 16,
        decoupled: bool = True,
        scale_with_latency: bool = False,
        seed: int = 0,
        commits: int | None = None,
        warmup: int | None = None,
        scale: float | None = None,
        backend: str = "cycle",
        mem: MemSpec | None = None,
        router: RouterSpec | None = None,
        **config_overrides,
    ) -> "RunSpec":
        """Any declarative workload — preset, file or hand-built — on a
        configured machine. ``commits``/``warmup`` are per-thread,
        pre-scale; unset they defer to the workload's budget hints."""
        return cls(
            workload=workload,
            backend=backend,
            mem=mem,
            router=router,
            l2_latency=l2_latency,
            decoupled=decoupled,
            scale_with_latency=scale_with_latency,
            seed=seed,
            commits=commits,
            warmup=warmup,
            scale=scale_factor() if scale is None else scale,
            config_overrides=tuple(sorted(config_overrides.items())),
        )

    @classmethod
    def multiprogrammed(
        cls,
        n_threads: int,
        l2_latency: int = 16,
        decoupled: bool = True,
        seed: int = 0,
        commits_per_thread: int | None = None,
        warmup_per_thread: int | None = None,
        seg_instrs: int = SEG_INSTRS,
        scale: float | None = None,
        backend: str = "cycle",
        mem: MemSpec | None = None,
        router: RouterSpec | None = None,
        **config_overrides,
    ) -> "RunSpec":
        """A paper-section-3 run: rotated SPEC FP95 mix on all contexts
        (a thin preset over :meth:`from_workload`)."""
        return cls.from_workload(
            WorkloadSpec.rotation(n_threads, seg_instrs=seg_instrs),
            l2_latency=l2_latency,
            decoupled=decoupled,
            seed=seed,
            commits=commits_per_thread,
            warmup=warmup_per_thread,
            scale=scale,
            backend=backend,
            mem=mem,
            router=router,
            **config_overrides,
        )

    @classmethod
    def single(
        cls,
        bench: str,
        l2_latency: int = 16,
        decoupled: bool = True,
        scale_with_latency: bool = True,
        seed: int = 0,
        commits: int | None = None,
        warmup: int | None = None,
        scale: float | None = None,
        backend: str = "cycle",
        mem: MemSpec | None = None,
        router: RouterSpec | None = None,
        **config_overrides,
    ) -> "RunSpec":
        """A paper-section-2 run: a single benchmark on one context (a
        thin preset over :meth:`from_workload`). The trace segment covers
        the whole measured window, so the playlist never wraps early."""
        scale = scale_factor() if scale is None else scale
        seg = max(_scaled(commits or SINGLE_COMMITS, scale), 20_000)
        return cls.from_workload(
            WorkloadSpec.single(bench, seg_instrs=seg),
            l2_latency=l2_latency,
            decoupled=decoupled,
            scale_with_latency=scale_with_latency,
            seed=seed,
            commits=commits,
            warmup=warmup,
            scale=scale,
            backend=backend,
            mem=mem,
            router=router,
            **config_overrides,
        )

    def __post_init__(self):
        if not isinstance(self.workload, WorkloadSpec):
            raise ValueError(
                f"workload must be a WorkloadSpec, got "
                f"{type(self.workload).__name__}"
            )
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError("backend must be a non-empty string")
        if self.mem is not None and not isinstance(self.mem, MemSpec):
            raise ValueError(
                f"mem must be a MemSpec or None, got "
                f"{type(self.mem).__name__}"
            )
        if self.router is not None and not isinstance(self.router, RouterSpec):
            raise ValueError(
                f"router must be a RouterSpec or None, got "
                f"{type(self.router).__name__}"
            )

    # -- identity ----------------------------------------------------------------

    @property
    def n_threads(self) -> int:
        return self.workload.n_threads

    def to_dict(self) -> dict:
        """JSON-safe representation; round-trips through :meth:`from_dict`.

        ``router`` is emitted only when set: every spec without router
        config keeps the exact serialization (and content hash) it had
        before the router subsystem existed, so the result cache and the
        golden corpus survived the field's introduction untouched.
        """
        doc = {
            "workload": self.workload.to_dict(),
            "backend": self.backend,
            "mem": self.mem.to_dict() if self.mem is not None else None,
            "l2_latency": self.l2_latency,
            "decoupled": self.decoupled,
            "scale_with_latency": self.scale_with_latency,
            "seed": self.seed,
            "commits": self.commits,
            "warmup": self.warmup,
            "scale": self.scale,
            "config_overrides": dict(self.config_overrides),
        }
        if self.router is not None:
            doc["router"] = self.router.to_dict()
        return doc

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        kw["workload"] = WorkloadSpec.from_dict(d["workload"])
        if d.get("mem") is not None:
            kw["mem"] = MemSpec.from_dict(d["mem"])
        else:
            kw.pop("mem", None)
        if d.get("router") is not None:
            kw["router"] = RouterSpec.from_dict(d["router"])
        else:
            kw.pop("router", None)
        kw["config_overrides"] = tuple(
            sorted((d.get("config_overrides") or {}).items())
        )
        return cls(**kw)

    def key(self) -> str:
        """Stable content hash; the cache filename stem."""
        payload = json.dumps(
            {"spec_version": SPEC_VERSION, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def warmup_key(self) -> str:
        """Stable hash of everything that shapes the machine *through the
        warm-up boundary* — the fork key of the checkpoint subsystem.

        Two specs with equal warmup keys are guaranteed to evolve
        cycle-identically from reset to the end of warm-up: the measured
        commit budget is the **only** spec field that first takes effect
        after that boundary, so it is the only field masked out.  The
        scheduler groups sweep cells by this key, simulates the shared
        warm-up once, and forks each cell's measured tail from the
        snapshot (see :mod:`repro.engine.snapshot`).
        """
        payload = json.dumps(
            {"spec_version": SPEC_VERSION, **self.to_dict(), "commits": None},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable description for logs and JSON output."""
        mode = "dec" if self.decoupled else "non-dec"
        tail = "" if self.mem is None else f" mem={self.mem.name}"
        tail += "" if self.backend == "cycle" else f" [{self.backend}]"
        return f"{self.workload.label()} L2={self.l2_latency} {mode}{tail}"

    # -- execution ---------------------------------------------------------------

    def machine_config(self):
        """The :class:`~repro.core.config.MachineConfig` this spec runs on
        (shared by every backend, so config semantics can never drift)."""
        from repro.core.config import paper_config

        return paper_config(
            n_threads=self.workload.n_threads,
            decoupled=self.decoupled,
            l2_latency=self.l2_latency,
            scale_with_latency=self.scale_with_latency,
            mem=self.mem,
            **dict(self.config_overrides),
        )

    def budgets(self) -> tuple[int, int]:
        """``(measured_commits, warmup_commits)`` — totals over threads.

        Per-thread budgets resolve as: explicit spec override, else the
        workload's hint, else the rotation defaults; then the scale
        factor and the 500-commit floor apply per thread.
        """
        wl = self.workload
        meas = self.commits or wl.default_commits or COMMITS_PER_THREAD
        warm = self.warmup or wl.default_warmup or WARMUP_PER_THREAD
        return (
            _scaled(meas, self.scale) * wl.n_threads,
            _scaled(warm, self.scale) * wl.n_threads,
        )

    def playlists(self) -> list:
        """One trace playlist per hardware context (cached trace objects)."""
        return self.workload.playlists(seed=self.seed)

    def run_kwargs(self) -> dict:
        """The resolved ``Processor.run`` arguments for this spec.

        Shared by :meth:`instantiate` and the snapshot-restore tail path
        (which zeroes ``warmup_commits`` after restoring at the warm-up
        boundary) so budget resolution can never drift between them.
        """
        commits, warmup = self.budgets()
        max_cycles = 8_000_000 if self.workload.n_threads == 1 else 4_000_000
        return dict(
            max_commits=commits, warmup_commits=warmup, max_cycles=max_cycles
        )

    def instantiate(self) -> tuple:
        """Build the configured machine and its run budgets.

        Returns ``(processor, run_kwargs)`` so callers that need the
        machine itself — the perf harness times ``proc.run(**kwargs)`` in
        isolation, with workload construction excluded — share one
        spec-to-machine translation with :meth:`execute`.
        """
        # imported here so the spec layer stays importable without pulling
        # the whole pipeline in (and to keep worker start-up lazy)
        from repro.core.processor import Processor

        cfg = self.machine_config()
        proc = Processor(cfg, self.playlists(), seed=self.seed)
        return proc, self.run_kwargs()

    def with_backend(self, backend: str) -> "RunSpec":
        """This spec re-targeted at another backend (new cache identity)."""
        if backend == self.backend:
            return self
        return dataclasses_replace(self, backend=backend)

    def execute(self) -> SimStats:
        """Run this spec on its backend (``"cycle"`` runs the staged
        kernel via :meth:`instantiate`; others dispatch through the
        backend registry)."""
        from repro.engine.backends import get_backend

        return get_backend(self.backend).run(self)


def _as_axis(value) -> tuple:
    """One grid axis: scalars (and strings) are single-point axes."""
    if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
        return (value,)
    return tuple(value)


class Sweep:
    """An ordered batch of :class:`RunSpec`, built declaratively.

    ``Sweep.grid(factory, a=(1, 2), b=("x", "y"))`` expands the Cartesian
    product in axis-declaration order (last axis fastest) and calls
    ``factory(a=..., b=...)`` for each point; scalar axis values are held
    constant. Sweeps concatenate with ``+`` and keep duplicates — the
    scheduler dedupes at submission time.
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[RunSpec] = ()):
        self.specs: tuple[RunSpec, ...] = tuple(specs)

    @classmethod
    def of(cls, *specs: RunSpec) -> "Sweep":
        return cls(specs)

    @classmethod
    def grid(cls, factory, **axes) -> "Sweep":
        names = list(axes)
        values = [_as_axis(axes[name]) for name in names]
        return cls(
            factory(**dict(zip(names, point)))
            for point in itertools.product(*values)
        )

    def filter(self, pred) -> "Sweep":
        return Sweep(s for s in self.specs if pred(s))

    def deduped(self) -> "Sweep":
        return Sweep(dict.fromkeys(self.specs))

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(self.specs + tuple(other))

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __getitem__(self, i):
        return self.specs[i]

    def __repr__(self) -> str:
        return f"Sweep({len(self.specs)} specs)"
