"""Spec layer: frozen run descriptions and declarative sweeps.

A :class:`RunSpec` captures *everything* that determines a simulation's
result — workload, machine-config overrides, instruction budgets, RNG seed,
the executing backend (``"cycle"`` or ``"analytic"``; see
:mod:`repro.engine.backends`) and the ``REPRO_SCALE`` factor in force when
the spec was built. Two specs are equal iff the simulations they describe
are identical, so a spec's stable hash (:meth:`RunSpec.key`) can address a
result cache: a cached result can never be served across different scale
factors, seeds, configurations or backends, because each of those is part
of the key.

Budget constants live here (the experiment runners re-export them): the
measured/warm-up commit counts behind every figure in the paper.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field, fields, replace as dataclasses_replace
from typing import Any, Iterable, Iterator

from repro.stats.counters import SimStats

#: bump when the spec schema or execution semantics change incompatibly;
#: part of the hashed payload, so stale cache entries simply stop matching.
#: v2: wrong-path synthesis cycles a pooled PC-wrap period (PR 2).
SPEC_VERSION = 2

#: measured commits per hardware context in multithreaded runs
COMMITS_PER_THREAD = 15_000
#: warm-up commits per hardware context (discarded)
WARMUP_PER_THREAD = 8_000
#: trace segment length per benchmark in multiprogrammed playlists
SEG_INSTRS = 20_000
#: single-benchmark (section 2) budgets
SINGLE_COMMITS = 30_000
SINGLE_WARMUP = 15_000


def scale_factor() -> float:
    """Global instruction-budget scale (``REPRO_SCALE`` env var)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_SCALE", "1.0")))
    except ValueError:
        return 1.0


def _scaled(n: int, scale: float) -> int:
    return max(500, int(n * scale))


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully described. Build via :meth:`multiprogrammed`
    or :meth:`single`; execute via :meth:`execute` (or hand a batch to the
    scheduler)."""

    kind: str                     # "multi" | "single"
    backend: str = "cycle"        # simulation engine (see engine/backends.py)
    bench: str = ""               # single-benchmark name ("" for multi)
    n_threads: int = 1
    l2_latency: int = 16
    decoupled: bool = True
    scale_with_latency: bool = False   # section-2 resource scaling (single)
    seed: int = 0
    commits: int | None = None    # pre-scale budget override (per thread
    warmup: int | None = None     # for "multi", total for "single")
    seg_instrs: int = SEG_INSTRS  # multiprogrammed playlist segment length
    scale: float = 1.0            # REPRO_SCALE captured at spec build time
    config_overrides: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def multiprogrammed(
        cls,
        n_threads: int,
        l2_latency: int = 16,
        decoupled: bool = True,
        seed: int = 0,
        commits_per_thread: int | None = None,
        warmup_per_thread: int | None = None,
        seg_instrs: int = SEG_INSTRS,
        scale: float | None = None,
        backend: str = "cycle",
        **config_overrides,
    ) -> "RunSpec":
        """A paper-section-3 run: rotated SPEC FP95 mix on all contexts."""
        return cls(
            kind="multi",
            backend=backend,
            n_threads=n_threads,
            l2_latency=l2_latency,
            decoupled=decoupled,
            seed=seed,
            commits=commits_per_thread,
            warmup=warmup_per_thread,
            seg_instrs=seg_instrs,
            scale=scale_factor() if scale is None else scale,
            config_overrides=tuple(sorted(config_overrides.items())),
        )

    @classmethod
    def single(
        cls,
        bench: str,
        l2_latency: int = 16,
        decoupled: bool = True,
        scale_with_latency: bool = True,
        seed: int = 0,
        commits: int | None = None,
        warmup: int | None = None,
        scale: float | None = None,
        backend: str = "cycle",
        **config_overrides,
    ) -> "RunSpec":
        """A paper-section-2 run: a single benchmark on one context."""
        return cls(
            kind="single",
            backend=backend,
            bench=bench,
            n_threads=1,
            l2_latency=l2_latency,
            decoupled=decoupled,
            scale_with_latency=scale_with_latency,
            seed=seed,
            commits=commits,
            warmup=warmup,
            scale=scale_factor() if scale is None else scale,
            config_overrides=tuple(sorted(config_overrides.items())),
        )

    def __post_init__(self):
        if self.kind not in ("multi", "single"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.kind == "single" and not self.bench:
            raise ValueError("single-benchmark specs need a bench name")
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError("backend must be a non-empty string")

    # -- identity ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation; round-trips through :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "backend": self.backend,
            "bench": self.bench,
            "n_threads": self.n_threads,
            "l2_latency": self.l2_latency,
            "decoupled": self.decoupled,
            "scale_with_latency": self.scale_with_latency,
            "seed": self.seed,
            "commits": self.commits,
            "warmup": self.warmup,
            "seg_instrs": self.seg_instrs,
            "scale": self.scale,
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        kw["config_overrides"] = tuple(
            sorted((d.get("config_overrides") or {}).items())
        )
        return cls(**kw)

    def key(self) -> str:
        """Stable content hash; the cache filename stem."""
        payload = json.dumps(
            {"spec_version": SPEC_VERSION, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable description for logs and JSON output."""
        mode = "dec" if self.decoupled else "non-dec"
        tail = "" if self.backend == "cycle" else f" [{self.backend}]"
        if self.kind == "single":
            return f"{self.bench} L2={self.l2_latency} {mode}{tail}"
        return f"{self.n_threads}T L2={self.l2_latency} {mode}{tail}"

    # -- execution ---------------------------------------------------------------

    def machine_config(self):
        """The :class:`~repro.core.config.MachineConfig` this spec runs on
        (shared by every backend, so config semantics can never drift)."""
        from repro.core.config import paper_config

        overrides = dict(self.config_overrides)
        if self.kind == "multi":
            return paper_config(
                n_threads=self.n_threads,
                decoupled=self.decoupled,
                l2_latency=self.l2_latency,
                **overrides,
            )
        return paper_config(
            n_threads=1,
            decoupled=self.decoupled,
            l2_latency=self.l2_latency,
            scale_with_latency=self.scale_with_latency,
            **overrides,
        )

    def budgets(self) -> tuple[int, int]:
        """``(measured_commits, warmup_commits)`` — totals over threads."""
        if self.kind == "multi":
            return (
                _scaled(self.commits or COMMITS_PER_THREAD, self.scale)
                * self.n_threads,
                _scaled(self.warmup or WARMUP_PER_THREAD, self.scale)
                * self.n_threads,
            )
        return (
            _scaled(self.commits or SINGLE_COMMITS, self.scale),
            _scaled(self.warmup or SINGLE_WARMUP, self.scale),
        )

    def playlists(self) -> list:
        """One trace playlist per hardware context (cached trace objects)."""
        from repro.workloads.multiprogram import multiprogram, single_program

        if self.kind == "multi":
            return multiprogram(
                self.n_threads, seg_instrs=self.seg_instrs, seed=self.seed
            )
        commits, _warmup = self.budgets()
        return single_program(
            self.bench, n_instrs=max(commits, 20_000), seed=self.seed
        )

    def instantiate(self) -> tuple:
        """Build the configured machine and its run budgets.

        Returns ``(processor, run_kwargs)`` so callers that need the
        machine itself — the perf harness times ``proc.run(**kwargs)`` in
        isolation, with workload construction excluded — share one
        spec-to-machine translation with :meth:`execute`.
        """
        # imported here so the spec layer stays importable without pulling
        # the whole pipeline in (and to keep worker start-up lazy)
        from repro.core.processor import Processor

        cfg = self.machine_config()
        commits, warmup = self.budgets()
        proc = Processor(cfg, self.playlists(), seed=self.seed)
        max_cycles = 4_000_000 if self.kind == "multi" else 8_000_000
        return proc, dict(
            max_commits=commits, warmup_commits=warmup, max_cycles=max_cycles
        )

    def with_backend(self, backend: str) -> "RunSpec":
        """This spec re-targeted at another backend (new cache identity)."""
        if backend == self.backend:
            return self
        return dataclasses_replace(self, backend=backend)

    def execute(self) -> SimStats:
        """Run this spec on its backend (``"cycle"`` runs the staged
        kernel via :meth:`instantiate`; others dispatch through the
        backend registry)."""
        from repro.engine.backends import get_backend

        return get_backend(self.backend).run(self)


def _as_axis(value) -> tuple:
    """One grid axis: scalars (and strings) are single-point axes."""
    if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
        return (value,)
    return tuple(value)


class Sweep:
    """An ordered batch of :class:`RunSpec`, built declaratively.

    ``Sweep.grid(factory, a=(1, 2), b=("x", "y"))`` expands the Cartesian
    product in axis-declaration order (last axis fastest) and calls
    ``factory(a=..., b=...)`` for each point; scalar axis values are held
    constant. Sweeps concatenate with ``+`` and keep duplicates — the
    scheduler dedupes at submission time.
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[RunSpec] = ()):
        self.specs: tuple[RunSpec, ...] = tuple(specs)

    @classmethod
    def of(cls, *specs: RunSpec) -> "Sweep":
        return cls(specs)

    @classmethod
    def grid(cls, factory, **axes) -> "Sweep":
        names = list(axes)
        values = [_as_axis(axes[name]) for name in names]
        return cls(
            factory(**dict(zip(names, point)))
            for point in itertools.product(*values)
        )

    def filter(self, pred) -> "Sweep":
        return Sweep(s for s in self.specs if pred(s))

    def deduped(self) -> "Sweep":
        return Sweep(dict.fromkeys(self.specs))

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(self.specs + tuple(other))

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __getitem__(self, i):
        return self.specs[i]

    def __repr__(self) -> str:
        return f"Sweep({len(self.specs)} specs)"
