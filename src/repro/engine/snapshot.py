"""Checkpoint/restore: full-fidelity machine snapshots and forking.

A :class:`Snapshot` freezes a mid-run cycle machine — the complete
:class:`~repro.core.state.MachineState`: every thread context (rename
files, queues, ROB, predictor, wrong-path generator cursor), the composed
memory hierarchy (tag/LRU/dirty arrays, MSHR occupancy, bus schedule,
prefetcher training state) and the in-flight completion-event heap — and
restores it **bit-identically**: running a restored machine to completion
produces exactly the statistics and final machine state an unbroken run
would have (``tests/test_snapshot.py`` gates this differentially, the
same way the idle-cycle fast-forward is gated).

What is *not* serialized, and why that is safe:

* **Trace playlists** — multi-megabyte but fully deterministic in
  ``(workload, seed)`` (crc32-derived RNG seeding in
  :mod:`repro.workloads.synth`), so contexts pickle only their cursors
  and :meth:`restore` re-synthesises the playlists from the spec.
* **Wrong-path pools** — a pure function of the per-thread seed
  (:class:`~repro.workloads.wrongpath.WrongPathGenerator` rebuilds them
  lazily); only the cyclic-stream cursor is state.
* **Fast-path closures** — the spec-specialized ``load``/``store``
  installed by :mod:`repro.memory.fastpath` capture live arrays and
  cannot cross a pickle; the facade drops them and re-specializes over
  the restored arrays, so a snapshot even restores correctly *across*
  ``REPRO_GENERIC_MEM`` settings (the two paths are bit-identical by
  contract).

The payload is a zlib-compressed highest-protocol pickle behind a JSON
meta header (format, spec version, capture cycle, fork key).  Snapshots
interoperate only within one :data:`SNAPSHOT_FORMAT` /
:data:`~repro.engine.spec.SPEC_VERSION` pair — a mismatch reads as
:class:`SnapshotError`, which cache layers treat as a miss.

Forking (the scheduler's warmup amortization) builds on two helpers:
:func:`capture_warmup` runs a spec's warm-up region once and snapshots at
the measured-region boundary; :func:`run_tail` restores that snapshot
under any spec sharing the same :meth:`~repro.engine.spec.RunSpec.
warmup_key` and simulates only the divergent measured region.
"""

from __future__ import annotations

import json
import pickle
import zlib

from repro.core.processor import Processor
from repro.core.state import MachineState
from repro.engine.spec import SPEC_VERSION, RunSpec
from repro.stats.counters import SimStats

#: bump when the snapshot payload layout changes incompatibly
SNAPSHOT_FORMAT = 1

_MAGIC = b"repro-snap\n"


class SnapshotError(ValueError):
    """A snapshot could not be parsed or does not match the given spec."""


class Snapshot:
    """One frozen machine state, with enough metadata to validate reuse."""

    __slots__ = ("meta", "payload")

    def __init__(self, meta: dict, payload: bytes):
        self.meta = meta
        self.payload = payload

    # -- capture ----------------------------------------------------------------

    @classmethod
    def capture(cls, proc: Processor, spec: RunSpec | None = None) -> "Snapshot":
        """Freeze ``proc``'s complete machine state (non-destructively:
        the processor keeps running unaffected).

        ``spec`` stamps the snapshot with the spec's identity and fork
        key so :meth:`restore` can refuse a mismatched reuse; omit it
        only for ad-hoc captures of hand-built machines.
        """
        payload = zlib.compress(
            pickle.dumps(proc.state, protocol=pickle.HIGHEST_PROTOCOL)
        )
        meta = {
            "format": SNAPSHOT_FORMAT,
            "spec_version": SPEC_VERSION,
            "spec_key": spec.key() if spec is not None else None,
            "warmup_key": spec.warmup_key() if spec is not None else None,
            "cycle": proc.state.cycle,
            "total_committed": proc.state.total_committed,
            "ff_jumps": proc.ff_jumps,
            "ff_cycles_skipped": proc.ff_cycles_skipped,
        }
        return cls(meta, payload)

    # -- (de)serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        header = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        return _MAGIC + header + b"\n" + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        """Parse a serialized snapshot (header only — the pickled state
        stays compressed until :meth:`restore` needs it)."""
        if not data.startswith(_MAGIC):
            raise SnapshotError("not a repro-sim snapshot (bad magic)")
        try:
            header, payload = data[len(_MAGIC):].split(b"\n", 1)
            meta = json.loads(header.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"corrupt snapshot header: {exc}") from None
        if not isinstance(meta, dict) or meta.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot format {meta.get('format')!r} != "
                f"{SNAPSHOT_FORMAT} (incompatible writer)"
            )
        if meta.get("spec_version") != SPEC_VERSION:
            raise SnapshotError(
                f"snapshot spec_version {meta.get('spec_version')!r} != "
                f"{SPEC_VERSION} (stale semantics)"
            )
        return cls(meta, payload)

    # -- restore ----------------------------------------------------------------

    def restore(self, spec: RunSpec) -> Processor:
        """Thaw a fresh, independent :class:`Processor` continuing from
        this snapshot under ``spec``.

        ``spec`` must share the snapshot's fork key (everything that
        shapes the machine up to the capture point: workload, seed,
        machine/memory configuration, warm-up budget, scale); only the
        measured-region budget may differ.  Each call unpickles its own
        state, so one snapshot can fan out to many diverging tails.
        """
        want = self.meta.get("warmup_key")
        if want is not None and spec.warmup_key() != want:
            raise SnapshotError(
                f"snapshot was captured for warmup_key {want} but "
                f"{spec.label()!r} has {spec.warmup_key()} — the specs "
                "diverge before the capture point"
            )
        state = pickle.loads(zlib.decompress(self.payload))
        if not isinstance(state, MachineState):
            raise SnapshotError(
                f"snapshot payload is {type(state).__name__}, "
                "not a MachineState"
            )
        state.rebind_playlists(spec.playlists())
        # the fast-forward diagnostics travel inside the pickled SimStats
        # (the header copies are informational only)
        return Processor.from_state(state)


# -- forking helpers (the scheduler's warmup amortization) ----------------------


def capture_warmup(spec: RunSpec) -> tuple[Snapshot, Processor]:
    """Simulate ``spec``'s warm-up region once and snapshot the machine
    at the measured-region boundary (statistics freshly zeroed, exactly
    the state an unbroken run would measure from).

    Returns ``(snapshot, processor)`` — the live processor can keep
    running its own measured region (capture is non-destructive), so the
    cell that paid for the warm-up need not pay again to restore.
    """
    proc, kwargs = spec.instantiate()
    warmup = kwargs.get("warmup_commits", 0)
    if warmup:
        proc.run(max_commits=warmup, max_cycles=None)
        proc.reset_stats()
    return Snapshot.capture(proc, spec=spec), proc


def run_tail(spec: RunSpec, snap: Snapshot) -> SimStats:
    """Execute only ``spec``'s measured region, continuing from ``snap``.

    Bit-identical to ``spec.execute()`` when the snapshot sits at the
    spec's own warm-up boundary (the differential suite's core claim).
    """
    proc = snap.restore(spec)
    kwargs = spec.run_kwargs()
    kwargs["warmup_commits"] = 0
    return proc.run(**kwargs)
