"""Backend registry: pluggable simulation engines behind one protocol.

A *backend* turns a :class:`~repro.engine.spec.RunSpec` into a
:class:`~repro.stats.counters.SimStats`. Two ship with the repo:

* ``"cycle"`` — the faithful staged cycle-accurate kernel
  (:class:`CycleBackend`, defined here); the reference semantics.
* ``"analytic"`` — the mean-value fast model (:mod:`repro.model.analytic`),
  which predicts the same metrics in microseconds per run and is validated
  against ``"cycle"`` by the differential conformance suite
  (``repro-sim conformance``).

A third, ``"hybrid"`` (:mod:`repro.router.hybrid`), is a grid-routing
*meta*-backend over the other two: it screens every cell analytically
with calibrated error bars and promotes only the cells that matter to
the cycle kernel (see :attr:`Backend.routes_grids`).

The backend name is part of every spec — and therefore of its content hash
— so the result cache can never serve one backend's numbers to the other.
Backends register themselves at import time via :func:`register_backend`;
:func:`get_backend` lazily imports the built-in providers, so importing the
spec layer never drags the whole model (or pipeline) in.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from repro.stats.counters import SimStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.spec import RunSpec


class Backend:
    """One simulation engine: ``run(spec) -> SimStats``.

    Subclasses set :attr:`name` and implement :meth:`run`. A backend whose
    per-run cost is far below process start-up (the analytic model) keeps
    :attr:`process_pool_worthwhile` at ``False`` and the scheduler executes
    its specs in the submitting process even when a worker pool is up.

    The default is ``False`` deliberately: freshly spawned worker
    processes only know the built-in providers, so a backend registered
    at runtime via :func:`register_backend` would be unresolvable there —
    in-process execution is the only safe default. Built-ins that worker
    processes can re-import (the cycle kernel) opt in to pooling.
    """

    #: registry key; also the value of ``RunSpec.backend``
    name = "backend"
    #: whether shipping a run to a worker process can ever pay off (and
    #: the worker can resolve this backend by name — see class docstring)
    process_pool_worthwhile = False
    #: a grid-routing meta-backend (the multi-fidelity router): the
    #: scheduler hands its specs to :func:`repro.router.hybrid.route_grid`
    #: as one batch instead of executing them cell by cell, because its
    #: decisions (which cells deserve cycle fidelity) are functions of
    #: the *whole* grid, not of any single spec
    routes_grids = False

    def run(self, spec: "RunSpec") -> SimStats:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CycleBackend(Backend):
    """The faithful staged cycle-accurate kernel (reference semantics)."""

    name = "cycle"
    process_pool_worthwhile = True

    def run(self, spec: "RunSpec") -> SimStats:
        proc, run_kwargs = spec.instantiate()
        return proc.run(**run_kwargs)


_REGISTRY: dict[str, Backend] = {}

#: built-in providers, imported on first lookup so ``repro.engine`` stays
#: light; a provider module registers its backend(s) at import time
_BUILTIN_PROVIDERS = {
    "cycle": "repro.engine.backends",
    "analytic": "repro.model.analytic",
    "hybrid": "repro.router.hybrid",
}


def register_backend(backend: Backend) -> Backend:
    """Add (or replace) a backend under ``backend.name``."""
    if not backend.name or not isinstance(backend.name, str):
        raise ValueError("backend needs a non-empty string name")
    if backend.name == Backend.name:
        raise ValueError(
            f"{type(backend).__name__} kept the Backend base class's "
            f"placeholder name {Backend.name!r}; set a real `name`"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend, lazily importing built-in providers."""
    backend = _REGISTRY.get(name)
    if backend is None:
        provider = _BUILTIN_PROVIDERS.get(name)
        if provider is not None:
            importlib.import_module(provider)
            backend = _REGISTRY.get(name)
    if backend is None:
        from repro.workloads.profiles import did_you_mean

        known = sorted(set(_REGISTRY) | set(_BUILTIN_PROVIDERS))
        raise KeyError(
            f"unknown backend {name!r}{did_you_mean(name, known)}; "
            f"known: {', '.join(known)}"
        )
    return backend


def backend_names() -> list[str]:
    """Every selectable backend name (registered or built-in)."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_PROVIDERS))


register_backend(CycleBackend())
