"""Declarative experiment engine.

The engine decouples *describing* an experiment from *executing* it — the
same split the paper applies to the processor pipeline. Three layers:

* **Spec** (:mod:`repro.engine.spec`) — :class:`RunSpec` is a frozen,
  hashable description of one simulation (workload + config overrides +
  budgets + seed + ``REPRO_SCALE``); :class:`Sweep` expands grids of specs
  declaratively.
* **Execution** (:mod:`repro.engine.scheduler`) — :class:`Engine` fans a
  batch of specs out over a process pool (serial fallback for one worker)
  and returns results keyed by spec, in submission order regardless of
  completion order.
* **Persistence** (:mod:`repro.engine.cache`) — :class:`ResultCache` is a
  content-addressed on-disk store keyed by :meth:`RunSpec.key`, so reruns
  and interrupted sweeps resume for free.
* **Backends** (:mod:`repro.engine.backends`) — the registry mapping
  ``RunSpec.backend`` names to simulation engines: ``"cycle"`` (the staged
  cycle-accurate kernel), ``"analytic"`` (the mean-value fast model in
  :mod:`repro.model`) and ``"hybrid"`` (the multi-fidelity router in
  :mod:`repro.router`: analytic screens with calibrated error bars,
  cycle verifies the cells that matter). The name is part of the spec's
  content hash, so the cache never mixes backends.

Typical driver::

    sweep = Sweep.grid(RunSpec.multiprogrammed,
                       n_threads=(1, 2, 4), l2_latency=(16, 64))
    results = Engine(workers=4, cache=ResultCache()).map(sweep)
    for spec in sweep:
        print(spec.n_threads, spec.l2_latency, results[spec].ipc)
"""

from repro.engine.backends import (
    Backend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.engine.scheduler import (
    WORKERS_ENV,
    Engine,
    SweepResult,
    resolve_workers,
    submit,
)
from repro.engine.spec import RunSpec, Sweep, scale_factor
from repro.router.spec import RouterSpec

__all__ = [
    "Backend",
    "CACHE_DIR_ENV",
    "Engine",
    "RouterSpec",
    "backend_names",
    "get_backend",
    "register_backend",
    "ResultCache",
    "RunSpec",
    "Sweep",
    "SweepResult",
    "WORKERS_ENV",
    "default_cache_dir",
    "resolve_workers",
    "scale_factor",
    "submit",
]
