"""Mean-value/queueing solver: the ``"analytic"`` backend.

Predicts IPC, perceived load-miss latency, bus utilization and the
per-unit issue-slot breakdown for one :class:`~repro.engine.spec.RunSpec`
from a timing-free workload characterization
(:mod:`repro.model.charwalk`) plus the machine configuration — in
microseconds per run instead of the cycle kernel's seconds.

The model is a damped fixed point over aggregate useful IPC ``x``:

1. **Miss traffic.** Line fills per cycle ``lam = x * phi`` (``phi`` =
   fills per instruction from the walk); bus occupancy per line ``B =
   line_bytes / bus_bytes_per_cycle`` plus the dirty-victim write-back
   ratio gives utilization ``rho``, and an M/D/1 term ``rho*B/(2(1-rho))``
   adds queueing delay to the miss round trip
   ``L_m = C_MISS_FIXED + l2_latency + B + Wq``.
2. **Merged misses.** Walk hits whose line age (per-thread instructions)
   is inside the in-flight window ``L_m / CPI_t`` — capped at the run-
   ahead distance, since in-order issue cannot start a load past a
   stalled consumer — are re-classified as secondary misses, so miss
   *ratios* grow with latency and decoupling exactly as the lockup-free
   cache's do, and their consumers pay only the *residual* fill time.
3. **Slip ceiling (decoupled).** The AP can run ahead of the EP until a
   window resource fills: the EP instruction queue (``iq_size/f_ep``),
   the spare physical registers, the ROB, the SAQ, or — usually binding —
   the unresolved-branch limit (``max_unresolved_branches/f_branch``).
   FTOI loss-of-decoupling events collapse the slip, capping it at half
   the inter-FTOI distance. Perceived FP latency is
   ``max(0, L_m - slip/IPC_t)``; integer (index) loads hide only their
   software-pipelined scheduling distance. Non-decoupled machines hide
   only the static load-to-use distance (``ND_USE_FRAC * iter_len``).
4. **Memory CPI.** Loads issue in back-to-back bursts before the first
   consumer can block, so fill latencies within a burst overlap and only
   one stall per *cluster* is exposed: ``c_mem = kappa * einv *
   (phi_c*(L_m - hide_c) + residual_c)`` summed over load classes, with
   ``einv`` the measured clusters-per-fill ratio and ``kappa`` a
   per-mode calibration constant. The same quantity divided by the miss
   rate *is* the paper's perceived-latency statistic.
5. **SMT sharing.** Issue, dispatch, fetch, L1-port and commit widths are
   shared demands (``f_u * T / width``); aggregate throughput is
   additionally capped by the bus (``1/(B*phi*(1+wb))``) and the MSHR
   file (``mshrs/(L_m*phi)``, Little's law again).

Calibration: the ``CAL`` constants below were fitted against the cycle
backend over the paper's Figure-4 grid (``repro-sim conformance`` reports
the current error; DESIGN.md documents the tolerances and the refresh
workflow). Everything else is first-principles from the config and walk.
"""

from __future__ import annotations

from repro.engine.backends import Backend, register_backend
from repro.model.charwalk import (
    CLS_LOAD_FP,
    CLS_LOAD_INT,
    CLS_STORE,
    WorkloadCharacter,
    characterize,
)
from repro.stats.counters import (
    SLOT_IDLE,
    SLOT_OTHER,
    SLOT_USEFUL,
    SLOT_WAIT_FU,
    SLOT_WAIT_MEM,
    SLOT_WRONG_PATH,
    SimStats,
)

#: calibration constants (fitted once against the cycle backend on the
#: Figure-4 grid; see DESIGN.md "Validation methodology")
CAL = {
    # fixed per-miss overhead beyond L2 latency + bus transfer
    # (address generation + fill-to-wakeup + drain asymmetries)
    "C_MISS_FIXED": 6.0,
    # memory-stall scaling, per mode
    "KAPPA_DEC": 1.05,
    "KAPPA_ND": 1.35,
    # slip collapse: achieved slip <= LOD_SLIP_FRAC * inter-FTOI distance
    "LOD_SLIP_FRAC": 0.5,
    # non-decoupled static load-to-use distance, as a fraction of the
    # inner-loop body length
    "ND_USE_FRAC": 0.35,
    # in-order EP chain ILP beyond the raw chain count (restart overlap)
    "EP_CHAIN_BOOST": 1.2,
    # branch misprediction penalty (redirect + refill), cycles
    "BR_PENALTY": 8.0,
    # wrong-path instructions issued per misprediction (slot pollution)
    "WP_ISSUE_PER_MP": 6.0,
    # fraction of the slip window the AP sustains on average (queue
    # occupancy never sits exactly at the ceiling)
    "SLIP_OCCUPANCY": 0.74,
}

_EPS = 1e-9
_MAX_ITER = 200
_DAMP = 0.5
_TOL = 1e-6


def _merged_stats(
    char: WorkloadCharacter, cls: int, l_miss: float, cpi_t: float,
    hide: float, window_cap: float,
) -> tuple[float, float]:
    """Merged secondary misses and their residual stall, per instruction.

    A walk hit whose line age ``a`` (per-thread instructions) satisfies
    ``a * cpi_t < l_miss`` would have found the line still in flight — a
    merged miss whose consumer waits the *residual* fill time
    ``l_miss - a*cpi_t`` minus whatever the run-ahead hides. In-order
    issue additionally caps the window at the run-ahead distance
    (``window_cap``, instructions): a load further behind the stalled
    consumer than that never issues while the line is still in flight.
    Bucket ``b`` holds ages in ``[2**(b-1), 2**b)``; buckets fully inside
    the window count whole (evaluated at their midpoint), the straddling
    bucket linearly.

    Returns ``(merged_per_instr, residual_stall_per_instr)``.
    """
    window = min(l_miss / max(cpi_t, _EPS), window_cap)
    if window <= 1.0:
        return 0.0, 0.0
    hist = char.reuse[cls]
    merged = 0.0
    stall = 0.0
    for b, count in enumerate(hist):
        if not count:
            continue
        lo = 0.0 if b == 0 else float(1 << (b - 1))
        hi = float(1 << b)
        if lo >= window:
            continue
        frac = 1.0 if hi <= window else (window - lo) / (hi - lo)
        mid = (lo + min(hi, window)) / 2.0
        merged += count * frac
        stall += count * frac * max(0.0, l_miss - mid * cpi_t - hide)
    n = max(1, char.instrs)
    return merged / n, stall / n


class AnalyticSolution:
    """All solved quantities for one spec (pre-SimStats synthesis)."""

    __slots__ = (
        "ipc", "l_miss", "rho", "perceived_fp", "perceived_int",
        "merged_fp", "merged_int", "merged_st", "slip", "cpi_parts",
    )


def solve(spec, cfg, char: WorkloadCharacter) -> AnalyticSolution:
    """Run the fixed point for one spec; returns the solved quantities."""
    n = max(1, char.instrs)
    T = cfg.n_threads
    f = char.f
    f_ep = f["falu"] + f["ftoi"]
    f_ap = 1.0 - f_ep
    f_mem = f["load_fp"] + f["load_int"] + f["store"]
    f_apdest = f["ialu"] + f["load_int"] + f["ftoi"]
    f_epdest = f["falu"] + f["load_fp"] + f["itof"]
    mp = char.mispredicts / n

    phi_fp = char.fills_fp / n
    phi_int = char.fills_int / n
    phi_st = char.fills_st / n
    phi = phi_fp + phi_int + phi_st
    fills = char.fills_fp + char.fills_int + char.fills_st
    wb_ratio = char.writebacks / max(1, fills)
    #: prefetch fills per instruction: pure interconnect traffic (their
    #: latency is hidden by definition; their *usefulness* already shows
    #: up as reduced demand fills and short-age reuse entries)
    pf = char.prefetch_fills / n

    ms = cfg.memory()
    fifo_bus = ms.interconnect.policy == "fifo"
    # whole cycles per line transfer, mirroring Bus.cycles_per_line —
    # a fractional B would under-price occupancy for widths that do not
    # divide (or exceed) the line size
    B = float(max(1, -(-cfg.line_bytes // ms.interconnect.bytes_per_cycle)))
    # expected fill-service latency through the level stack: every fill
    # pays the levels it visits (walk-measured reach fractions), a miss
    # past the last level pays the backing-store latency — the classic
    # infinite L2 reduces to exactly cfg.l2_latency
    L2 = 0.0
    reach = float(fills)
    for k, lvl in enumerate(ms.levels[1:]):
        L2 += lvl.hit_latency * (reach / fills if fills else 1.0)
        reach = float(char.outer_misses[k]) if k < len(char.outer_misses) else 0.0
    L2 += ms.memory_latency * (reach / fills if fills else 0.0)
    l0 = ms.levels[0]
    kappa = CAL["KAPPA_DEC"] if cfg.decoupled else CAL["KAPPA_ND"]
    # exposed-stall fraction: one stall per load-fill cluster
    einv = char.load_fill_clusters / max(1, char.fills_fp + char.fills_int)
    einv = min(1.0, max(0.05, einv))

    # dependence-limited EP rate per thread (chains of ep_latency ops;
    # chain restarts from freshly loaded values overlap, which buys a
    # little more ILP than the chain count alone — hence the boost)
    r_chain = min(
        float(cfg.ep_width),
        CAL["EP_CHAIN_BOOST"] * char.ep_chains / cfg.ep_latency,
    )

    # slip window (instructions the AP can run ahead), decoupled only
    if cfg.decoupled:
        windows = [
            cfg.iq_size / max(f_ep, _EPS),
            cfg.saq_size / max(f["store"], _EPS),
            (cfg.ap_regs - 32) / max(f_apdest, _EPS),
            (cfg.ep_regs - 32) / max(f_epdest, _EPS),
            float(cfg.rob_size),
            cfg.max_unresolved_branches / max(f["branch"], _EPS),
        ]
        slip_ceiling = CAL["SLIP_OCCUPANCY"] * min(windows)
        if char.lod_per_instr > 0:
            d_lod = 1.0 / char.lod_per_instr
            slip_ceiling = min(slip_ceiling, CAL["LOD_SLIP_FRAC"] * d_lod)
    else:
        slip_ceiling = 0.0

    # hard throughput caps independent of the fixed point
    fetch_rate = min(T, cfg.fetch_threads) * cfg.fetch_width
    #: interconnect lines per instruction: demand fills + write-backs +
    #: prefetch fills all occupy the shared bus
    traffic = phi * (1.0 + wb_ratio) + pf
    caps = [
        cfg.ap_width / max(f_ap, _EPS),
        cfg.ep_width / max(f_ep, _EPS),
        float(cfg.dispatch_width),
        l0.ports / max(f_mem, _EPS),
        float(fetch_rate),
        float(cfg.commit_width * T),
    ]
    if traffic > 0 and fifo_bus:
        caps.append(1.0 / (B * traffic))
    x = min(float(T), min(caps))

    sol = AnalyticSolution()
    for _ in range(_MAX_ITER):
        x_t = x / T
        cpi_t = 1.0 / max(x_t, _EPS)

        # -- miss round trip under bus + MSHR contention -------------------
        rho = min(0.98, x * traffic * B)
        wq = rho * B / (2.0 * max(1.0 - rho, 0.02)) if fifo_bus else 0.0
        l_miss = CAL["C_MISS_FIXED"] + L2 + B + wq

        # -- run-ahead hiding ----------------------------------------------
        if cfg.decoupled:
            run_ahead = slip_ceiling
            hide_fp = slip_ceiling * cpi_t
            hide_int = char.int_use_dist * cpi_t
        else:
            run_ahead = CAL["ND_USE_FRAC"] * char.iter_len
            hide_fp = run_ahead * cpi_t
            hide_int = max(char.int_use_dist * cpi_t, hide_fp)

        # -- merged secondary misses (lockup-free window) -------------------
        merged_fp, resid_fp = _merged_stats(
            char, CLS_LOAD_FP, l_miss, cpi_t, hide_fp, run_ahead
        )
        merged_int, resid_int = _merged_stats(
            char, CLS_LOAD_INT, l_miss, cpi_t, hide_int, run_ahead
        )
        # stores drain post-commit and never block the window
        merged_st, _ = _merged_stats(
            char, CLS_STORE, l_miss, cpi_t, 0.0, float("inf")
        )

        # -- exposed memory stall -------------------------------------------
        # A burst of loads issues back-to-back before the first consumer
        # can block, so their fill latencies overlap: only one stall per
        # *cluster* is exposed (einv = clusters per load fill).
        p_prim_fp = max(0.0, l_miss - hide_fp)
        p_prim_int = max(0.0, l_miss - hide_int)
        stall_fp = (phi_fp * p_prim_fp + resid_fp) * einv
        stall_int = (phi_int * p_prim_int + resid_int) * einv

        # -- CPI assembly ---------------------------------------------------
        c_issue = max(
            f_ap * T / cfg.ap_width,
            f_ep * T / cfg.ep_width,
            f_ep / max(r_chain, _EPS),
            T / cfg.dispatch_width,
            f_mem * T / cfg.l1_ports,
            T / fetch_rate,
            1.0 / cfg.commit_width,
        )
        c_mem = kappa * (stall_fp + stall_int)
        c_br = mp * CAL["BR_PENALTY"]
        x_new = T / (c_issue + c_mem + c_br)

        # shared-resource ceilings (bus and MSHR by Little's law)
        x_new = min(x_new, *caps)
        if phi > 0 and l0.mshrs is not None:
            x_new = min(x_new, l0.mshrs / (l_miss * phi))

        if abs(x_new - x) < _TOL:
            x = x_new
            break
        x = (1.0 - _DAMP) * x + _DAMP * x_new

    sol.ipc = x
    sol.l_miss = l_miss
    sol.rho = min(1.0, x * traffic * B)
    # the perceived-latency statistic averages consumer stall cycles over
    # all misses (primary + merged), which is exactly stall / miss-rate
    sol.perceived_fp = stall_fp / max(phi_fp + merged_fp, _EPS)
    sol.perceived_int = stall_int / max(phi_int + merged_int, _EPS)
    sol.merged_fp = merged_fp
    sol.merged_int = merged_int
    sol.merged_st = merged_st
    sol.slip = slip_ceiling
    sol.cpi_parts = (c_issue, c_mem, c_br)
    return sol


def _synthesize_stats(spec, cfg, char: WorkloadCharacter,
                      sol: AnalyticSolution) -> SimStats:
    """Fill a complete SimStats from the solved model, with exact
    issue-slot conservation (``cycles * width == sum(breakdown)``)."""
    stats = SimStats()
    committed = char.instrs
    cycles = max(1, int(round(committed / max(sol.ipc, _EPS))))
    T = cfg.n_threads

    stats.cycles = cycles
    stats.committed = committed
    base, rem = divmod(committed, T)
    stats.committed_per_thread = {
        t: base + (1 if t < rem else 0) for t in range(T)
    }

    # mix (walk totals are exact for the measured window)
    stats.branches = char.branches
    stats.branch_mispredicts = char.mispredicts
    stats.squashes = char.mispredicts
    wp_issued = int(round(char.mispredicts * CAL["WP_ISSUE_PER_MP"]))
    stats.squashed_instructions = wp_issued
    stats.fetched = committed + 2 * wp_issued
    stats.fetched_wrong_path = 2 * wp_issued
    stats.dispatched = committed + wp_issued
    stats.issued = committed + wp_issued
    stats.issued_wrong_path = wp_issued

    stats.loads_fp = char.loads_fp
    stats.loads_int = char.loads_int
    stats.stores = char.stores
    stats.load_misses_fp = char.fills_fp
    stats.load_misses_int = char.fills_int
    stats.store_misses = char.fills_st
    stats.load_merged_fp = int(round(sol.merged_fp * char.instrs))
    stats.load_merged_int = int(round(sol.merged_int * char.instrs))
    stats.store_merged = int(round(sol.merged_st * char.instrs))

    misses_fp = stats.load_misses_fp + stats.load_merged_fp
    misses_int = stats.load_misses_int + stats.load_merged_int
    stats.perceived_stall_fp = int(round(sol.perceived_fp * misses_fp))
    stats.perceived_stall_int = int(round(sol.perceived_int * misses_int))

    # decoupling diagnostics
    ep_issued = char.falu + char.ftoi
    stats.slip_samples = ep_issued
    stats.slip_total = int(round(sol.slip * ep_issued)) if cfg.decoupled else 0

    stats.bus_utilization = sol.rho
    stats.line_fills = char.fills_fp + char.fills_int + char.fills_st
    stats.writebacks = char.writebacks
    stats.mshr_alloc_failures = 0
    stats.level_stats = {
        lvl.name: {
            "hits": char.outer_hits[k] if k < len(char.outer_hits) else 0,
            "misses": (
                char.outer_misses[k] if k < len(char.outer_misses) else 0
            ),
            "writebacks": (
                char.outer_writebacks[k]
                if k < len(char.outer_writebacks) else 0
            ),
            "mshr_failures": 0,
        }
        for k, lvl in enumerate(cfg.memory().levels[1:])
    }
    stats.prefetch_fills = char.prefetch_fills
    stats.prefetch_hits = char.prefetch_hits

    # -- issue-slot breakdown, exactly conserved ---------------------------
    useful_ap = (char.ialu + char.loads_fp + char.loads_int + char.stores
                 + char.branches + char.itof)
    useful_ep = char.falu + char.ftoi
    _fill_slots(stats, 0, cycles * cfg.ap_width, useful_ap,
                wp_issued, stats.perceived_stall_int, sol, cfg)
    _fill_slots(stats, 1, cycles * cfg.ep_width, useful_ep,
                0, stats.perceived_stall_fp, sol, cfg)
    return stats


def _fill_slots(stats: SimStats, unit: int, total: int, useful: int,
                wrong_path: int, perceived_stalls: int,
                sol: AnalyticSolution, cfg) -> None:
    """One unit's slot row: useful/wrong-path are exact counts; the
    remaining slots split between wait-mem (perceived-stall cycles block
    the whole unit width), wait-FU (dependence), other (structural) and
    idle, conserving ``total`` exactly."""
    row = stats.slot_counts[unit]
    useful = min(useful, total)
    wrong_path = min(wrong_path, total - useful)
    rem = total - useful - wrong_path
    width = cfg.ap_width if unit == 0 else cfg.ep_width
    wait_mem = min(rem, int(round(perceived_stalls * max(1, width - 1))))
    rem -= wait_mem
    # dependence (wait-FU) share of what's left, from the CPI split
    c_issue, c_mem, c_br = sol.cpi_parts
    busy = c_issue + c_mem + c_br
    fu_frac = (c_issue / busy) if busy > 0 else 0.0
    wait_fu = min(rem, int(round(rem * fu_frac * 0.5)))
    rem -= wait_fu
    row[SLOT_USEFUL] = useful
    row[SLOT_WRONG_PATH] = wrong_path
    row[SLOT_WAIT_MEM] = wait_mem
    row[SLOT_WAIT_FU] = wait_fu
    row[SLOT_OTHER] = 0
    row[SLOT_IDLE] = rem


class AnalyticBackend(Backend):
    """The mean-value fast model (see module docstring)."""

    name = "analytic"
    #: per-run cost is microseconds: never worth a worker process
    process_pool_worthwhile = False

    def run(self, spec) -> SimStats:
        cfg = spec.machine_config()
        char = characterize(spec, cfg)
        sol = solve(spec, cfg, char)
        return _synthesize_stats(spec, cfg, char, sol)


register_backend(AnalyticBackend())
