"""Functional characterization walk for the analytic backend.

The mean-value model needs workload facts the cycle simulator discovers
dynamically: the instruction mix of the *measured window*, branch-predictor
accuracy, L1 miss rates under the real multi-thread set-conflict geometry,
line-reuse distances (for estimating merged secondary misses) and dirty-
victim rates (write-back bus traffic). All of these are properties of the
workload and the cache/predictor *geometry* alone — they do not depend on
latencies, queue depths or the decoupling mode — so they can be computed by
a single timing-free pass and reused across every point of a sweep.

The walk mirrors the cycle backend's measurement protocol exactly: thread
``t`` executes its playlist from the start, the first ``warmup`` committed
instructions warm the cache and predictor without being counted, and the
next ``measured`` instructions are tallied. Threads advance in lockstep
round-robin (the cycle machine's ICOUNT fetch keeps per-thread progress
balanced), which reproduces the cross-thread L1 set conflicts behind the
paper's "miss ratios increase progressively [with threads]" observation.

Reuse histograms: every L1 hit records the line's age — per-thread
instructions since the line was installed — in power-of-two buckets. At
solve time, hits younger than the in-flight window (miss latency divided by
per-thread CPI) are re-classified as merged secondary misses, which is how
the model's miss *ratios* grow with latency the way the cycle backend's do.

Results are cached per :func:`character_key` (an ``lru_cache`` keyed by
the frozen, content-hashed :class:`~repro.workloads.spec.WorkloadSpec`
plus budgets and cache/predictor geometry), so a 1000-spec sweep over
latencies and modes pays for a handful of walks — and any declarative
workload, not just the paper's rotation, characterizes the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import MachineConfig
from repro.core.context import region_salts
from repro.core.predictor import BimodalBHT
from repro.isa.opclass import OpClass
from repro.memory.levels import HIT, CacheLevel, InfiniteLevel, L1Cache
from repro.memory.prefetch import build_prefetcher
from repro.workloads.profiles import BenchProfile
from repro.workloads.spec import WorkloadSpec

#: number of power-of-two reuse-age buckets (ages up to 2**23 instructions)
N_AGE_BUCKETS = 24

#: two load fills of one thread within this many instructions of each
#: other belong to one latency-overlap cluster (the synthesizer emits a
#: benchmark's loads as one consecutive block per iteration)
CLUSTER_GAP = 8

_OP_LOAD_F = OpClass.LOAD_F
_OP_LOAD_I = OpClass.LOAD_I
_OP_STORE_F = OpClass.STORE_F
_OP_STORE_I = OpClass.STORE_I
_OP_BRANCH = OpClass.BRANCH
_OP_FALU = OpClass.FALU
_OP_IALU = OpClass.IALU
_OP_ITOF = OpClass.ITOF
_OP_FTOI = OpClass.FTOI

# reuse-histogram class indices
CLS_LOAD_FP = 0
CLS_LOAD_INT = 1
CLS_STORE = 2


@dataclass(frozen=True)
class WorkloadCharacter:
    """Timing-free facts about one measured workload window."""

    n_threads: int
    instrs: int                 # measured instructions, total over threads

    # instruction mix (measured region, totals)
    ialu: int
    falu: int
    loads_fp: int
    loads_int: int
    stores: int
    branches: int
    mispredicts: int
    itof: int
    ftoi: int

    # L1 behaviour (measured region, totals)
    fills_fp: int               # primary line fetches by FP loads
    fills_int: int
    fills_st: int
    writebacks: int             # dirty victims evicted by measured fills
    #: per outer level (stack order): demand fills served there / missed
    #: there — the finite-L2 miss stream the solver turns into an
    #: expected fill-service latency
    outer_hits: tuple[int, ...]
    outer_misses: tuple[int, ...]
    outer_writebacks: tuple[int, ...]
    #: prefetch fills issued (bus traffic) and the demand accesses they
    #: covered; coverage also shows up as *reduced* ``fills_*`` and as
    #: short-age reuse-histogram entries (-> merged misses at solve time)
    prefetch_fills: int
    prefetch_hits: int
    #: load-fill *clusters*: consecutive load fills of one thread within
    #: CLUSTER_GAP instructions overlap their latencies (the loads issue
    #: back-to-back before the first consumer can block), so only one
    #: stall per cluster is exposed. ``clusters / load fills`` is the
    #: exposed-stall fraction.
    load_fill_clusters: int
    #: per class, hits bucketed by line age in per-thread instructions
    #: (bucket ``b`` holds ages in ``[2**(b-1), 2**b)``; bucket 0 is age 0)
    reuse: tuple[tuple[int, ...], ...]

    # profile-derived structure, blended over the measured window
    #: independent EP dependence chains (ILP available to in-order issue)
    ep_chains: float
    #: instructions per inner-loop iteration (scheduling-distance unit)
    iter_len: float
    #: software-pipelined distance (instructions) from an integer index
    #: load to its consuming gather load
    int_use_dist: float
    #: fraction of instructions that are FTOI loss-of-decoupling events
    lod_per_instr: float

    @property
    def f(self) -> dict:
        """Per-instruction frequencies of the measured mix."""
        n = max(1, self.instrs)
        return {
            "ialu": self.ialu / n,
            "falu": self.falu / n,
            "load_fp": self.loads_fp / n,
            "load_int": self.loads_int / n,
            "store": self.stores / n,
            "branch": self.branches / n,
            "itof": self.itof / n,
            "ftoi": self.ftoi / n,
        }


def character_key(spec, cfg: MachineConfig) -> tuple:
    """Everything the walk result depends on, as a hashable key.

    Keyed on the workload itself — :class:`WorkloadSpec` is frozen and
    hashes by content, so two specs with identical workloads share a
    walk no matter how they were built. The memory hierarchy enters as
    its :meth:`~repro.memory.spec.MemSpec.geometry` (capacities,
    associativity, sharing, prefetch policy — every *timing* field
    normalized away), so the walk stays latency-free and all points of a
    latency x mode x bus-width sweep share one characterization.
    """
    commits, warmup = spec.budgets()
    n_threads = spec.workload.n_threads
    return (
        spec.workload,
        spec.seed,
        commits // n_threads,
        warmup // n_threads,
        cfg.memory().geometry(),
        cfg.line_bytes,
        cfg.bht_entries,
        cfg.salt_stream_bytes,
        cfg.salt_store_bytes,
        cfg.salt_hot_bytes,
    )


def characterize(spec, cfg: MachineConfig) -> WorkloadCharacter:
    """The (cached) characterization of one spec's measured window."""
    return _characterize(character_key(spec, cfg))


class _WalkPrefetchPort:
    """Adapter letting the *runtime* prefetcher policies drive the
    timing-free walk: ``try_prefetch`` installs the line immediately
    (fills are instantaneous in a timing-free world). Reusing
    :func:`~repro.memory.prefetch.build_prefetcher` keeps the walk's
    prefetch decisions in lockstep with the cycle machine's."""

    __slots__ = ("fill",)

    def __init__(self, fill):
        self.fill = fill

    def try_prefetch(self, line: int, now: int, tid: int) -> bool:
        return self.fill(line, tid)


@lru_cache(maxsize=128)
def _characterize(key: tuple) -> WorkloadCharacter:
    (
        workload, seed, meas_pt, warm_pt,
        geometry, line_bytes, bht_entries,
        salt_stream, salt_store, salt_hot,
    ) = key
    assert isinstance(workload, WorkloadSpec)
    # the numpy-vectorized walk handles the classic geometry (infinite
    # outer levels, no prefetcher) ~an order of magnitude faster and is
    # equality-tested against this interpreter; exotic geometries and
    # numpy-free installs take the loop below
    from repro.model import charwalk_np

    if (warm_pt + meas_pt) > 0 and charwalk_np.eligible(geometry):
        return charwalk_np.characterize_np(
            workload, seed, meas_pt, warm_pt, geometry, line_bytes,
            bht_entries, salt_stream, salt_store, salt_hot,
        )
    n_threads = workload.n_threads
    playlists = workload.playlists(seed=seed)
    profiles = workload.profiles()

    # -- the memory geometry (capacities/sharing only; walk is timing-free)
    l0 = geometry.levels[0]
    if l0.shared or n_threads == 1:
        l1s = [L1Cache(l0.capacity_bytes, line_bytes)]
    else:
        l1s = [
            L1Cache(l0.capacity_bytes // n_threads, line_bytes)
            for _ in range(n_threads)
        ]
    line_shift = line_bytes.bit_length() - 1
    # per-L1-slice, per-set install bookkeeping for reuse ages
    install_tick = [[0] * l1.n_sets for l1 in l1s]
    outer = [
        InfiniteLevel()
        if lvl.capacity_bytes is None
        else CacheLevel(
            lvl.capacity_bytes, line_bytes, assoc=lvl.assoc,
            partitions=1 if lvl.shared else n_threads,
        )
        for lvl in geometry.levels[1:]
    ]
    n_outer = len(outer)
    outer_hits = [0] * n_outer
    outer_misses = [0] * n_outer
    outer_wb = [0] * n_outer

    # per-thread walk state (salting shared with the cycle backend's
    # ThreadContext via core.context.region_salts)
    cfg = MachineConfig(
        n_threads=n_threads,
        salt_stream_bytes=salt_stream,
        salt_store_bytes=salt_store,
        salt_hot_bytes=salt_hot,
    )
    bhts = [BimodalBHT(bht_entries) for _ in range(n_threads)]
    salted = [region_salts(cfg, t) for t in range(n_threads)]
    salts = [default for default, _by_region in salted]
    salt_region = [by_region for _default, by_region in salted]
    play_idx = [0] * n_threads
    pos = [0] * n_threads
    ticks = [0] * n_threads          # per-thread instruction counters

    counts = dict(
        ialu=0, falu=0, loads_fp=0, loads_int=0, stores=0,
        branches=0, mispredicts=0, itof=0, ftoi=0,
        fills_fp=0, fills_int=0, fills_st=0, writebacks=0,
        load_fill_clusters=0, prefetch_fills=0, prefetch_hits=0,
    )
    last_load_fill = [-(10 * CLUSTER_GAP)] * n_threads
    reuse = [[0] * N_AGE_BUCKETS for _ in range(3)]
    bench_weight: dict[str, int] = {}
    measuring = False

    def outer_fill(line: int, t: int, l1, addr: int, dirty: bool,
                   prefetched: bool, count: bool) -> bool:
        """Mirror the facade's fill path exactly: plan (pure peeks),
        touch the serving level, install into the L1 (evicting the
        victim into the first outer level when dirty), then land the
        line in every missed level. Returns whether the L1 victim was
        dirty (a write-back in the cycle machine)."""
        serving = None
        missed = []
        for k in range(n_outer):
            if outer[k].peek(line, t):
                serving = k
                break
            missed.append(k)
        if serving is not None:
            outer[serving].touch(line, t)
            if count:
                outer_hits[serving] += 1
        if count:
            for k in missed:
                outer_misses[k] += 1
        victim, victim_dirty = l1.install(
            addr, 0, 0, make_dirty=dirty, prefetched=prefetched
        )
        if victim_dirty and n_outer:
            if outer[0].install(victim, t, dirty=True) and measuring:
                outer_wb[0] += 1
        for k in missed:
            if outer[k].install(line, t, dirty=False) and measuring:
                outer_wb[k] += 1
        return victim_dirty

    def prefetch_fill(line: int, t: int) -> bool:
        bank = t % len(l1s)
        l1 = l1s[bank]
        addr = line << line_shift
        outcome, idx, _when = l1.probe(addr, 0)
        if outcome == HIT:
            return False
        victim_dirty = outer_fill(
            line, t, l1, addr, dirty=False, prefetched=True, count=False
        )
        install_tick[bank][idx] = ticks[t]
        if measuring:
            counts["prefetch_fills"] += 1
            if victim_dirty:
                counts["writebacks"] += 1
        return True

    prefetcher = build_prefetcher(geometry.prefetch)
    pf_port = _WalkPrefetchPort(prefetch_fill)

    budget = warm_pt + meas_pt
    for step in range(budget):
        measuring = step >= warm_pt
        if step == warm_pt:
            # mirror the facade's warm-up stats reset: stale prefetched
            # flags must not pair measured hits with unmeasured fills
            for l1 in l1s:
                l1.prefetched = bytearray(l1.n_sets)
        for t in range(n_threads):
            pl = playlists[t]
            trace = pl[play_idx[t]]
            s = trace[pos[t]]
            pos[t] += 1
            if pos[t] >= len(trace):
                play_idx[t] = (play_idx[t] + 1) % len(pl)
                pos[t] = 0
            ticks[t] += 1
            op = s.op
            if measuring:
                bench_weight[trace.name] = bench_weight.get(trace.name, 0) + 1
            if op == _OP_IALU:
                if measuring:
                    counts["ialu"] += 1
                continue
            if op == _OP_FALU:
                if measuring:
                    counts["falu"] += 1
                continue
            if op == _OP_BRANCH:
                pred = bhts[t].predict_and_update(s.pc, s.taken)
                if measuring:
                    counts["branches"] += 1
                    if pred != s.taken:
                        counts["mispredicts"] += 1
                continue
            if op == _OP_ITOF:
                if measuring:
                    counts["itof"] += 1
                continue
            if op == _OP_FTOI:
                if measuring:
                    counts["ftoi"] += 1
                continue
            # memory operation: apply the per-thread region salt
            addr = s.addr
            addr += salt_region[t].get(addr >> 26, salts[t])
            is_store = op == _OP_STORE_F or op == _OP_STORE_I
            if is_store:
                cls = CLS_STORE
                if measuring:
                    counts["stores"] += 1
            elif op == _OP_LOAD_F:
                cls = CLS_LOAD_FP
                if measuring:
                    counts["loads_fp"] += 1
            else:
                cls = CLS_LOAD_INT
                if measuring:
                    counts["loads_int"] += 1
            bank = t % len(l1s)
            l1 = l1s[bank]
            outcome, idx, _when = l1.probe(addr, 0)
            if outcome == HIT:
                if l1.prefetched[idx]:
                    l1.prefetched[idx] = 0
                    if measuring:
                        counts["prefetch_hits"] += 1
                if is_store:
                    l1.touch_write(addr)
                if measuring:
                    age = ticks[t] - install_tick[bank][idx]
                    reuse[cls][min(age.bit_length(), N_AGE_BUCKETS - 1)] += 1
            else:
                line = addr >> line_shift
                victim_dirty = outer_fill(
                    line, t, l1, addr, dirty=is_store,
                    prefetched=False, count=measuring,
                )
                install_tick[bank][idx] = ticks[t]
                prefetcher.on_demand_fill(pf_port, line, 0, t)
                if measuring:
                    if victim_dirty:
                        counts["writebacks"] += 1
                    if cls == CLS_STORE:
                        counts["fills_st"] += 1
                    else:
                        if cls == CLS_LOAD_FP:
                            counts["fills_fp"] += 1
                        else:
                            counts["fills_int"] += 1
                        if ticks[t] - last_load_fill[t] > CLUSTER_GAP:
                            counts["load_fill_clusters"] += 1
                        last_load_fill[t] = ticks[t]
                elif cls != CLS_STORE:
                    last_load_fill[t] = ticks[t]

    return WorkloadCharacter(
        n_threads=n_threads,
        instrs=meas_pt * n_threads,
        reuse=tuple(tuple(row) for row in reuse),
        outer_hits=tuple(outer_hits),
        outer_misses=tuple(outer_misses),
        outer_writebacks=tuple(outer_wb),
        **counts,
        **_blend_profiles(bench_weight, profiles),
    )


def _plan(p: BenchProfile) -> dict:
    """Static per-iteration structure of one benchmark profile (mirrors
    the synthesizer's body planning — counts only, no emission)."""
    n_loads = p.n_streams * p.unroll
    ring_len = p.index_dist + 1
    max_gather = max(0, 8 // ring_len)
    wanted = int(round(p.gather_frac * n_loads))
    if p.gather_frac > 0:
        wanted = max(1, wanted)
    n_gather = min(wanted, max_gather)
    n_falu = max(1, int(round(n_loads * p.fp_per_load)))
    n_stores = int(round(n_loads * p.store_per_load))
    n_extra_ialu = int(round(p.extra_ialu_per_load * n_loads))
    body = (
        3 + n_gather / max(1, p.index_every) + n_loads + n_falu
        + n_stores + n_extra_ialu + 1
        + int(round(p.rand_branch_frac
                    * (3 + n_gather + n_loads + n_falu + n_stores + 2)))
    )
    return {
        "iter_len": body,
        "ep_chains": float(p.n_chains),
        "int_use_dist": p.index_dist * body,
    }


def _blend_profiles(
    bench_weight: dict[str, int], profiles: dict[str, BenchProfile]
) -> dict:
    """Measured-window-weighted blend of profile-derived structure.

    ``profiles`` maps trace names to resolved profiles (the workload's
    own mapping — never the global registry, so inline variants blend
    with their *overridden* parameters).
    """
    total = sum(bench_weight.values()) or 1
    out = {"ep_chains": 0.0, "iter_len": 0.0, "int_use_dist": 0.0,
           "lod_per_instr": 0.0}
    for name, w in bench_weight.items():
        p = profiles[name]
        plan = _plan(p)
        frac = w / total
        out["ep_chains"] += frac * plan["ep_chains"]
        out["iter_len"] += frac * plan["iter_len"]
        out["int_use_dist"] += frac * plan["int_use_dist"]
        out["lod_per_instr"] += frac * p.lod_rate
    return out
