"""Numpy-vectorized characterization walk (the analytic backend's hot path).

:mod:`repro.model.charwalk` interprets the workload one instruction at a
time: per step it indexes the trace, classifies the op, salts the address,
probes the L1 and updates the reuse bookkeeping — a few dozen bytecodes
per instruction, millions of instructions per walk.  On the *classic*
geometry — direct-mapped L1 slices in front of infinite outer levels, no
prefetcher — every one of those per-instruction decisions is data-parallel:

* the instruction stream of a thread is its playlist tiled to the budget,
  so op/pc/addr/taken become arrays built once per distinct trace;
* a direct-mapped cache's behaviour is a pure function of the *per-set
  access subsequence*: stable-sorting the access stream by set index makes
  every set's history contiguous, a miss is simply "first access of a
  run of equal line ids", the install tick of the line serving a hit is
  the step of the last preceding miss in the set (propagated with
  ``maximum.accumulate`` — legal because a set's first access is always a
  miss), and a victim is dirty iff its run contains a store;
* reuse ages bucket by ``bit_length``, which is ``frexp``'s exponent;
* threads advance in lockstep, so "per-thread instructions" equals the
  step counter and install ticks are thread-independent.

The only state that genuinely is sequential — the per-thread 2-bit
bimodal BHT — stays a python loop, but over *branches only* (~10% of the
stream with all other work amortized into numpy).

:func:`characterize_np` must return a :class:`~repro.model.charwalk.
WorkloadCharacter` **equal** to the interpreted walk's — enforced by
``tests/test_charwalk_np.py`` across the workload grid.  Geometries the
closed forms do not model (finite or partitioned outer levels, any
prefetcher) and numpy-free installs fall back to the interpreter; set
``REPRO_NO_NUMPY=1`` to force the fallback everywhere (CI's no-numpy job
proves tier-1 passes that way).
"""

from __future__ import annotations

import os
from weakref import WeakKeyDictionary

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by CI's no-numpy job
    np = None

from repro.core.config import MachineConfig
from repro.core.context import region_salts
from repro.memory.levels import L1Cache
from repro.model.charwalk import (
    CLS_LOAD_FP,
    CLS_LOAD_INT,
    CLS_STORE,
    CLUSTER_GAP,
    N_AGE_BUCKETS,
    WorkloadCharacter,
    _blend_profiles,
)

# OpClass values, as plain ints for array comparisons
_IALU, _FALU, _LOAD_I, _LOAD_F = 0, 1, 2, 3
_STORE_I, _STORE_F, _BRANCH, _ITOF, _FTOI = 4, 5, 6, 7, 8


def eligible(geometry) -> bool:
    """True when the vectorized walk models this geometry exactly."""
    if np is None or os.environ.get("REPRO_NO_NUMPY"):
        return False
    if geometry.prefetch.kind != "none":
        return False  # prefetch decisions depend on the miss *sequence*
    return all(lvl.capacity_bytes is None for lvl in geometry.levels[1:])


#: trace -> column arrays; traces are cached by the synthesizer and
#: shared across walks, so one extraction serves a whole sweep (weak keys:
#: the cache must not pin a workload's traces alive)
_TRACE_COLS: WeakKeyDictionary = WeakKeyDictionary()


def _trace_arrays(trace):
    """Column arrays (op, pc, addr, taken) of one trace, built once."""
    arrs = _TRACE_COLS.get(trace)
    if arrs is None:
        n = len(trace)
        insts = trace._insts
        op = np.fromiter((s.op for s in insts), dtype=np.int16, count=n)
        pc = np.fromiter((s.pc for s in insts), dtype=np.int64, count=n)
        addr = np.fromiter((s.addr for s in insts), dtype=np.int64, count=n)
        taken = np.fromiter((s.taken for s in insts), dtype=bool, count=n)
        arrs = _TRACE_COLS[trace] = (op, pc, addr, taken)
    return arrs


def _thread_stream(playlist, budget: int):
    """One thread's first ``budget`` instructions (playlist wrapped) as
    column arrays, plus ``(trace_name, start, end)`` stream segments."""
    chunks: list[tuple] = []
    segments: list[tuple[str, int, int]] = []
    n = 0
    i = 0
    while n < budget:
        trace = playlist[i % len(playlist)]
        op, pc, addr, taken = _trace_arrays(trace)
        take = min(len(trace), budget - n)
        chunks.append((op[:take], pc[:take], addr[:take], taken[:take]))
        segments.append((trace.name, n, n + take))
        n += take
        i += 1
    cols = tuple(np.concatenate(c) for c in zip(*chunks))
    return cols, segments


def _bht_mispredicts(
    pc, taken, warm_pt: int, entries: int
) -> int:
    """Measured mispredicts of one thread's branch stream (sequential
    2-bit counters; mirrors :class:`~repro.core.predictor.BimodalBHT`)."""
    mask = entries - 1
    idxs = ((pc >> 2) & mask).tolist()
    takens = taken.tolist()
    table = bytearray([2]) * entries
    mis = 0
    for i, (bi, tk) in enumerate(zip(idxs, takens)):
        c = table[bi]
        if i >= warm_pt and (c >= 2) != tk:
            mis += 1
        if tk:
            if c < 3:
                table[bi] = c + 1
        elif c > 0:
            table[bi] = c - 1
    return mis


def characterize_np(
    workload, seed, meas_pt, warm_pt, geometry, line_bytes,
    bht_entries, salt_stream, salt_store, salt_hot,
) -> WorkloadCharacter:
    n_threads = workload.n_threads
    playlists = workload.playlists(seed=seed)
    profiles = workload.profiles()
    budget = warm_pt + meas_pt

    l0 = geometry.levels[0]
    if l0.shared or n_threads == 1:
        n_l1 = 1
        proto = L1Cache(l0.capacity_bytes, line_bytes)
    else:
        n_l1 = n_threads
        proto = L1Cache(l0.capacity_bytes // n_threads, line_bytes)
    set_mask = proto._set_mask
    line_shift = proto._line_shift
    n_outer = len(geometry.levels) - 1

    cfg = MachineConfig(
        n_threads=n_threads,
        salt_stream_bytes=salt_stream,
        salt_store_bytes=salt_store,
        salt_hot_bytes=salt_hot,
    )

    counts = dict(
        ialu=0, falu=0, loads_fp=0, loads_int=0, stores=0,
        branches=0, mispredicts=0, itof=0, ftoi=0,
        fills_fp=0, fills_int=0, fills_st=0, writebacks=0,
        load_fill_clusters=0, prefetch_fills=0, prefetch_hits=0,
    )
    reuse_flat = np.zeros(3 * N_AGE_BUCKETS, dtype=np.int64)
    outer_hits0 = 0
    bench_weight: dict[str, int] = {}

    # per-bank chronological memory-event columns, filled thread by thread
    bank_events: list[list[tuple]] = [[] for _ in range(n_l1)]
    steps_all = np.arange(budget, dtype=np.int64)

    for t in range(n_threads):
        (op, pc, addr, taken), segments = _thread_stream(playlists[t], budget)
        for name, start, end in segments:
            w = min(end, budget) - max(start, warm_pt)
            if w > 0:
                bench_weight[name] = bench_weight.get(name, 0) + w

        meas_ops = op[warm_pt:]
        counts["ialu"] += int(np.count_nonzero(meas_ops == _IALU))
        counts["falu"] += int(np.count_nonzero(meas_ops == _FALU))
        counts["itof"] += int(np.count_nonzero(meas_ops == _ITOF))
        counts["ftoi"] += int(np.count_nonzero(meas_ops == _FTOI))
        counts["branches"] += int(np.count_nonzero(meas_ops == _BRANCH))
        counts["loads_fp"] += int(np.count_nonzero(meas_ops == _LOAD_F))
        counts["loads_int"] += int(np.count_nonzero(meas_ops == _LOAD_I))
        counts["stores"] += int(
            np.count_nonzero((meas_ops == _STORE_I) | (meas_ops == _STORE_F))
        )

        br = op == _BRANCH
        if br.any():
            # branch warm-up boundary in *branch stream* coordinates
            warm_br = int(np.count_nonzero(br[:warm_pt]))
            counts["mispredicts"] += _bht_mispredicts(
                pc[br], taken[br], warm_br, bht_entries
            )

        mem = (op >= _LOAD_I) & (op <= _STORE_F)
        if mem.any():
            m_op = op[mem]
            m_addr = addr[mem]
            m_step = steps_all[mem]
            default, by_region = region_salts(cfg, t)
            salt = np.full(m_addr.shape, default, dtype=np.int64)
            region = m_addr >> 26
            for reg, sval in by_region.items():
                salt[region == reg] = sval
            line = (m_addr + salt) >> line_shift
            cls = np.where(
                m_op >= _STORE_I, CLS_STORE,
                np.where(m_op == _LOAD_F, CLS_LOAD_FP, CLS_LOAD_INT),
            )
            bank_events[t % n_l1].append((m_step, line, cls, t))

    for events in bank_events:
        if not events:
            continue
        step = np.concatenate([e[0] for e in events])
        line = np.concatenate([e[1] for e in events])
        cls = np.concatenate([e[2] for e in events])
        tid = np.concatenate(
            [np.full(e[0].shape, e[3], dtype=np.int64) for e in events]
        )
        if len(events) > 1:
            # global access order of a shared slice: (step, tid) — every
            # thread executes exactly one instruction per lockstep step
            order = np.argsort(step * n_threads + tid, kind="stable")
            step, line, cls, tid = (
                step[order], line[order], cls[order], tid[order]
            )
        n = step.shape[0]
        is_store = cls == CLS_STORE
        measured = step >= warm_pt

        # group the stream by set; stable sort keeps each set's history
        # in chronological order
        idx = line & set_mask
        sort = np.argsort(idx, kind="stable")
        idx_s = idx[sort]
        line_s = line[sort]
        step_s = step[sort]
        store_s = is_store[sort]
        meas_s = measured[sort]

        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(idx_s[1:], idx_s[:-1], out=first[1:])
        miss = first.copy()
        miss[1:] |= line_s[1:] != line_s[:-1]

        # install step of the line serving each access = the last miss at
        # or before it in the same set run (a set's first access is always
        # a miss, so the accumulate cannot leak across groups)
        pos = np.arange(n, dtype=np.int64)
        lastm = np.maximum.accumulate(np.where(miss, pos, 0))

        hm = ~miss & meas_s
        if hm.any():
            age = step_s[hm] - step_s[lastm[hm]]
            buckets = np.minimum(
                np.frexp(age.astype(np.float64))[1], N_AGE_BUCKETS - 1
            )
            reuse_flat += np.bincount(
                cls[sort][hm] * N_AGE_BUCKETS + buckets,
                minlength=3 * N_AGE_BUCKETS,
            )

        mm = miss & meas_s
        n_mm = int(np.count_nonzero(mm))
        outer_hits0 += n_mm
        fill_by_cls = np.bincount(cls[sort][mm], minlength=3)
        counts["fills_fp"] += int(fill_by_cls[CLS_LOAD_FP])
        counts["fills_int"] += int(fill_by_cls[CLS_LOAD_INT])
        counts["fills_st"] += int(fill_by_cls[CLS_STORE])

        # a victim is dirty iff its run — the install plus every hit up
        # to the evicting miss — contains a store
        evict = miss & ~first
        if evict.any():
            cs0 = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(store_s)]
            )
            i_idx = pos[evict]
            prev_install = lastm[i_idx - 1]
            victim_dirty = (cs0[i_idx] - cs0[prev_install]) > 0
            counts["writebacks"] += int(
                np.count_nonzero(victim_dirty & meas_s[i_idx])
            )

        # latency-overlap clusters of load fills, per thread in
        # chronological order
        miss_chrono = np.empty(n, dtype=bool)
        miss_chrono[sort] = miss
        load_fill = miss_chrono & (cls != CLS_STORE)
        for _, _, _, t in events:
            sel = load_fill & (tid == t)
            if not sel.any():
                continue
            ticks = step[sel] + 1
            fresh = np.diff(ticks, prepend=-(10 * CLUSTER_GAP)) > CLUSTER_GAP
            counts["load_fill_clusters"] += int(
                np.count_nonzero(fresh & measured[sel])
            )

    reuse = tuple(
        tuple(int(v) for v in reuse_flat[c * N_AGE_BUCKETS:(c + 1) * N_AGE_BUCKETS])
        for c in range(3)
    )
    return WorkloadCharacter(
        n_threads=n_threads,
        instrs=meas_pt * n_threads,
        reuse=reuse,
        outer_hits=((outer_hits0,) + (0,) * (n_outer - 1)) if n_outer else (),
        outer_misses=(0,) * n_outer,
        outer_writebacks=(0,) * n_outer,
        **counts,
        **_blend_profiles(bench_weight, profiles),
    )
