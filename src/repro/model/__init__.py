"""Analytic fast-model backend.

A mean-value/queueing model of the multithreaded decoupled access/execute
machine, registered in the backend registry as ``"analytic"``. Two layers:

* :mod:`repro.model.charwalk` — a *functional characterization walk*: the
  exact per-thread instruction windows the cycle backend measures are
  walked once, timing-free (instruction mix, branch-predictor outcomes, an
  interleaved L1 tag walk for miss rates and line-reuse distances). The
  result depends only on the workload and the cache/predictor geometry —
  never on latencies, queue sizes or the decoupling mode — so one walk is
  shared by every point of a latency x mode sweep via an in-process cache.
* :mod:`repro.model.analytic` — the mean-value solver: a damped fixed
  point over aggregate IPC coupling the AP/EP slip ceiling (queue, register
  and unresolved-branch windows, collapsed by FTOI loss-of-decoupling
  events), bus queueing (M/D/1) and MSHR-limited miss throughput, and SMT
  issue-slot sharing. It emits a fully populated
  :class:`~repro.stats.counters.SimStats`, so every figure renderer works
  unchanged on either backend.

Validation: ``repro-sim conformance`` runs both backends over the paper's
Figure-4 grid and reports per-metric error (see DESIGN.md for tolerances).
"""

from repro.model.analytic import AnalyticBackend
from repro.model.charwalk import WorkloadCharacter, characterize

__all__ = ["AnalyticBackend", "WorkloadCharacter", "characterize"]
