"""Alpha-like ISA model: op classes, registers, instructions and traces."""

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opclass import (
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    OpClass,
    Unit,
    is_load,
    is_mem,
    is_store,
    steer,
)
from repro.isa.registers import (
    FP_BASE,
    NUM_ARCH,
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    fp_reg,
    int_reg,
    is_fp,
    is_zero,
    reg_name,
)
from repro.isa.trace import Trace, TraceStats

__all__ = [
    "OpClass",
    "Unit",
    "steer",
    "is_load",
    "is_store",
    "is_mem",
    "MEMORY_OPS",
    "LOAD_OPS",
    "STORE_OPS",
    "StaticInst",
    "DynInst",
    "Trace",
    "TraceStats",
    "NUM_ARCH",
    "NUM_INT_ARCH",
    "NUM_FP_ARCH",
    "FP_BASE",
    "int_reg",
    "fp_reg",
    "is_fp",
    "is_zero",
    "reg_name",
]
