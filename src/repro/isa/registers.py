"""Architectural register namespace of the Alpha-like ISA model.

The model exposes 32 integer and 32 floating-point architectural registers,
mirroring the DEC Alpha. Integer registers live in the AP register file and
FP registers in the EP register file. A single flat id space is used so that
an instruction's source list needs no per-operand type tag:

* ids ``0 .. 31``  -> integer registers ``r0 .. r31``
* ids ``32 .. 63`` -> floating-point registers ``f0 .. f31``

``r31`` and ``f31`` are hardwired zero registers (reads are always ready,
writes are discarded), matching the Alpha convention.
"""

from __future__ import annotations

NUM_INT_ARCH = 32
NUM_FP_ARCH = 32
NUM_ARCH = NUM_INT_ARCH + NUM_FP_ARCH

FP_BASE = NUM_INT_ARCH

#: Hardwired-zero architectural register ids.
INT_ZERO = NUM_INT_ARCH - 1          # r31
FP_ZERO = FP_BASE + NUM_FP_ARCH - 1  # f31
ZERO_REGS = frozenset((INT_ZERO, FP_ZERO))


def int_reg(n: int) -> int:
    """Flat id of integer register ``r{n}``."""
    if not 0 <= n < NUM_INT_ARCH:
        raise ValueError(f"integer register index out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Flat id of floating-point register ``f{n}``."""
    if not 0 <= n < NUM_FP_ARCH:
        raise ValueError(f"fp register index out of range: {n}")
    return FP_BASE + n


def is_fp(reg: int) -> bool:
    """True when flat id ``reg`` names a floating-point register."""
    return reg >= FP_BASE


def is_zero(reg: int) -> bool:
    """True when flat id ``reg`` is a hardwired zero register."""
    return reg == INT_ZERO or reg == FP_ZERO


def reg_name(reg: int) -> str:
    """Human-readable name (``r5`` / ``f12``) of a flat register id."""
    if not 0 <= reg < NUM_ARCH:
        raise ValueError(f"register id out of range: {reg}")
    if reg < FP_BASE:
        return f"r{reg}"
    return f"f{reg - FP_BASE}"
