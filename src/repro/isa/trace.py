"""Trace containers and summary statistics.

A trace is an immutable sequence of :class:`~repro.isa.instruction.StaticInst`
plus a little metadata. The simulator is trace-driven exactly like the
paper's: the correct execution path, effective addresses and branch outcomes
all come from the trace; the pipeline adds timing, speculation and squashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import StaticInst
from repro.isa.opclass import OpClass, Unit, steer


@dataclass
class TraceStats:
    """Static instruction-mix summary of a trace."""

    total: int = 0
    by_op: dict[OpClass, int] = field(default_factory=dict)

    @property
    def ap_fraction(self) -> float:
        """Fraction of instructions steered to the Address Processor."""
        if not self.total:
            return 0.0
        ap = sum(n for op, n in self.by_op.items() if steer(op) == Unit.AP)
        return ap / self.total

    def fraction(self, *ops: OpClass) -> float:
        """Fraction of instructions whose class is one of ``ops``."""
        if not self.total:
            return 0.0
        return sum(self.by_op.get(op, 0) for op in ops) / self.total


class Trace:
    """An immutable instruction trace with metadata.

    Args:
        insts: the instruction sequence (not copied; treat as frozen).
        name: label used in reports (benchmark name).
    """

    def __init__(self, insts: list[StaticInst], name: str = "anon"):
        self._insts = insts
        self.name = name

    def __len__(self) -> int:
        return len(self._insts)

    def __getitem__(self, i: int) -> StaticInst:
        return self._insts[i]

    def __iter__(self):
        return iter(self._insts)

    @property
    def insts(self) -> list[StaticInst]:
        """The underlying instruction list (shared, do not mutate)."""
        return self._insts

    def stats(self) -> TraceStats:
        """Compute the static instruction mix of the trace."""
        out = TraceStats(total=len(self._insts))
        by_op: dict[OpClass, int] = {}
        for inst in self._insts:
            by_op[inst.op] = by_op.get(inst.op, 0) + 1
        out.by_op = by_op
        return out

    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """Return a new trace that runs ``self`` then ``other``."""
        return Trace(self._insts + other._insts, name or f"{self.name}+{other.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.name!r} n={len(self._insts)}>"
