"""Static and dynamic instruction representations.

A :class:`StaticInst` is one element of a trace: immutable, shared between
runs, and holding everything the trace-driven pipeline needs (op class,
architectural registers, effective address, branch outcome). A
:class:`DynInst` is one *dynamic* instance flowing through the pipeline; it
carries renamed physical registers, timing and bookkeeping state and is
created at fetch time.

Both classes use ``__slots__``: the simulator allocates one ``DynInst`` per
fetched instruction, which is the hottest allocation path in the model.
"""

from __future__ import annotations

from repro.isa.opclass import OpClass, Unit, is_load, is_store, steer

_NO_SRCS: tuple[int, ...] = ()


class StaticInst:
    """One trace entry.

    Attributes:
        pc: instruction address (used to index the branch predictor).
        op: :class:`~repro.isa.opclass.OpClass` of the instruction.
        dest: flat architectural destination register id, or ``None``.
        srcs: tuple of flat architectural source register ids.
        addr: effective byte address for memory ops (trace-driven), else 0.
        taken: actual branch outcome (branches only).
        target: taken-branch target pc (branches only; 0 otherwise).
    """

    __slots__ = ("pc", "op", "dest", "srcs", "addr", "taken", "target", "unit",
                 "is_load", "is_store", "is_branch")

    def __init__(
        self,
        pc: int,
        op: OpClass,
        dest: int | None = None,
        srcs: tuple[int, ...] = _NO_SRCS,
        addr: int = 0,
        taken: bool = False,
        target: int = 0,
    ):
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.target = target
        # Pre-computed at trace build time: steering saves a dict lookup per
        # fetch, the class predicates a property call per commit/dispatch.
        self.unit = steer(op)
        self.is_load = is_load(op)
        self.is_store = is_store(op)
        self.is_branch = op == OpClass.BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"pc={self.pc:#x}", self.op.name]
        if self.dest is not None:
            parts.append(f"d={self.dest}")
        if self.srcs:
            parts.append(f"s={list(self.srcs)}")
        if self.addr:
            parts.append(f"@{self.addr:#x}")
        if self.op == OpClass.BRANCH:
            parts.append("T" if self.taken else "NT")
        return f"<StaticInst {' '.join(parts)}>"


# DynInst lifecycle states.
ST_DISPATCHED = 0   # renamed, sitting in an issue queue
ST_ISSUED = 1       # sent to a functional unit / cache, result pending
ST_COMPLETED = 2    # result written back, eligible for graduation
ST_SQUASHED = 3     # cancelled by branch-misprediction recovery


class DynInst:
    """One dynamic instruction in flight.

    The pipeline reaches into these fields directly (documented hot path);
    nothing outside ``repro.core`` should depend on them.
    """

    __slots__ = (
        "static",
        "thread",
        "seq",
        "wrong_path",
        "unit",
        "pdest",
        "psrcs",
        "pdata",
        "old_pdest",
        "state",
        "fetch_cycle",
        "issue_cycle",
        "complete_cycle",
        "pred_taken",
        "load_miss",
        "store_ready",
        "mem_done",
    )

    def __init__(self, static: StaticInst, thread: int, seq: int, wrong_path: bool):
        self.static = static
        self.thread = thread
        self.seq = seq
        self.wrong_path = wrong_path
        self.unit = static.unit
        self.pdest = -1          # physical destination (-1: none)
        self.psrcs: tuple[int, ...] = _NO_SRCS
        self.pdata = -1          # store only: renamed data source register
        self.old_pdest = -1      # previous mapping of static.dest (for undo/free)
        self.state = ST_DISPATCHED
        self.fetch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.pred_taken = False  # branch prediction made at fetch
        self.load_miss = False   # load only: this access missed in L1
        self.store_ready = False # store only: committed, write may drain
        self.mem_done = False    # store only: cache write performed

    @property
    def op(self) -> OpClass:
        return self.static.op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DynInst t{self.thread}#{self.seq} {self.static.op.name}"
            f"{' WP' if self.wrong_path else ''} st={self.state}>"
        )


__all__ = [
    "StaticInst",
    "DynInst",
    "ST_DISPATCHED",
    "ST_ISSUED",
    "ST_COMPLETED",
    "ST_SQUASHED",
    "Unit",
]
