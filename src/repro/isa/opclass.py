"""Operation classes of the Alpha-like instruction set model.

The paper's steering rule (section 2) dispatches instructions to one of two
decoupled processing units by data type:

* the Address Processor (AP) receives every memory instruction, all integer
  computation and all branches;
* the Execute Processor (EP) receives floating-point computation.

Cross-file moves model the only data paths between the two register files:
``ITOF`` behaves like a load from the EP's point of view (an AP-side producer
of an EP register), while ``FTOI`` is the canonical *loss-of-decoupling*
event: an AP-side consumer must wait for the EP to catch up.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Dynamic instruction classes recognised by the pipeline."""

    IALU = 0      # integer ALU op (AP, latency 1)
    FALU = 1      # floating-point op (EP, latency 4)
    LOAD_I = 2    # integer load  (AP; writes the AP register file)
    LOAD_F = 3    # FP load       (AP; writes the EP register file)
    STORE_I = 4   # integer store (AP address + AP data)
    STORE_F = 5   # FP store      (AP address + EP data)
    BRANCH = 6    # conditional branch (AP, latency 1)
    ITOF = 7      # int -> FP move (AP executes; writes the EP file)
    FTOI = 8      # FP -> int move (EP executes; writes the AP file)


#: Op classes that access data memory.
MEMORY_OPS = frozenset(
    (OpClass.LOAD_I, OpClass.LOAD_F, OpClass.STORE_I, OpClass.STORE_F)
)

#: Op classes that read data memory.
LOAD_OPS = frozenset((OpClass.LOAD_I, OpClass.LOAD_F))

#: Op classes that write data memory.
STORE_OPS = frozenset((OpClass.STORE_I, OpClass.STORE_F))


class Unit(enum.IntEnum):
    """The two decoupled processing units."""

    AP = 0
    EP = 1


#: Steering table: op class -> unit whose functional units execute it.
#:
#: All memory instructions and integer computation go to the AP; FP
#: computation (including the FTOI cross move, which reads FP registers)
#: goes to the EP.
STEERING: dict[OpClass, Unit] = {
    OpClass.IALU: Unit.AP,
    OpClass.FALU: Unit.EP,
    OpClass.LOAD_I: Unit.AP,
    OpClass.LOAD_F: Unit.AP,
    OpClass.STORE_I: Unit.AP,
    OpClass.STORE_F: Unit.AP,
    OpClass.BRANCH: Unit.AP,
    OpClass.ITOF: Unit.AP,
    OpClass.FTOI: Unit.EP,
}


def steer(op: OpClass) -> Unit:
    """Return the unit that executes instructions of class ``op``."""
    return STEERING[op]


def is_load(op: OpClass) -> bool:
    """True when ``op`` reads data memory."""
    return op == OpClass.LOAD_I or op == OpClass.LOAD_F


def is_store(op: OpClass) -> bool:
    """True when ``op`` writes data memory."""
    return op == OpClass.STORE_I or op == OpClass.STORE_F


def is_mem(op: OpClass) -> bool:
    """True when ``op`` accesses data memory."""
    return op in MEMORY_OPS
