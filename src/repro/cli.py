"""Command-line interface: ``repro-sim``.

Subcommands:

* ``figure {fig1,fig3,fig4,fig5,all}`` — regenerate a paper figure's data
  and print it as text tables.
* ``ablation {unit_width,fetch_policy,mshr,iq_depth,rob,l2_finite,
  prefetch,bus_width,all}`` — run an ablation study.
* ``sweep`` — an ad-hoc grid (threads x latencies x modes, benches x
  latencies x modes, or a declarative workload crossed with latencies /
  modes / ``--workload-axis`` profile-field axes), emitted as JSON.
* ``run`` — one custom simulation (threads / latency / mode / budgets,
  or any ``--workload`` preset/file).
* ``bench NAME`` — one single-threaded benchmark run with a full report
  (NAME is any registered profile, inline overrides allowed).
* ``workloads`` — list registered profiles and workload presets with
  their key knobs and provenance (built-in vs user file).
* ``conformance`` — validate the analytic fast model against the cycle
  backend over the Figure-4 grid; non-zero exit above the IPC tolerance.
* ``golden`` — verify (or ``--refresh``) the golden-stats regression
  corpus under ``tests/golden/``.
* ``perf`` — measure *simulator* performance (simulated cycles/s and
  committed instructions/s) on pinned workloads, report the idle-cycle
  fast-forward speedup on the headline workload, write a ``BENCH_*.json``
  document and optionally gate against a committed baseline.
* ``serve`` — run the simulation-as-a-service job server: ``POST /jobs``
  accepts RunSpec JSON (one spec or a batch), a worker pool executes
  through the engine + shared result cache, concurrent identical
  submissions coalesce to one simulation, progress streams from
  ``GET /jobs/{id}/events``, and SIGTERM drains gracefully.

``figure``, ``sweep``, ``run`` and ``bench`` take ``--backend
{cycle,analytic,hybrid}``: the faithful staged kernel, the mean-value
fast model (microseconds per run) for sweeps far beyond what cycle
accuracy can afford, or the multi-fidelity router that screens whole
grids analytically with calibrated error bars and promotes only the
cells that matter (extrema, decision boundaries, over-budget bars) to
cycle fidelity.

Every simulation goes through the experiment engine: batches fan out over
worker processes (``--workers``, default ``$REPRO_WORKERS`` or all cores)
and results land in a content-addressed cache (``--cache-dir``, disable
with ``--no-cache``), so interrupted or repeated sweeps only simulate
what is missing. Cache entries are keyed by the full spec *including the
backend*, so the two engines' results can never mix.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.engine import (
    Engine,
    ResultCache,
    RouterSpec,
    RunSpec,
    Sweep,
    backend_names,
)
from repro.experiments.ablations import ABLATIONS
from repro.experiments.figures import FIGURES, LATENCIES
from repro.experiments import conformance as conf_mod
from repro.experiments import golden as golden_mod
from repro.experiments import perf as perf_mod
from repro.memory.spec import (
    mem_preset,
    mem_preset_names,
    mem_preset_provenance,
    resolve_memspec,
)
from repro.stats.report import format_perf, format_run, format_table
from repro.workloads.profiles import (
    get_profile,
    load_profiles,
    profile_names,
    profile_provenance,
)
from repro.workloads.spec import (
    WorkloadEntry,
    parse_value,
    preset_names,
    preset_provenance,
    resolve_workload,
    workload_preset,
)

EPILOG = """\
environment variables:
  REPRO_SCALE      global instruction-budget scale factor (float, default 1.0,
                   clamped to a floor of 0.05; malformed values warn once and
                   fall back to 1.0). Captured into every run's spec and
                   therefore into its cache key, so results are never shared
                   across different scale factors. REPRO_SCALE=0.1 for smoke
                   sweeps.
  REPRO_WORKERS    default worker-process count for sweeps
                   (overridden by --workers; default: all cores)
  REPRO_CACHE_DIR  result-cache directory
                   (overridden by --cache-dir; default: ~/.cache/repro-sim)

examples:
  REPRO_SCALE=0.2 repro-sim figure fig4 --workers 4
  repro-sim figure fig4 --backend analytic
  repro-sim sweep --threads 1,2,4 --latencies 16,64 --modes dec,non
  repro-sim run --workload examples/workload_hetero.json --backend analytic
  repro-sim sweep --workload thrash4 --workload-axis hot_frac=0.2,0.5,0.9
  repro-sim run --mem l2_finite --threads 4 --latency 64
  repro-sim sweep --mem l2_finite --mem-axis L2.capacity_bytes=256K,1M,4M
  repro-sim sweep --latencies 256 --commits 1000 --fork-warmup 2
  repro-sim run --threads 1 --snapshot warm.snap
  repro-sim run --threads 1 --restore warm.snap --commits 5000
  repro-sim sweep --mem-axis prefetch_kind=none,nextline --backend analytic
  repro-sim workloads
  repro-sim bench "swim?hot_frac=0.1&ws_bytes=16M"
  repro-sim ablation mshr --no-cache
  repro-sim conformance --quick
  repro-sim golden --refresh
"""


def _engine_from_args(args) -> Engine:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Engine(
        workers=args.workers,
        cache=cache,
        fork_warmup=getattr(args, "fork_warmup", None),
    )


def _print_batch_footer(name: str, engine: Engine, before: tuple, t0: float):
    cached = engine.n_cached - before[0]
    executed = engine.n_executed - before[1]
    print(
        f"[{name}: {cached + executed} runs, {cached} cached, "
        f"{executed} simulated, {time.time() - t0:.1f}s]\n"
    )


def _cmd_figure(args) -> int:
    engine = _engine_from_args(args)
    names = list(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        build, render = FIGURES[name]
        before = (engine.n_cached, engine.n_executed)
        t0 = time.time()
        data = build(seed=args.seed, engine=engine, backend=args.backend)
        print(render(data))
        _print_batch_footer(name, engine, before, t0)
    return 0


def _cmd_ablation(args) -> int:
    engine = _engine_from_args(args)
    names = list(ABLATIONS) if args.name == "all" else [args.name]
    for name in names:
        build, render = ABLATIONS[name]
        before = (engine.n_cached, engine.n_executed)
        t0 = time.time()
        data = build(seed=args.seed, engine=engine)
        print(render(data))
        _print_batch_footer(name, engine, before, t0)
    return 0


def _int_list(text: str) -> list[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def _promote_budget(text: str) -> float | int:
    """``--promote-budget`` value: a fraction (``0.15``) or an absolute
    cell count (``20``); :class:`RouterSpec` validates the range."""
    return float(text) if any(c in text for c in ".eE") else int(text)


def _router_from_args(args) -> "RouterSpec | None | str":
    """The sweep's :class:`RouterSpec` (``None`` off-hybrid), or an
    error string when router flags were given without ``--backend
    hybrid`` or fail validation."""
    flags = {
        "promote_budget": args.promote_budget,
        "error_budget": args.error_budget,
        "corpus": args.router_corpus,
    }
    given = {k: v for k, v in flags.items() if v is not None}
    if args.backend != "hybrid":
        if given:
            names = ", ".join(
                "--" + k.replace("_", "-").replace("corpus", "router-corpus")
                for k in given
            )
            return f"{names}: only meaningful with --backend hybrid"
        return None
    try:
        return RouterSpec(**given)
    except (TypeError, ValueError) as exc:
        return f"router config: {exc.args[0] if exc.args else exc}"


def _load_profile_files(args) -> int:
    """Register profiles from every ``--profiles`` file; 0 on success."""
    for path in getattr(args, "profiles", None) or []:
        try:
            load_profiles(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"--profiles {path}: {exc}", file=sys.stderr)
            return 2
    return 0


def _resolve_workload_arg(ref: str):
    """``--workload`` value -> WorkloadSpec, or an error string."""
    try:
        return resolve_workload(ref)
    except (OSError, ValueError, KeyError) as exc:
        msg = exc.args[0] if exc.args else exc
        return f"--workload {ref}: {msg}"


def _resolve_mem_arg(ref: str | None):
    """``--mem`` value -> MemSpec (or None), or an error string."""
    if ref is None:
        return None
    try:
        return resolve_memspec(ref)
    except (OSError, ValueError, KeyError) as exc:
        msg = exc.args[0] if exc.args else exc
        return f"--mem {ref}: {msg}"


def _mem_axis_grid(base, tokens) -> list | str:
    """``--mem-axis field=v1,v2`` tokens -> the list of MemSpecs the grid
    crosses (``[base]`` when no axes were given)."""
    mems = [base]
    for tok in tokens or []:
        key, sep, vals = tok.partition("=")
        key = key.strip()
        values = [parse_value(v) for v in vals.split(",") if v.strip()]
        if not sep or not key or not values:
            return (
                f"--mem-axis {tok!r}: expected field=value[,value...] "
                "(e.g. L2.capacity_bytes=256K,1M or prefetch_degree=1,2)"
            )
        try:
            mems = [m.override(key, v) for m in mems for v in values]
        except ValueError as exc:
            return f"--mem-axis: {exc.args[0] if exc.args else exc}"
    return mems


def _workload_axes(tokens) -> dict | str:
    """``--workload-axis field=v1,v2`` tokens -> {field: [values]}."""
    axes: dict = {}
    for tok in tokens or []:
        key, sep, vals = tok.partition("=")
        key = key.strip()
        values = [parse_value(v) for v in vals.split(",") if v.strip()]
        if not sep or not key or not values:
            return (
                f"--workload-axis {tok!r}: expected field=value[,value...] "
                "(e.g. hot_frac=0.1,0.4)"
            )
        axes[key] = values
    return axes


def _cmd_sweep(args) -> int:
    try:
        latencies = _int_list(args.latencies)
        threads = _int_list(args.threads)
    except ValueError:
        print(
            "--threads/--latencies take comma-separated integers, "
            f"e.g. --latencies {','.join(map(str, LATENCIES))}",
            file=sys.stderr,
        )
        return 2
    try:
        commits_axis = _int_list(args.commits) if args.commits else [None]
    except ValueError:
        print(
            "--commits takes comma-separated integers, e.g. "
            "--commits 1000,2000,4000",
            file=sys.stderr,
        )
        return 2
    modes = []
    for tok in args.modes.split(","):
        tok = tok.strip()
        if tok in ("dec", "decoupled"):
            modes.append(True)
        elif tok in ("non", "non-dec", "non-decoupled"):
            modes.append(False)
        elif tok:
            print(f"unknown mode {tok!r} (use dec / non)", file=sys.stderr)
            return 2
    if _load_profile_files(args):
        return 2
    base_mem = _resolve_mem_arg(args.mem)
    if isinstance(base_mem, str):
        print(base_mem, file=sys.stderr)
        return 2
    if args.mem_axis and base_mem is None:
        base_mem = mem_preset("classic")
    mems = _mem_axis_grid(base_mem, args.mem_axis)
    if isinstance(mems, str):
        print(mems, file=sys.stderr)
        return 2
    router = _router_from_args(args)
    if isinstance(router, str):
        print(router, file=sys.stderr)
        return 2
    if args.workload:
        base = _resolve_workload_arg(args.workload)
        if isinstance(base, str):
            print(base, file=sys.stderr)
            return 2
        axes = _workload_axes(args.workload_axis)
        if isinstance(axes, str):
            print(axes, file=sys.stderr)
            return 2
        workloads = [base]
        try:
            for key, values in axes.items():
                workloads = [
                    w.with_profile_overrides(**{key: v})
                    for w in workloads
                    for v in values
                ]
        except ValueError as exc:
            print(f"--workload-axis: {exc}", file=sys.stderr)
            return 2
        sweep = Sweep.grid(
            RunSpec.from_workload,
            workload=workloads,
            mem=mems,
            l2_latency=latencies,
            decoupled=modes,
            seed=args.seed,
            commits=commits_axis,
            backend=args.backend,
            router=router,
            **_deadlock_overrides(args),
        )
    elif args.benches:
        benches = [tok.strip() for tok in args.benches.split(",") if tok.strip()]
        try:
            for b in benches:
                WorkloadEntry.parse(b)  # full entry incl. inline overrides
        except (KeyError, ValueError) as exc:
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
        sweep = Sweep.grid(
            RunSpec.single,
            bench=benches,
            mem=mems,
            l2_latency=latencies,
            decoupled=modes,
            seed=args.seed,
            commits=commits_axis,
            backend=args.backend,
            router=router,
            **_deadlock_overrides(args),
        )
    else:
        sweep = Sweep.grid(
            RunSpec.multiprogrammed,
            n_threads=threads,
            mem=mems,
            l2_latency=latencies,
            decoupled=modes,
            seed=args.seed,
            commits_per_thread=commits_axis,
            backend=args.backend,
            router=router,
            **_deadlock_overrides(args),
        )
    engine = _engine_from_args(args)
    t0 = time.time()
    results = engine.map(sweep)
    elapsed = round(time.time() - t0, 3)

    def _entry(spec, stats):
        entry = {
            "label": spec.label(),
            "key": spec.key(),
            "spec": spec.to_dict(),
            "stats": stats.snapshot(),
        }
        prov = results.router.get(spec)
        if prov is not None:
            entry["router"] = dict(prov)
        return entry

    doc = {
        "n_runs": results.n_runs,
        "n_cached": results.n_cached,
        "n_executed": results.n_executed,
        "n_forked": results.n_forked,
        "warmup_cycles_saved": results.warmup_cycles_saved,
        "ff_jumps": results.ff_jumps,
        "ff_cycles_skipped": results.ff_cycles_skipped,
        "elapsed_s": elapsed,
        "runs": [_entry(spec, stats) for spec, stats in results.items()],
    }
    if results.n_screened or results.n_promoted:
        doc["n_screened"] = results.n_screened
        doc["n_promoted"] = results.n_promoted
        doc["cycle_cells_saved"] = results.cycle_cells_saved
    print(json.dumps(doc, indent=2))
    summary = (
        f"[sweep: {results.n_runs} runs, {results.n_cached} cached, "
        f"{results.n_executed} simulated, {results.n_forked} forked "
        f"({results.warmup_cycles_saved} warmup cycles saved, "
        f"{results.ff_cycles_skipped} cycles fast-forwarded in "
        f"{results.ff_jumps} jumps)"
    )
    if results.n_screened or results.n_promoted:
        summary += (
            f", {results.n_screened} screened / {results.n_promoted} "
            f"promoted ({results.cycle_cells_saved} cycle cells saved)"
        )
    print(f"{summary}, {elapsed:.1f}s]", file=sys.stderr)
    return 0


def _deadlock_overrides(args) -> dict:
    """Config overrides shared by the run-building subcommands."""
    if getattr(args, "deadlock_cycles", None) is not None:
        return {"deadlock_cycles": args.deadlock_cycles}
    return {}


def _cmd_perf(args) -> int:
    doc = perf_mod.run_perf(
        quick=args.quick,
        reps=args.reps,
        profile=args.profile,
        progress=lambda msg: print(f"[perf] {msg}", file=sys.stderr),
    )
    print(format_perf(doc))
    if args.output:
        perf_mod.write_doc(doc, args.output)
        print(f"\n[wrote {args.output}]", file=sys.stderr)
    if args.check:
        baseline = perf_mod.load_doc(args.check)
        failures = perf_mod.check_regression(
            doc, baseline, tolerance=args.tolerance,
            ratios_only=args.ratios_only,
        )
        if failures:
            print(
                f"\nPERF REGRESSION vs {args.check}:", file=sys.stderr
            )
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"\n[no regression vs {args.check}]", file=sys.stderr)
    return 0


def _fit_report(cells: list[dict], quantile: float) -> int:
    """Fit the router error model on a train slice, report held-out
    interval coverage, gate at :data:`~repro.router.errmodel
    .COVERAGE_MIN`.  This is ``conformance --fit`` and the CI drift
    gate."""
    from repro.router.errmodel import COVERAGE_MIN, ErrorModel, split_cells

    train, holdout = split_cells(cells)
    model = ErrorModel.fit(train, quantile=quantile)
    coverage = model.coverage(holdout)
    hws = sorted(
        model.half_width_rel(c["features"]) for c in cells
    )
    print(
        f"\nerror model: {len(train)} train / {len(holdout)} held-out "
        f"cells, {len(model.regions)} regions, q={quantile}, "
        f"key {model.key()}"
    )
    print(
        f"relative half-widths: min {hws[0] * 100:.1f}%  "
        f"median {hws[len(hws) // 2] * 100:.1f}%  max {hws[-1] * 100:.1f}%"
    )
    verdict = "PASS" if coverage >= COVERAGE_MIN else "FAIL"
    print(
        f"held-out interval coverage {coverage * 100:.1f}% "
        f"(gate {COVERAGE_MIN * 100:.0f}%) -> {verdict}"
    )
    if coverage < COVERAGE_MIN:
        print(
            f"\nCALIBRATION FAILURE: the fitted error bars cover only "
            f"{coverage * 100:.1f}% of held-out cells — the analytic "
            "model drifted from the corpus; regenerate it with "
            "'repro-sim conformance --out'",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_conformance(args) -> int:
    from repro.router.errmodel import corpus_from_conformance, load_corpus

    if args.corpus:
        # drift gate: no simulation at all — fit from the committed
        # corpus and check the calibration still holds out-of-sample
        if not args.fit:
            print("--corpus is only meaningful with --fit", file=sys.stderr)
            return 2
        try:
            cells = load_corpus(args.corpus)
        except (OSError, ValueError) as exc:
            print(f"--corpus: {exc}", file=sys.stderr)
            return 2
        print(f"[conformance] fitting from {args.corpus} "
              f"({len(cells)} cells)", file=sys.stderr)
        return _fit_report(cells, quantile=args.quantile)

    engine = _engine_from_args(args)
    doc = conf_mod.run_conformance(
        quick=args.quick,
        seed=args.seed,
        engine=engine,
        tolerance=args.tolerance,
        timing_specs=args.timing_specs,
        progress=lambda msg: print(f"[conformance] {msg}", file=sys.stderr),
    )
    print(conf_mod.render_conformance(doc))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        print(f"\n[wrote {args.output}]", file=sys.stderr)
    rc = 0
    if args.out:
        corpus = corpus_from_conformance(doc)
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(corpus, fh, indent=2)
            fh.write("\n")
        print(f"\n[wrote corpus {args.out}: {corpus['n_cells']} cells]",
              file=sys.stderr)
    if args.fit:
        rc = _fit_report(
            corpus_from_conformance(doc)["cells"], quantile=args.quantile
        )
    if not doc["passed"]:
        print(
            f"\nCONFORMANCE FAILURE: mean |IPC err| "
            f"{doc['mean_abs_ipc_err'] * 100:.2f}% exceeds the "
            f"{args.tolerance * 100:.0f}% tolerance",
            file=sys.stderr,
        )
        return 1
    return rc


def _cmd_golden(args) -> int:
    # never through the result cache: the whole point is comparing *live*
    # semantics against the corpus, and a warm cache would happily serve
    # pre-change stats for unchanged spec keys
    engine = Engine(workers=args.workers, cache=None)
    root = args.dir or golden_mod.default_root()
    if args.refresh:
        written = golden_mod.refresh(root, engine)
        for path in written:
            print(f"wrote {path}")
        return 0
    problems = golden_mod.verify(root, engine)
    if problems:
        print(f"GOLDEN MISMATCH ({len(problems)}):", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("golden corpus conformant")
    return 0


def _cmd_run(args) -> int:
    if _load_profile_files(args):
        return 2
    mem = _resolve_mem_arg(args.mem)
    if isinstance(mem, str):
        print(mem, file=sys.stderr)
        return 2
    if args.workload:
        workload = _resolve_workload_arg(args.workload)
        if isinstance(workload, str):
            print(workload, file=sys.stderr)
            return 2
        spec = RunSpec.from_workload(
            workload,
            l2_latency=args.latency,
            decoupled=not args.non_decoupled,
            seed=args.seed,
            commits=args.commits,
            backend=args.backend,
            mem=mem,
            **_deadlock_overrides(args),
        )
        title = (
            f"{workload.label()} ({workload.n_threads} threads, "
            f"L2={args.latency}, "
            f"{'non-decoupled' if args.non_decoupled else 'decoupled'})"
        )
    else:
        spec = RunSpec.multiprogrammed(
            args.threads,
            l2_latency=args.latency,
            decoupled=not args.non_decoupled,
            seed=args.seed,
            commits_per_thread=args.commits,
            backend=args.backend,
            mem=mem,
            **_deadlock_overrides(args),
        )
        mode = "non-decoupled" if args.non_decoupled else "decoupled"
        title = f"{args.threads} threads, L2={args.latency}, {mode}"
    if args.snapshot or args.restore:
        return _run_with_snapshot(args, spec, title)
    stats = _engine_from_args(args).run(spec)
    print(format_run(stats, title))
    return 0


def _run_with_snapshot(args, spec, title: str) -> int:
    """``run --snapshot/--restore``: checkpoint the warm-up boundary to a
    file, or continue a run from one (always freshly simulated — the
    result cache would defeat the point of exercising the machinery)."""
    from repro.engine.snapshot import (
        Snapshot,
        SnapshotError,
        capture_warmup,
        run_tail,
    )

    if spec.backend != "cycle":
        print(
            "--snapshot/--restore need the cycle backend (only it has "
            "machine state to checkpoint)",
            file=sys.stderr,
        )
        return 2
    if args.restore:
        try:
            with open(args.restore, "rb") as fh:
                snap = Snapshot.from_bytes(fh.read())
            stats = run_tail(spec, snap)
        except (OSError, SnapshotError) as exc:
            print(f"--restore {args.restore}: {exc}", file=sys.stderr)
            return 2
        print(format_run(stats, f"{title} [restored @{snap.meta['cycle']}]"))
        return 0
    snap, proc = capture_warmup(spec)
    with open(args.snapshot, "wb") as fh:
        fh.write(snap.to_bytes())
    print(
        f"[wrote {args.snapshot}: cycle {snap.meta['cycle']}, "
        f"warmup_key {snap.meta['warmup_key']}]",
        file=sys.stderr,
    )
    kwargs = spec.run_kwargs()
    kwargs["warmup_commits"] = 0
    print(format_run(proc.run(**kwargs), title))
    return 0


def _cmd_bench(args) -> int:
    if _load_profile_files(args):
        return 2
    mem = _resolve_mem_arg(args.mem)
    if isinstance(mem, str):
        print(mem, file=sys.stderr)
        return 2
    try:
        spec = RunSpec.single(
            args.name,
            l2_latency=args.latency,
            decoupled=not args.non_decoupled,
            seed=args.seed,
            backend=args.backend,
            mem=mem,
            **_deadlock_overrides(args),
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    stats = _engine_from_args(args).run(spec)
    print(format_run(stats, f"{args.name} (1 thread, L2={args.latency})"))
    return 0


_KNOB_COLUMNS = (
    ("ws", lambda p: f"{p.ws_bytes // 1024}K"),
    ("hot%", lambda p: f"{p.hot_frac * 100:.0f}"),
    ("hot", lambda p: f"{p.hot_bytes // 1024}K"),
    ("gather%", lambda p: f"{p.gather_frac * 100:.0f}"),
    ("idx_dist", lambda p: p.index_dist),
    ("fp/ld", lambda p: p.fp_per_load),
    ("chains", lambda p: p.n_chains),
    ("lod", lambda p: p.lod_rate),
)


def _cmd_workloads(args) -> int:
    if _load_profile_files(args):
        return 2
    rows = [
        [name]
        + [fmt(get_profile(name)) for _, fmt in _KNOB_COLUMNS]
        + [profile_provenance(name)]
        for name in profile_names()
    ]
    print(
        format_table(
            ["profile"] + [h for h, _ in _KNOB_COLUMNS] + ["provenance"],
            rows,
            "Registered benchmark profiles",
        )
    )
    rows = []
    for name in preset_names():
        wl = workload_preset(name)
        per_thread = []
        for playlist in wl.threads:
            labels = [e.label for e in playlist]
            if len(labels) > 3:
                per_thread.append(
                    "+".join(labels[:3]) + f"+{len(labels) - 3} more"
                )
            else:
                per_thread.append("+".join(labels))
        uniq = list(dict.fromkeys(per_thread))
        preview = " | ".join(uniq[:4]) + (" ..." if len(uniq) > 4 else "")
        rows.append(
            [name, wl.n_threads, preview, preset_provenance(name)]
        )
    print()
    print(
        format_table(
            ["preset", "threads", "per-thread playlists", "provenance"],
            rows,
            "Workload presets (repro-sim run --workload NAME)",
        )
    )
    rows = []
    for name in mem_preset_names():
        ms = mem_preset(name)
        levels = []
        for lvl in ms.levels:
            cap = lvl.capacity_bytes
            if cap is None:
                cap = "inf"
            elif isinstance(cap, int):
                cap = f"{cap // 1024}K"
            tag = f"{lvl.name}:{cap}"
            if lvl.assoc > 1:
                tag += f"/{lvl.assoc}w"
            if not lvl.shared:
                tag += "/split"
            levels.append(tag)
        ic = ms.interconnect
        width = (
            f"{ic.bytes_per_cycle}B"
            if isinstance(ic.bytes_per_cycle, int) else str(ic.bytes_per_cycle)
        )
        bus = f"{width} {ic.policy}"
        pf = ms.prefetch
        pref = "-" if pf.kind == "none" else f"{pf.kind} x{pf.degree}"
        rows.append(
            [name, " > ".join(levels), bus, pref,
             mem_preset_provenance(name)]
        )
    print()
    print(
        format_table(
            ["mem preset", "levels", "bus", "prefetch", "provenance"],
            rows,
            "Memory-hierarchy presets (repro-sim run --mem NAME)",
        )
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        spool_dir=args.spool_dir,
        engine_workers=args.workers,
        service_workers=args.service_workers,
        fork_warmup=args.fork_warmup,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Cycle-accurate SMT + decoupled access/execute simulator "
            "(reproduction of Parcerisa & González, HPCA 1999)"
        ),
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")

    machine_flags = argparse.ArgumentParser(add_help=False)
    machine_flags.add_argument(
        "--deadlock-cycles", type=int, default=None, metavar="N",
        help="cycles without a commit before declaring the pipeline wedged "
             "(default: MachineConfig.deadlock_cycles = 100000; raise for "
             "very long-latency sweeps)",
    )

    backend_flags = argparse.ArgumentParser(add_help=False)
    backend_flags.add_argument(
        "--backend", choices=backend_names(), default="cycle",
        help="simulation engine: 'cycle' (faithful staged kernel), "
             "'analytic' (mean-value fast model, microseconds per run; "
             "validated by 'repro-sim conformance'), or 'hybrid' (the "
             "multi-fidelity router: analytic screens with calibrated "
             "error bars, cycle verifies the cells that matter)",
    )

    profile_flags = argparse.ArgumentParser(add_help=False)
    profile_flags.add_argument(
        "--profiles", action="append", default=None, metavar="FILE",
        help="register benchmark profiles from a JSON/TOML file before "
             "resolving workloads (repeatable)",
    )

    workload_flags = argparse.ArgumentParser(add_help=False)
    workload_flags.add_argument(
        "--workload", default=None, metavar="REF",
        help="declarative workload: a preset name (see 'repro-sim "
             "workloads') or a JSON/TOML workload file; overrides "
             "--threads/--benches",
    )

    mem_flags = argparse.ArgumentParser(add_help=False)
    mem_flags.add_argument(
        "--mem", default=None, metavar="REF",
        help="declarative memory hierarchy: a preset name "
             f"({', '.join(mem_preset_names())}; see 'repro-sim "
             "workloads') or a JSON/TOML MemSpec file; default: the "
             "classic paper machine built from the config scalars",
    )

    engine_flags = argparse.ArgumentParser(add_help=False)
    g = engine_flags.add_argument_group("engine")
    g.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_WORKERS, else all cores; "
             "1 = serial in-process)",
    )
    g.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    g.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR, "
             "else ~/.cache/repro-sim)",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "figure", help="regenerate a paper figure",
        parents=[engine_flags, backend_flags],
    )
    p.add_argument("name", choices=sorted(FIGURES) + ["all"])
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "ablation", help="run an ablation study", parents=[engine_flags]
    )
    p.add_argument("name", choices=sorted(ABLATIONS) + ["all"])
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser(
        "sweep",
        help="run an ad-hoc grid and print JSON",
        parents=[
            engine_flags, machine_flags, backend_flags,
            workload_flags, profile_flags, mem_flags,
        ],
        description=(
            "Expand a grid of runs (threads x latencies x modes for the "
            "multiprogrammed workload, benches x latencies x modes for "
            "single-benchmark runs, or a --workload preset/file crossed "
            "with latencies, modes and --workload-axis profile-field "
            "axes), execute it through the engine and print one JSON "
            "document with a spec + stats entry per run."
        ),
    )
    p.add_argument("--threads", default="4",
                   help="comma-separated thread counts (default: 4)")
    p.add_argument("--latencies", default="16",
                   help=f"comma-separated L2 latencies, e.g. "
                        f"{','.join(map(str, LATENCIES))} (default: 16)")
    p.add_argument("--modes", default="dec",
                   help="comma-separated from {dec,non} (default: dec)")
    p.add_argument("--benches", default=None,
                   help="comma-separated profile names (inline overrides "
                        "allowed); switches the grid to single-benchmark "
                        "runs (ignores --threads)")
    p.add_argument("--workload-axis", action="append", default=None,
                   metavar="FIELD=V1,V2,...",
                   help="with --workload: sweep a profile field across "
                        "every playlist entry, e.g. hot_frac=0.1,0.4 "
                        "(repeatable; axes combine as a grid)")
    p.add_argument("--mem-axis", action="append", default=None,
                   metavar="FIELD=V1,V2,...",
                   help="sweep a memory-hierarchy field over the --mem "
                        "spec (default: classic), e.g. "
                        "L2.capacity_bytes=256K,1M or prefetch_degree=1,2 "
                        "(repeatable; axes combine as a grid)")
    p.add_argument("--commits", default=None,
                   help="comma-separated measured-commit budget overrides "
                        "(pre-scale, per thread); several values add a "
                        "grid axis — cells differing only here share a "
                        "warm-up prefix, so this pairs with --fork-warmup")
    p.add_argument("--fork-warmup", type=int, default=None, metavar="N",
                   help="fork cells sharing a warm-up prefix (same "
                        "workload/seed/machine/warm-up budget) from one "
                        "warm-up simulation when at least N of them miss "
                        "the cache (floor 2); results are bit-identical "
                        "to cold runs, only faster. Snapshots persist in "
                        "the result cache for later sweeps.")
    g = p.add_argument_group(
        "router (--backend hybrid)",
        "multi-fidelity routing: the whole grid is screened on the "
        "analytic backend with calibrated IPC error bars, and only the "
        "cells that matter (figure extrema, decision boundaries whose "
        "ranking flips within the error bar, cells over the error "
        "budget) are promoted to the cycle backend",
    )
    g.add_argument("--promote-budget", type=_promote_budget, default=None,
                   metavar="FRAC|N",
                   help="cap on promoted cells: a fraction of the grid "
                        "(0 < f <= 1) or an absolute cell count "
                        "(default: 0.15)")
    g.add_argument("--error-budget", type=float, default=None,
                   metavar="FRAC",
                   help="promote every cell whose relative IPC error bar "
                        "half-width exceeds FRAC (still capped by the "
                        "promote budget)")
    g.add_argument("--router-corpus", default=None, metavar="PATH",
                   help="conformance corpus the error model is fitted "
                        "from (default: the committed "
                        "benchmarks/conformance/corpus.json)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "run", help="one custom run (threads or a declarative workload)",
        parents=[
            engine_flags, machine_flags, backend_flags,
            workload_flags, profile_flags, mem_flags,
        ],
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--latency", type=int, default=16, help="L2 latency (cycles)")
    p.add_argument("--non-decoupled", action="store_true")
    p.add_argument("--commits", type=int, default=None,
                   help="measured commits per thread")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="checkpoint the machine at the warm-up boundary "
                        "to PATH (then finish this run normally); feed it "
                        "back with --restore")
    p.add_argument("--restore", default=None, metavar="PATH",
                   help="continue from a --snapshot checkpoint instead of "
                        "simulating the warm-up (the spec must share the "
                        "snapshot's warm-up prefix; results are "
                        "bit-identical to an unbroken run)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "bench", help="one single-threaded benchmark run",
        parents=[
            engine_flags, machine_flags, backend_flags, profile_flags,
            mem_flags,
        ],
    )
    p.add_argument(
        "name",
        help="a registered profile name, optionally with inline overrides "
             "('swim?hot_frac=0.1&ws_bytes=16M'); see 'repro-sim workloads'",
    )
    p.add_argument("--latency", type=int, default=16)
    p.add_argument("--non-decoupled", action="store_true")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "workloads",
        help="list registered profiles and workload presets",
        parents=[profile_flags],
        description=(
            "Print every registered benchmark profile (key knobs + "
            "provenance: built-in vs the file that registered it) and "
            "every workload preset usable with --workload."
        ),
    )
    p.set_defaults(func=_cmd_workloads)

    # golden deliberately takes no cache flags: it always compares *live*
    # semantics, so advertising --cache-dir/--no-cache would be a lie
    p = sub.add_parser(
        "golden",
        help="verify or refresh the golden-stats regression corpus",
        description=(
            "Re-run the pinned fig1/fig3/fig4 golden sub-grid on the "
            "cycle backend (always freshly simulated, never from the "
            "result cache) and diff it against the committed corpus "
            "(tests/golden/). --refresh rewrites the corpus — do this "
            "only for intentional semantics changes, together with a "
            "SPEC_VERSION bump."
        ),
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_WORKERS, else all cores)",
    )
    p.add_argument(
        "--refresh", action="store_true",
        help="rewrite the corpus from live runs instead of verifying",
    )
    p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="corpus location (default: the repository's "
             f"{golden_mod.DEFAULT_DIR})",
    )
    p.set_defaults(func=_cmd_golden)

    p = sub.add_parser(
        "conformance",
        help="validate the analytic backend against the cycle backend",
        parents=[engine_flags],
        description=(
            "Run both backends over the paper's Figure-4 grid, report "
            "per-cell and aggregate error on IPC / perceived latency / "
            "bus utilization, and measure the analytic backend's sweep "
            "throughput. Exits non-zero when the mean absolute IPC error "
            "exceeds the tolerance (CI gates on this)."
        ),
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced grid (CI smoke mode; combine with REPRO_SCALE)",
    )
    p.add_argument(
        "--tolerance", type=float, default=conf_mod.TOLERANCE_IPC,
        metavar="FRAC",
        help="mean absolute relative IPC error allowed "
             f"(default: {conf_mod.TOLERANCE_IPC})",
    )
    p.add_argument(
        "--timing-specs", type=int, default=conf_mod.TIMING_SPECS,
        metavar="N",
        help="size of the analytic timing sweep (0 disables; "
             f"default: {conf_mod.TIMING_SPECS})",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the conformance JSON document here",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="distill the per-cell results into a conformance *corpus* — "
             "the router error model's training data (the repo commits "
             "one at benchmarks/conformance/corpus.json)",
    )
    p.add_argument(
        "--fit", action="store_true",
        help="fit the router error model and gate held-out interval "
             "coverage at 90%% (on the fresh results, or on --corpus "
             "without simulating anything)",
    )
    p.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="with --fit: fit from this committed corpus instead of "
             "running the grid — the CI drift gate",
    )
    p.add_argument(
        "--quantile", type=float, default=0.95, metavar="Q",
        help="error-bar quantile the model is fitted for (default: 0.95)",
    )
    p.set_defaults(func=_cmd_conformance)

    p = sub.add_parser(
        "perf",
        help="measure simulator performance on pinned workloads",
        description=(
            "Measure simulated-cycles-per-second and committed-instructions-"
            "per-second on a pinned workload set (always simulated: no "
            "result cache, serial, REPRO_SCALE ignored), report the "
            "idle-cycle fast-forward speedup on the headline 1-thread "
            "L2=256 fig1 workload, and optionally write the JSON document "
            "and gate against a committed baseline."
        ),
    )
    p.add_argument(
        "--quick", action="store_true",
        help="halved budgets (CI smoke mode)",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the perf JSON document here (e.g. BENCH_PR2.json)",
    )
    p.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline perf JSON; non-zero exit on "
             "regression beyond --tolerance",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional throughput/speedup drop vs the baseline "
             "(default: 0.30)",
    )
    p.add_argument(
        "--ratios-only", action="store_true",
        help="with --check: compare only machine-independent ratios "
             "(per-workload cycles/s normalized by the run's geometric "
             "mean, fast-forward speedup, bit-identity) — use when the "
             "baseline was recorded on different hardware (CI does)",
    )
    p.add_argument(
        "--reps", type=int, default=3, metavar="N",
        help="measure each workload N times and keep the best wall time "
             "(default: 3; simulations are deterministic, so the fastest "
             "run is the least-noise estimate)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="also cProfile each workload once (separately from the "
             "timed runs) and embed the top hot-spot report in the "
             "document — CI uploads it as the perf-smoke artifact",
    )
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "serve",
        help="run the HTTP job server (simulation as a service)",
        parents=[engine_flags],
        description=(
            "Serve simulations over HTTP: POST /jobs takes a RunSpec "
            "JSON body ({\"spec\": {...}} or {\"specs\": [...]}; the "
            "exact documents 'repro-sim sweep' emits under runs[].spec), "
            "GET /jobs/{id} reports status and results, "
            "GET /jobs/{id}/events streams progress lines, GET /metrics "
            "exposes queue depth and engine counters. A pool of worker "
            "tasks executes jobs through engines sharing one result "
            "cache; identical specs submitted concurrently coalesce to "
            "a single simulation. Accepted jobs persist in a spool "
            "directory, so unfinished work is re-queued after a "
            "restart; SIGTERM stops accepting, finishes in-flight "
            "jobs and exits."
        ),
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="TCP port, 0 picks a free one (default: 8023)")
    p.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="concurrent jobs (each job additionally fans out over "
             "--workers processes; default: 2)",
    )
    p.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="durable job queue location (default: <cache-dir>/jobs)",
    )
    p.add_argument(
        "--fork-warmup", type=int, default=None, metavar="N",
        help="enable forked sweeps inside jobs (see 'repro-sim sweep "
             "--fork-warmup')",
    )
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
