"""Command-line interface: ``repro-sim``.

Subcommands:

* ``figure {fig1,fig3,fig4,fig5,all}`` — regenerate a paper figure's data
  and print it as text tables.
* ``ablation {unit_width,fetch_policy,mshr,iq_depth,rob,all}`` — run an
  ablation study.
* ``run`` — one custom simulation (threads / latency / mode / budgets).
* ``bench NAME`` — one single-threaded benchmark run with a full report.

Use ``REPRO_SCALE=0.2 repro-sim figure fig4`` for a fast smoke sweep.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import ABLATIONS
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_multiprogrammed, run_single_benchmark
from repro.stats.report import format_run
from repro.workloads.profiles import BENCH_ORDER


def _cmd_figure(args) -> int:
    names = list(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        build, render = FIGURES[name]
        t0 = time.time()
        data = build(seed=args.seed)
        print(render(data))
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


def _cmd_ablation(args) -> int:
    names = list(ABLATIONS) if args.name == "all" else [args.name]
    for name in names:
        build, render = ABLATIONS[name]
        t0 = time.time()
        data = build(seed=args.seed)
        print(render(data))
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


def _cmd_run(args) -> int:
    stats = run_multiprogrammed(
        args.threads,
        l2_latency=args.latency,
        decoupled=not args.non_decoupled,
        seed=args.seed,
        commits_per_thread=args.commits,
    )
    mode = "non-decoupled" if args.non_decoupled else "decoupled"
    print(format_run(stats, f"{args.threads} threads, L2={args.latency}, {mode}"))
    return 0


def _cmd_bench(args) -> int:
    if args.name not in BENCH_ORDER:
        print(
            f"unknown benchmark {args.name!r}; known: {', '.join(BENCH_ORDER)}",
            file=sys.stderr,
        )
        return 2
    stats = run_single_benchmark(
        args.name,
        l2_latency=args.latency,
        decoupled=not args.non_decoupled,
        seed=args.seed,
    )
    print(format_run(stats, f"{args.name} (1 thread, L2={args.latency})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Cycle-accurate SMT + decoupled access/execute simulator "
            "(reproduction of Parcerisa & González, HPCA 1999)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", choices=sorted(FIGURES) + ["all"])
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("ablation", help="run an ablation study")
    p.add_argument("name", choices=sorted(ABLATIONS) + ["all"])
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("run", help="one custom multithreaded run")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--latency", type=int, default=16, help="L2 latency (cycles)")
    p.add_argument("--non-decoupled", action="store_true")
    p.add_argument("--commits", type=int, default=None,
                   help="measured commits per thread")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("bench", help="one single-threaded benchmark run")
    p.add_argument("name", help=f"one of: {', '.join(BENCH_ORDER)}")
    p.add_argument("--latency", type=int, default=16)
    p.add_argument("--non-decoupled", action="store_true")
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
