"""Setuptools shim.

The project is fully described by pyproject.toml; this file only enables
``python setup.py develop`` on offline machines where the ``wheel`` package
(required by PEP 517 editable installs) is unavailable.
"""

from setuptools import setup

setup()
