"""Router acceptance smoke: hybrid vs pure cycle on a 216-cell grid.

Gates the two hybrid-backend invariants from DESIGN.md ("Multi-fidelity
router") plus the headline economics:

1. every promoted cell's stats snapshot is byte-identical to the
   pure-cycle run of the same spec;
2. the number of cycle executions respects ``--promote-budget``;
3. the cycle fraction stays at or under the budget cap (<= 20% of the
   grid) and hybrid beats pure cycle by ``ROUTER_SMOKE_MIN_SPEEDUP``
   (default 3x; local acceptance runs see ~6x).

Both phases run from cold caches in the same process so the comparison
is apples-to-apples. Cells use the paper's full commit budgets, so
``REPRO_SCALE`` sets the per-cell cost (too small and per-task overhead
drowns the cycle/analytic cost gap). Run as a script::

    REPRO_SCALE=0.1 PYTHONPATH=src python benchmarks/router_smoke.py
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile
import time

from repro.engine import Engine, ResultCache, RouterSpec, RunSpec, Sweep

THREADS = (1, 2, 3, 4)
LATENCIES = tuple(range(4, 436, 16))  # 27 points: a dense latency sweep
PROMOTE_BUDGET = 0.15


def build_grid(backend: str, router: RouterSpec | None) -> Sweep:
    return Sweep.grid(
        lambda n_threads, l2_latency, decoupled: RunSpec.multiprogrammed(
            n_threads,
            l2_latency=l2_latency,
            decoupled=decoupled,
            backend=backend,
            router=router,
        ),
        n_threads=THREADS,
        l2_latency=LATENCIES,
        decoupled=(True, False),
    )


def prewarm() -> None:
    """Materialize the workload traces both phases share.

    Trace synthesis is memoized process-wide and is identical for every
    backend; paying it inside one phase's timing would bill shared
    infrastructure to whichever phase runs first.
    """
    from repro.engine.backends import get_backend

    backend = get_backend("analytic")
    for n_threads in THREADS:
        backend.run(
            RunSpec.multiprogrammed(n_threads, l2_latency=4, backend="analytic")
        )


def run_phase(grid: Sweep, root: str):
    engine = Engine(cache=ResultCache(root))
    t0 = time.perf_counter()
    results = engine.map(grid)
    return results, time.perf_counter() - t0


def main() -> int:
    router = RouterSpec(promote_budget=PROMOTE_BUDGET)
    hybrid_grid = build_grid("hybrid", router)
    cycle_grid = build_grid("cycle", None)
    n = len(hybrid_grid)
    assert n >= 200, f"smoke grid too small: {n}"

    prewarm()
    with tempfile.TemporaryDirectory() as tmp:
        hybrid, t_hybrid = run_phase(hybrid_grid, os.path.join(tmp, "hybrid"))
        cycle, t_cycle = run_phase(cycle_grid, os.path.join(tmp, "cycle"))

    cap = router.promote_cap(n)
    frac = hybrid.n_promoted / n
    print(f"grid: {n} cells, promote budget {PROMOTE_BUDGET} (cap {cap})")
    print(
        f"hybrid: {hybrid.n_screened} screened / {hybrid.n_promoted} promoted "
        f"({frac:.1%} on cycle), {t_hybrid:.1f}s"
    )
    print(f"cycle : {len(cycle)} executed, {t_cycle:.1f}s")
    speedup = t_cycle / t_hybrid if t_hybrid else float("inf")
    print(f"speedup: {speedup:.1f}x")

    failures = []
    if hybrid.n_promoted > cap:
        failures.append(f"promote budget violated: {hybrid.n_promoted} > cap {cap}")
    if frac > 0.20:
        failures.append(f"cycle fraction {frac:.1%} exceeds 20% acceptance bound")
    if hybrid.n_screened + hybrid.n_promoted != n:
        failures.append(
            f"screened+promoted = {hybrid.n_screened + hybrid.n_promoted} != {n}"
        )

    # Promoted cells must be byte-identical to the pure-cycle answer for
    # the same physical spec (the hybrid spec minus its routing fields).
    cycle_by_spec = {spec: stats for spec, stats in cycle.items()}
    n_checked = 0
    for spec, stats in hybrid.items():
        prov = hybrid.router.get(spec, {})
        if prov.get("fidelity") != "cycle":
            continue
        twin = dataclasses.replace(spec, backend="cycle", router=None)
        want = json.dumps(cycle_by_spec[twin].snapshot(), sort_keys=True)
        got = json.dumps(stats.snapshot(), sort_keys=True)
        if want != got:
            failures.append(f"promoted cell diverges from pure cycle: {spec.label()}")
        n_checked += 1
    if n_checked != hybrid.n_promoted:
        failures.append(
            f"provenance lists {n_checked} cycle cells, counter says "
            f"{hybrid.n_promoted}"
        )
    print(f"byte-identity: {n_checked} promoted cells checked against pure cycle")

    min_speedup = float(os.environ.get("ROUTER_SMOKE_MIN_SPEEDUP", "3"))
    if speedup < min_speedup:
        failures.append(f"speedup {speedup:.1f}x below gate {min_speedup}x")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print("router smoke: " + ("FAIL" if failures else "PASS"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
