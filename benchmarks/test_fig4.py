"""Figure 4 benchmark: latency tolerance of the eight configurations.

Regenerates 4-a (perceived load-miss latency), 4-b (relative IPC loss) and
4-c (absolute IPC) for {1..4 threads} x {decoupled, non-decoupled} over the
L2 latency sweep. Shape anchors from the paper: at L2 = 32 every decoupled
configuration loses only a few percent while every non-decoupled one loses
>23 %; decoupling flattens the IPC curves while multithreading raises them.
"""

from repro.experiments.figures import fig4, render_fig4


def test_fig4(once, engine):
    data = once(fig4, engine=engine)
    print()
    print(render_fig4(data))

    runs = data["runs"]
    lats = data["latencies"]
    base = lats[0]

    def loss(decoupled, nt, lat):
        r = runs[(decoupled, nt)]
        return 1.0 - r[lat]["ipc"] / r[base]["ipc"]

    # 4-b: the latency-tolerance gap at L2 = 32. (The paper reports <4 %
    # vs >23 %; at reduced REPRO_SCALE budgets cold-start effects widen the
    # decoupled band, so the assertion checks the *gap*, and EXPERIMENTS.md
    # records the full-budget numbers.)
    worst_dec = max(loss(True, nt, 32) for nt in data["threads"])
    best_non = min(loss(False, nt, 32) for nt in data["threads"])
    assert worst_dec < 0.30
    assert best_non > 0.18
    assert best_non > worst_dec + 0.05

    # 4-b at 256: decoupled still clearly ahead
    assert max(loss(True, nt, 256) for nt in data["threads"]) < \
        min(loss(False, nt, 256) for nt in data["threads"])

    # 4-a: perceived latency of decoupled configs stays far below
    # non-decoupled ones at every latency beyond L1
    for lat in lats[1:]:
        dec = max(runs[(True, nt)][lat]["perceived"] for nt in data["threads"])
        non = min(runs[(False, nt)][lat]["perceived"] for nt in data["threads"])
        assert dec < non, (lat, dec, non)

    # 4-c: multithreading raises the curves
    for decoupled in (True, False):
        assert runs[(decoupled, 4)][16]["ipc"] > runs[(decoupled, 1)][16]["ipc"]
