"""Figure 1 benchmark: section-2 latency-hiding sweep.

Regenerates, for every SPEC FP95 profile and L2 latency in {1..256}:
1-a perceived FP-load miss latency, 1-b perceived integer-load miss
latency, 1-c miss ratios at L2=256, 1-d relative IPC loss.
"""

from repro.experiments.figures import fig1, render_fig1


def test_fig1(once, engine):
    data = once(fig1, engine=engine)
    print()
    print(render_fig1(data))

    runs = data["runs"]
    lats = data["latencies"]
    big = max(lats)

    # S1: good decouplers hide >90% of the FP-load miss latency everywhere.
    for bench in ("tomcatv", "swim", "mgrid", "applu"):
        for lat in lats:
            perceived = runs[bench][lat]["perceived_fp"]
            assert perceived < 0.1 * max(lat, 10), (bench, lat, perceived)

    # S1: fpppp is the exception (paper: the one bad decoupler).
    assert runs["fpppp"][big]["perceived_fp"] > 10 * max(
        runs[b][big]["perceived_fp"] for b in ("tomcatv", "swim", "applu")
    ) or runs["fpppp"][big]["perceived_fp"] > 20

    # S2: int-load stalls are largest for fpppp/su2cor/turb3d/wave5.
    stall_heavy = min(
        runs[b][big]["perceived_int"]
        for b in ("fpppp", "su2cor", "turb3d", "wave5")
    )
    stall_light = max(
        runs[b][big]["perceived_int"]
        for b in ("tomcatv", "swim", "mgrid", "applu")
    )
    assert stall_heavy > stall_light

    # S3: fpppp/turb3d have the lowest miss ratios.
    low = max(runs[b][big]["load_miss_ratio"] for b in ("fpppp", "turb3d"))
    high = min(
        runs[b][big]["load_miss_ratio"] for b in ("swim", "hydro2d", "tomcatv")
    )
    assert low < high
