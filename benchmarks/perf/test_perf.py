"""Simulator-performance benchmarks (``pytest benchmarks/perf``).

Runs the same pinned workload set as ``repro-sim perf`` through
pytest-benchmark, and gates the machine-independent ratio metrics against
the committed ``BENCH_PR10.json`` baseline.  Absolute throughput numbers in
the baseline document the machine that recorded it; only the ratios
(per-workload cycles/s normalized by the run's own geometric mean,
fast-forward speedup, bit-identity) are asserted here, because this suite
runs on arbitrary hardware.
"""

from pathlib import Path

from repro.experiments.perf import (
    HEADLINE,
    check_regression,
    load_doc,
    run_perf,
)

QUICK_BASELINE = Path(__file__).with_name("BENCH_PR10.quick.json")


def test_perf_quick_vs_committed_baseline(once):
    doc = once(run_perf, quick=True)
    head = doc["headline"]
    assert head["workload"] == HEADLINE
    # the whole point of the fast-forward: identical stats, less wall clock
    assert head["bit_identical"] is True
    assert head["speedup"] > 1.0
    failures = check_regression(doc, load_doc(QUICK_BASELINE),
                                ratios_only=True)
    assert not failures, failures


def test_committed_baseline_records_event_horizon_win():
    """The committed doc must carry the same-machine kernel comparison
    that motivated PR 10: >= 1.5x on a latency-dominated multithreaded
    workload (measured 3.8x on hilat_4T_L2=256)."""
    doc = load_doc(Path(__file__).with_name("BENCH_PR10.json"))
    eh = doc["event_horizon"]
    assert eh["workload"] == "hilat_4T_L2=256"
    assert eh["speedup_vs_pr7_kernel"] >= 1.5
    assert doc["workloads"]["hilat_4T_L2=256"]["ff_cycles_skipped"] > 0
