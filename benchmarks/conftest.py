"""Benchmark-harness configuration.

Each benchmark regenerates one paper figure's data series and prints the
same rows the paper reports. Simulation budgets honour ``REPRO_SCALE``
(default here: 0.25 for a quick sweep; set ``REPRO_SCALE=1`` to reproduce
the full EXPERIMENTS.md numbers).
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.25")


@pytest.fixture
def once(benchmark):
    """Run the measured function exactly once (simulations are long-running
    and deterministic; statistical repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
