"""Benchmark-harness configuration.

Each benchmark regenerates one paper figure's data series and prints the
same rows the paper reports. Simulation budgets honour ``REPRO_SCALE``
(default here: 0.25 for a quick sweep; set ``REPRO_SCALE=1`` to reproduce
the full EXPERIMENTS.md numbers).

Figures run through the same :class:`repro.engine.Engine` code path the
CLI uses — parallel across ``REPRO_WORKERS`` (default: all cores) but
with the persistent result cache disabled, so every timing measures real
simulation work rather than a cache read.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.25")

from repro.engine import Engine  # noqa: E402  (after the scale default)


@pytest.fixture
def engine():
    """Parallel, cache-less engine: the CLI execution path, honest timings."""
    return Engine(workers=None, cache=None)


@pytest.fixture
def once(benchmark):
    """Run the measured function exactly once (simulations are long-running
    and deterministic; statistical repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
