"""Figure 3 benchmark: issue-slot breakdown vs thread count (L2 = 16).

Paper anchors: 1 thread ~2.68 IPC dominated by EP wait-on-FU; 3 threads
~6.19 IPC (2.31x) with the AP ~90 % saturated; 4 threads ~6.65 IPC;
EP wait-on-memory grows with the thread count.
"""

from repro.experiments.figures import fig3, render_fig3


def test_fig3(once, engine):
    data = once(fig3, engine=engine)
    print()
    print(render_fig3(data))

    runs = data["runs"]

    # one thread: FU-latency bound, IPC in the paper's band
    assert 2.0 < runs[1]["ipc"] < 3.6
    assert runs[1]["ep"]["wait_fu"] > 0.4

    # three threads: large speedup (paper 2.31x), AP nearly saturated
    speedup = runs[3]["ipc"] / runs[1]["ipc"]
    assert 1.9 < speedup < 2.9
    assert runs[3]["ap"]["useful"] > 0.8

    # adding contexts beyond 3-4 buys little (paper: negligible)
    assert runs[6]["ipc"] < runs[3]["ipc"] * 1.15

    # EP memory stalls grow with thread count (paper section 3.1)
    assert runs[4]["ep"]["wait_mem"] > runs[1]["ep"]["wait_mem"]
