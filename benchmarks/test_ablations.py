"""Ablation benchmarks: design-space points the paper mentions but did not
evaluate (see DESIGN.md per-experiment index, abl-* rows)."""

from repro.experiments import ablations


def test_unit_width(once):
    """Paper section 3.1: AP/EP load imbalance costs ~15 % of peak; an
    asymmetric split was left as future work."""
    data = once(ablations.unit_width)
    print()
    print(ablations.render_unit_width(data))
    # the symmetric paper split must not be grossly inferior to the best
    best = max(r["ipc"] for r in data.values())
    assert data[(4, 4)]["ipc"] > 0.85 * best


def test_fetch_policy(once):
    data = once(ablations.fetch_policy)
    print()
    print(ablations.render_fetch_policy(data))
    assert data["icount"]["ipc"] > 0.9 * data["rr"]["ipc"]


def test_mshr_sweep(once):
    """Quantifies the DESIGN.md substitution: 16 MSHRs cannot sustain the
    MLP the paper's latency sweep implies."""
    data = once(ablations.mshr)
    print()
    print(ablations.render_mshr(data))
    assert data[64]["ipc"] > data[8]["ipc"]


def test_iq_depth(once):
    """Slip (and therefore latency hiding) is bounded by the IQ depth."""
    data = once(ablations.iq_depth)
    print()
    print(ablations.render_iq_depth(data))
    assert data[192]["slip"] > data[8]["slip"]
    assert data[192]["ipc"] > data[8]["ipc"]


def test_rob_size(once):
    """Sensitivity to the ROB size Figure 2 leaves unspecified."""
    data = once(ablations.rob)
    print()
    print(ablations.render_rob(data))
    assert data[256]["ipc"] > 0.8 * data[512]["ipc"]
