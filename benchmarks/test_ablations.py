"""Ablation benchmarks: design-space points the paper mentions but did not
evaluate (see DESIGN.md per-experiment index, abl-* rows)."""

from repro.experiments import ablations


def test_unit_width(once, engine):
    """Paper section 3.1: AP/EP load imbalance costs ~15 % of peak; an
    asymmetric split was left as future work."""
    data = once(ablations.unit_width, engine=engine)
    print()
    print(ablations.render_unit_width(data))
    # the symmetric paper split must not be grossly inferior to the best
    best = max(r["ipc"] for r in data.values())
    assert data[(4, 4)]["ipc"] > 0.85 * best


def test_fetch_policy(once, engine):
    data = once(ablations.fetch_policy, engine=engine)
    print()
    print(ablations.render_fetch_policy(data))
    assert data["icount"]["ipc"] > 0.9 * data["rr"]["ipc"]


def test_mshr_sweep(once, engine):
    """Quantifies the DESIGN.md substitution: 16 MSHRs cannot sustain the
    MLP the paper's latency sweep implies."""
    data = once(ablations.mshr, engine=engine)
    print()
    print(ablations.render_mshr(data))
    assert data[64]["ipc"] > data[8]["ipc"]


def test_iq_depth(once, engine):
    """Slip (and therefore latency hiding) is bounded by the IQ depth."""
    data = once(ablations.iq_depth, engine=engine)
    print()
    print(ablations.render_iq_depth(data))
    assert data[192]["slip"] > data[8]["slip"]
    assert data[192]["ipc"] > data[8]["ipc"]


def test_rob_size(once, engine):
    """Sensitivity to the ROB size Figure 2 leaves unspecified."""
    data = once(ablations.rob, engine=engine)
    print()
    print(ablations.render_rob(data))
    assert data[256]["ipc"] > 0.8 * data[512]["ipc"]
