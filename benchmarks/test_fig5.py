"""Figure 5 benchmark: hardware-context reduction and bus saturation.

Regenerates the four IPC-vs-thread-count series (L2 = 16 solid, L2 = 64
dotted; decoupled vs non-decoupled) plus the bus-utilization column behind
the paper's "89 % at 12 threads / 98 % at 16 threads" observation.
"""

from repro.experiments.figures import fig5, render_fig5


def test_fig5(once, engine):
    data = once(fig5, engine=engine)
    print()
    print(render_fig5(data))

    s16_dec = data["series"]["L2=16 dec"]
    s16_non = data["series"]["L2=16 non-dec"]
    s64_dec = data["series"]["L2=64 dec"]
    s64_non = data["series"]["L2=64 non-dec"]

    # decoupled saturates with 3-4 threads at L2=16 (paper: 3 or 4)
    peak_dec = max(p["ipc"] for p in s16_dec.values())
    assert s16_dec[3]["ipc"] > 0.9 * peak_dec

    # the non-decoupled machine needs many more contexts
    assert s16_non[3]["ipc"] < 0.8 * s16_dec[3]["ipc"]
    assert max(p["ipc"] for p in s16_non.values()) > 1.3 * s16_non[2]["ipc"]

    # at L2=64 the non-decoupled machine never reaches the decoupled peak
    peak_dec64 = max(p["ipc"] for p in s64_dec.values())
    peak_non64 = max(p["ipc"] for p in s64_non.values())
    assert peak_non64 < 0.95 * peak_dec64

    # ... because the external bus saturates (paper: 89% @ 12T, 98% @ 16T)
    assert s64_non[12]["bus"] > 0.75
    assert s64_non[16]["bus"] > 0.85

    # decoupling reaches roughly non-dec-12T-level performance with ~3
    # threads (paper: parity; full-budget measured ratio is 0.90 — see
    # EXPERIMENTS.md; the reduced-budget band here is wider)
    assert s64_dec[3]["ipc"] > 0.75 * s64_non[12]["ipc"]
    assert s64_dec[4]["ipc"] > 0.9 * s64_non[12]["ipc"]
